"""Runtime benchmark: simcore hot-path throughput, sweep parallelism,
and cache warm/cold timing.

Plain script (not pytest — ``testpaths`` keeps it out of tier-1)::

    PYTHONPATH=src python benchmarks/bench_runtime.py
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick --jobs 2

Appends to the committed ``BENCH_runtime.json`` perf trajectory
(override with ``--out``; see ``benchlib`` for the document shape).
``last_run`` holds three sections:

* ``simcore`` — events/sec on three micro-workloads (pure timeout
  chains, process churn with interrupts, AnyOf fan-out). These gate the
  hot-path optimization and feed the trajectory ``entries`` the CI
  ``perf-gate`` job diffs against fresh runs.
* ``sweep`` — wall-clock for a set of exhibits run serially and under
  ``--jobs N`` (point-level for single exhibits, exhibit-level for the
  batch), plus the speedup ratio.
* ``cache`` — cold-compute vs warm-load timing for one exhibit.

Full-scale runs (no ``--quick``) append one trajectory entry per
simcore scenario; quick runs never touch the trajectory (their rates
are not comparable to full-scale baselines).
"""

import argparse
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib  # noqa: E402
from repro.runtime import (  # noqa: E402
    RunSpec,
    SweepExecutor,
    run_exhibit,
    use_executor,
)
from repro.simcore import AnyOf, Interrupt, Simulator  # noqa: E402

# ---------------------------------------------------------------------------
# simcore micro-benchmarks — events/sec on the three hot shapes.


def _bench_timeouts(n: int) -> float:
    """A single process advancing through ``n`` zero-cost timeouts."""
    sim = Simulator(1)

    def ticker():
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(ticker())
    started = time.perf_counter()
    sim.run()
    return sim._sequence / (time.perf_counter() - started)


def _bench_churn(n: int) -> float:
    """Short-lived processes spawned, waited on, and interrupted."""
    sim = Simulator(1)

    def worker():
        try:
            yield sim.timeout(5.0)
        except Interrupt:
            pass

    def spawner():
        for index in range(n):
            child = sim.process(worker())
            if index % 2:
                yield sim.timeout(1.0)
                child.interrupt("churn")
            yield child

    sim.process(spawner())
    started = time.perf_counter()
    sim.run()
    return sim._sequence / (time.perf_counter() - started)


def _bench_anyof(n: int, fan: int = 8) -> float:
    """AnyOf over ``fan`` staggered timeouts, ``n`` rounds; the losers
    fire later as stale wake-ups — the O(1) bookkeeping path."""
    sim = Simulator(1)

    def racer():
        for _ in range(n):
            yield AnyOf(sim, [sim.timeout(float(delay + 1))
                              for delay in range(fan)])
            yield sim.timeout(float(fan + 1))

    sim.process(racer())
    started = time.perf_counter()
    sim.run()
    return sim._sequence / (time.perf_counter() - started)


#: (scenario, fn, full-scale n) — the perf gate re-runs these at full
#: scale and compares normalized rates against the committed trajectory.
GATE_SCENARIOS = (
    ("timeout_chain", _bench_timeouts, 600_000),
    ("process_churn", _bench_churn, 180_000),
    ("anyof_fanout", _bench_anyof, 90_000),
)


def bench_simcore(quick: bool) -> dict:
    out = {}
    for name, fn, full_n in GATE_SCENARIOS:
        n = full_n // 3 if quick else full_n
        rates = [fn(n) for _ in range(2 if quick else 3)]
        out[name] = {"events_per_sec": round(max(rates)), "n": n}
        print(f"  simcore/{name}: {max(rates):,.0f} events/s")
    return out


# ---------------------------------------------------------------------------
# sweep executor — serial vs parallel exhibit wall-clock.

QUICK_EXHIBITS = ["fig2", "fig17", "table1", "fig13"]
FULL_EXHIBITS = QUICK_EXHIBITS + ["fig4", "fig5", "fig14", "fig15"]


def bench_sweep(jobs: int, quick: bool) -> dict:
    exhibits = QUICK_EXHIBITS if quick else FULL_EXHIBITS
    specs = [RunSpec(exp_id, use_cache=False) for exp_id in exhibits]

    started = time.perf_counter()
    for spec in specs:
        run_exhibit(spec)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    with SweepExecutor(jobs=jobs) as executor:
        list(executor.imap(run_exhibit, specs))
    batch_s = time.perf_counter() - started

    # Point-level parallelism inside the sweep-heaviest single exhibit.
    single = "fig2"
    started = time.perf_counter()
    run_exhibit(RunSpec(single, use_cache=False))
    single_serial_s = time.perf_counter() - started
    started = time.perf_counter()
    with use_executor(jobs=jobs):
        run_exhibit(RunSpec(single, use_cache=False))
    single_parallel_s = time.perf_counter() - started

    print(f"  sweep/batch ({len(exhibits)} exhibits): "
          f"{serial_s:.2f}s serial, {batch_s:.2f}s at --jobs {jobs} "
          f"({serial_s / batch_s:.2f}x)")
    print(f"  sweep/{single}: {single_serial_s:.2f}s serial, "
          f"{single_parallel_s:.2f}s at --jobs {jobs}")
    return {
        "jobs": jobs,
        "exhibits": exhibits,
        "batch_serial_s": round(serial_s, 3),
        "batch_parallel_s": round(batch_s, 3),
        "batch_speedup": round(serial_s / batch_s, 2),
        "single_exhibit": single,
        "single_serial_s": round(single_serial_s, 3),
        "single_parallel_s": round(single_parallel_s, 3),
    }


# ---------------------------------------------------------------------------
# result cache — cold compute vs warm load.


def bench_cache() -> dict:
    exp_id = "fig17"
    with tempfile.TemporaryDirectory() as cache_dir:
        spec = RunSpec(exp_id, cache_dir=cache_dir)
        started = time.perf_counter()
        cold = run_exhibit(spec)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_exhibit(spec)
        warm_s = time.perf_counter() - started
    assert not cold.cache_hit and warm.cache_hit
    assert cold.result == warm.result
    print(f"  cache/{exp_id}: {cold_s:.3f}s cold, {warm_s:.3f}s warm")
    return {"exhibit": exp_id, "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts (CI smoke)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel jobs for the sweep section "
                             "(0 = all cores)")
    parser.add_argument("--out", default=None,
                        help="trajectory path (default: repo "
                             "BENCH_runtime.json)")
    options = parser.parse_args(argv)
    jobs = options.jobs or multiprocessing.cpu_count()
    root = benchlib.repo_root()
    out_path = options.out or os.path.join(root, "BENCH_runtime.json")

    calib = benchlib.calibrate()
    print(f"calibration: {calib:,.0f} ops/s")
    print("simcore hot path:")
    simcore = bench_simcore(options.quick)
    print("sweep executor:")
    sweep = bench_sweep(jobs, options.quick)
    print("result cache:")
    cache = bench_cache()

    sha = benchlib.git_sha(root)
    date = benchlib.utc_date()
    report = {
        "git_sha": sha,
        "date": date,
        "calib_ops_per_sec": round(calib),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": multiprocessing.cpu_count(),
            "quick": options.quick,
        },
        "simcore": simcore,
        "sweep": sweep,
        "cache": cache,
    }
    if options.quick:
        # Quick rates are not comparable to full-scale baselines; print
        # the report but leave the committed trajectory untouched.
        print(json.dumps(report, indent=2, sort_keys=True))
        print("quick run: trajectory not updated")
        return 0
    entries = [
        {"git_sha": sha, "date": date, "scenario": name,
         "events_per_sec": result["events_per_sec"],
         "calib_ops_per_sec": round(calib)}
        for name, result in simcore.items()
    ]
    benchlib.append_trajectory(out_path, entries, report)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
