"""Case 3 (§6.2): hotspot event, throttling stops the cascade.

Regenerates the scenario via ``repro.experiments.run("case3")``.
"""


def test_case3_hotspot_throttling(exhibit):
    result = exhibit("case3")
    assert result.findings["platforms_down_without"] == 3
    assert result.findings["platforms_down_with"] == 0
