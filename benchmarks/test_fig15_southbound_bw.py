"""Fig 15: southbound bandwidth on a routing update.

Regenerates the exhibit via ``repro.experiments.run("fig15")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig15_southbound_bw(exhibit):
    result = exhibit("fig15")
    assert abs(result.findings["istio_over_canal_bytes"] - 9.8) < 0.1
    assert abs(result.findings["ambient_over_canal_bytes"] - 4.6) < 0.1
