"""Fig 22: context-switch frequency for 16B packets at 4kRPS.

Regenerates the exhibit via ``repro.experiments.run("fig22")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig22_context_switch(exhibit):
    result = exhibit("fig22")
    assert result.findings["ebpf_over_iptables_ctx"] > 1.5
    assert result.findings["nagle_fix_ctx_reduction"] > 0.5
