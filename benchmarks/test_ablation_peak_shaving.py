"""Ablation: peak shaving from proxy consolidation (§3.1).

Regenerates the study via ``repro.experiments.run("ablation_peaks")``.
"""


def test_ablation_peak_shaving(exhibit):
    result = exhibit("ablation_peaks")
    assert result.findings["saving_staggered"] > 0.3
    assert result.findings["saving_synchronized"] < 0.1
