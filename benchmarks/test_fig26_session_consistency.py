"""Fig 26: redirector session consistency on replica change.

Regenerates the exhibit via ``repro.experiments.run("fig26")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig26_session_consistency(exhibit):
    result = exhibit("fig26")
    assert result.findings["sticky_fraction"] == 1.0
    assert result.findings["new_flows_on_draining"] == 0
