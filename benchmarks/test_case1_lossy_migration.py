"""Case 1 (§6.2): session flood → lossy sandbox migration.

Regenerates the scenario via ``repro.experiments.run("case1")``.
"""


def test_case1_lossy_migration(exhibit):
    result = exhibit("case1")
    assert result.findings["lossy_migrations"] == 1
    assert result.findings["sessions_reset"] > 100_000
    assert result.findings["peers_unaffected"] == 1.0
