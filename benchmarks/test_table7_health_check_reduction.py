"""Table 7: health-check reduction by aggregation.

Regenerates the exhibit via ``repro.experiments.run("table7")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table7_health_check_reduction(exhibit):
    result = exhibit("table7")
    assert result.findings["min_reduction"] >= 0.996
