"""Fig 23: crypto completion with remote/local/no offloading.

Regenerates the exhibit via ``repro.experiments.run("fig23")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig23_crypto_completion(exhibit):
    result = exhibit("fig23")
    assert 1.4 < result.findings["remote_mean_ms"] < 2.0
    assert result.findings["remote_spread_ms"] < 0.2
    assert abs(result.findings["none_mean_ms"] - 2.0) < 0.05
