"""Shared helpers for the benchmark scripts and the perf gate.

Perf numbers only mean something relative to the machine that produced
them, so every trajectory entry carries a *calibration rate*: the
throughput of a fixed pure-Python spin loop measured in the same
process. The perf gate compares **normalized** rates
(``events_per_sec / calib_ops_per_sec``), which cancels most of the
cross-runner and noisy-neighbor variance that raw events/sec would
inherit.

Trajectory files are committed JSON documents shaped as::

    {"schema": 1,
     "entries": [{"git_sha": ..., "date": ..., "scenario": ...,
                  "events_per_sec": ..., "calib_ops_per_sec": ...}, ...],
     "last_run": {...}}

``entries`` is append-only (the in-repo perf history); ``last_run``
holds the full report of the most recent run for human inspection.
"""

import json
import os
import subprocess
import time


def calibrate(n: int = 2_000_000) -> float:
    """Ops/sec of a fixed spin loop — the machine-speed yardstick."""
    best = 0.0
    for _ in range(3):
        started = time.perf_counter()
        total = 0
        for index in range(n):
            total += index & 7
        elapsed = time.perf_counter() - started
        best = max(best, n / elapsed)
    return best


def git_sha(repo_dir: str) -> str:
    """Short commit sha of ``repo_dir``, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_dir,
            capture_output=True, text=True, timeout=30)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def utc_date() -> str:
    return time.strftime("%Y-%m-%d", time.gmtime())


def load_trajectory(path: str) -> dict:
    """The trajectory document at ``path`` (empty skeleton if absent)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return {"schema": 1, "entries": [], "last_run": {}}
    doc.setdefault("schema", 1)
    doc.setdefault("entries", [])
    doc.setdefault("last_run", {})
    return doc


def append_trajectory(path: str, entries: list, last_run: dict) -> dict:
    """Append ``entries`` to the committed trajectory and rewrite it."""
    doc = load_trajectory(path)
    doc["entries"].extend(entries)
    doc["last_run"] = last_run
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def baseline_rates(path: str) -> dict:
    """Latest committed normalized rate per scenario.

    Maps ``scenario -> events_per_sec / calib_ops_per_sec`` using the
    most recent trajectory entry for each scenario.
    """
    doc = load_trajectory(path)
    rates = {}
    for entry in doc["entries"]:
        calib = entry.get("calib_ops_per_sec") or 0
        if calib > 0:
            rates[entry["scenario"]] = entry["events_per_sec"] / calib
    return rates


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
