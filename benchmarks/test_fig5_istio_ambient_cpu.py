"""Fig 5: CPU usage of Istio and Ambient.

Regenerates the exhibit via ``repro.experiments.run("fig5")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig5_istio_ambient_cpu(exhibit):
    result = exhibit("fig5")
    assert 2.0 < result.findings["istio_over_ambient_cpu"] < 5.0
