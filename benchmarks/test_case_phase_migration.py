"""§6.3: scattering in-phase services flattens the backend's daily peak.

Regenerates via ``repro.experiments.run("case_phase")``.
"""


def test_case_phase_migration(exhibit):
    result = exhibit("case_phase")
    assert result.findings["in_phase_groups"] >= 1
    assert result.findings["peak_reduction"] > 0.2
