"""Table 1: sidecar resource usage in production clusters.

Regenerates the exhibit via ``repro.experiments.run("table1")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table1_sidecar_resources(exhibit):
    result = exhibit("table1")
    assert 0.03 <= result.findings["min_cpu_share"]
    assert result.findings["max_cpu_share"] <= 0.32
