"""Fig 25: AVX-512 performance vs concurrent new connections.

Regenerates the exhibit via ``repro.experiments.run("fig25")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig25_avx512_batching(exhibit):
    result = exhibit("fig25")
    assert result.findings["crossover_connections"] == 8
    assert result.findings["completion_at_8_ms"] < result.findings["completion_at_1_ms"]
