"""Ablation: shuffle sharding vs naive block placement.

Regenerates the study via ``repro.experiments.run("ablation_sharding")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_shuffle_sharding(exhibit):
    result = exhibit("ablation_sharding")
    assert result.findings["shuffled_collateral"] == 0.0
    assert result.findings["naive_collateral"] >= 1.0
