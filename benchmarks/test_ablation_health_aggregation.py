"""Ablation: health-check aggregation level contributions.

Regenerates the study via ``repro.experiments.run("ablation_health")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_health_aggregation(exhibit):
    result = exhibit("ablation_health")
    assert result.findings["full_reduction"] > 0.996
    assert result.findings["service_only_reduction"] < 0.5
