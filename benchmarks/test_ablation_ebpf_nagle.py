"""Ablation: eBPF Nagle re-implementation across sizes.

Regenerates the study via ``repro.experiments.run("ablation_nagle")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_ebpf_nagle(exhibit):
    result = exhibit("ablation_nagle")
    assert result.findings["small_packet_ctx_saving"] > 0.5
    assert result.findings["large_packet_ctx_saving"] == 0.0
