"""Table 3: proportion of users enabling L7 features.

Regenerates the exhibit via ``repro.experiments.run("table3")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table3_l7_adoption(exhibit):
    result = exhibit("table3")
    assert 0.75 <= result.findings["min_l7_share"]
    assert result.findings["max_l7_share"] <= 0.97
