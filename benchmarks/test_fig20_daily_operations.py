"""Fig 20: daily operational data (RPS and error codes).

Regenerates the exhibit via ``repro.experiments.run("fig20")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig20_daily_operations(exhibit):
    result = exhibit("fig20")
    assert result.findings["rps_error_correlation"] > 0.8
    assert result.findings["max_error_ratio"] < 0.01
    assert result.findings["operations_executed"] >= 3
