"""Fig 3: sidecar count growth for a major customer.

Regenerates the exhibit via ``repro.experiments.run("fig3")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig3_sidecar_growth(exhibit):
    result = exhibit("fig3")
    assert 1.7 < result.findings["growth_ratio"] < 2.3
