"""Fig 2: sidecar CPU utilization vs end-to-end latency.

Regenerates the exhibit via ``repro.experiments.run("fig2")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig2_latency_vs_util(exhibit):
    result = exhibit("fig2")
    assert 1.3 < result.findings["mean_multiplier_at_45pct"] < 2.5
    assert result.findings["p99_multiplier_at_92pct"] > 20.0
