"""Fig 13: CPU usage of Istio, Ambient, and Canal.

Regenerates the exhibit via ``repro.experiments.run("fig13")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig13_cpu_usage(exhibit):
    result = exhibit("fig13")
    assert 10.0 < result.findings["istio_over_canal_cpu"] < 22.0
    assert 3.5 < result.findings["ambient_over_canal_cpu"] < 8.0
