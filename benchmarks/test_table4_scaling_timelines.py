"""Table 4: Reuse and New milestone timelines.

Regenerates the exhibit via ``repro.experiments.run("table4")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table4_scaling_timelines(exhibit):
    result = exhibit("table4")
    assert result.findings["reuse_execute_to_finish_s"] < 120.0
    assert result.findings["new_execute_to_finish_s"] > 8 * 60
