"""Figs 29/30: eBPF vs iptables throughput/latency by size.

Regenerates the exhibit via ``repro.experiments.run("fig29_30")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig29_30_ebpf_perf(exhibit):
    result = exhibit("fig29_30")
    assert 1.2 < result.findings["throughput_ratio_small"] < 1.5
    assert 1.9 < result.findings["throughput_ratio_large"] < 2.6
    assert 1.3 < result.findings["latency_ratio_mean"] < 1.9
