"""Fig 4: controller CPU usage and pod update time.

Regenerates the exhibit via ``repro.experiments.run("fig4")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig4_controller_cpu(exhibit):
    result = exhibit("fig4")
    assert result.findings["build_growth"] > 20.0
    assert result.findings["push_rate_growth"] < result.findings["build_growth"] / 5
    assert result.findings["completion_growth"] > 5.0
