"""Observability benchmark: causal-tracing overhead on the mesh data
path — disabled (the default), head-sampled, and full capture.

Plain script (not pytest — ``testpaths`` keeps it out of tier-1)::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --quick

Two sections:

* ``request_path`` — wall-clock for a fixed canal-mesh request loop
  under no tracer / 10%% sampling / 100%% capture, plus each mode's
  overhead ratio against disabled. Disabled tracing is the default
  everywhere, so its overhead vs the untraced baseline is the number
  that gates the PR: the budget is <= 5%%.
* ``collector`` — span-record throughput and ring-buffer eviction cost
  on the collector alone (no simulation in the loop).

Appends to the committed ``BENCH_obs.json`` perf trajectory (see
``benchlib``): one dated ``{git_sha, scenario, events_per_sec,
calib_ops_per_sec}`` entry per gated scenario, plus the full report as
``last_run``. The CI ``perf-gate`` job re-runs the gated scenarios
fresh and compares normalized rates against the latest committed
entries.

Tracing must never perturb the model, so the script also asserts the
request latencies are identical across all three modes before timing
anything — a perturbed run would make the timings meaningless.
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib  # noqa: E402
from repro.experiments.testbed import build_testbed  # noqa: E402
from repro.mesh import HttpRequest  # noqa: E402
from repro.obs import (  # noqa: E402
    Span,
    TraceCollector,
    Tracer,
    take_collectors,
    use_tracer,
)

# ---------------------------------------------------------------------------
# request path — the number that matters: disabled-by-default overhead.


def _request_loop(requests: int, tracer, seed: int = 23):
    """One canal testbed, ``requests`` requests through gateway + node
    L4 + app; returns (wall_s, latencies, traces_recorded)."""
    run = build_testbed("canal", seed=seed)
    latencies = []

    def scenario():
        connection = yield run.sim.process(
            run.mesh.open_connection(run.client_pod, "svc1"))
        for _ in range(requests):
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            latencies.append(response.latency_s)

    run.sim.process(scenario())
    started = time.perf_counter()
    if tracer is None:
        run.sim.run()
        recorded = 0
    else:
        with use_tracer(tracer):
            run.sim.run()
        recorded = len(tracer.collector.traces())
        take_collectors()
    wall_s = time.perf_counter() - started
    return wall_s, latencies, recorded


def bench_request_path(quick: bool) -> dict:
    requests = 400 if quick else 2000
    repeats = 3 if quick else 5
    modes = (
        # No ambient tracer at all — the shipping default.
        ("baseline", lambda: None),
        # Tracer installed but disabled: every request pays the
        # get_tracer() check plus one short-circuiting start() call.
        # This is the worst-case "tracing off" configuration and the
        # one the <=5% budget gates.
        ("disabled", lambda: Tracer(enabled=False)),
        ("sampled_10pct", lambda: Tracer(sample_rate=0.1, seed=23)),
        ("full", lambda: Tracer(sample_rate=1.0, seed=23)),
    )

    results = {}
    baseline_latencies = None
    for name, make_tracer in modes:
        best_s, latencies, recorded = min(
            (_request_loop(requests, make_tracer()) for _ in range(repeats)),
            key=lambda sample: sample[0])
        if baseline_latencies is None:
            baseline_latencies = latencies
        elif latencies != baseline_latencies:
            raise AssertionError(
                f"tracing mode {name!r} perturbed the simulation")
        results[name] = {"wall_s": round(best_s, 4),
                         "requests_per_sec": round(requests / best_s),
                         "traces_recorded": recorded}

    base_s = results["baseline"]["wall_s"]
    for name in results:
        results[name]["overhead_vs_baseline"] = \
            round(results[name]["wall_s"] / base_s, 3)
        print(f"  request_path/{name}: {results[name]['wall_s']:.3f}s "
              f"({results[name]['overhead_vs_baseline']:.2f}x, "
              f"{results[name]['traces_recorded']} traces)")
    results["requests"] = requests
    return results


# ---------------------------------------------------------------------------
# collector — raw span-record throughput, with and without eviction.


def _record_all(spans: int, max_traces: int):
    collector = TraceCollector(max_traces=max_traces)
    started = time.perf_counter()
    for index in range(spans):
        collector.record(Span(
            trace_id=index // 4 + 1, source="bench", layer="l7",
            start_s=float(index), end_s=float(index) + 1.0,
            pod="p1", bytes_out=64, bytes_in=32,
            span_id=index % 4 + 1, parent_id=index % 4, name="s"))
    wall_s = time.perf_counter() - started
    return wall_s, collector


def bench_collector(quick: bool) -> dict:
    spans = 50_000 if quick else 200_000
    unbounded_s, unbounded = _record_all(spans, max_traces=spans)
    bounded_s, bounded = _record_all(spans, max_traces=256)
    assert len(bounded.traces()) == 256
    # Eviction must not lose the traffic aggregate.
    assert bounded.pod_traffic_report() == unbounded.pod_traffic_report()
    print(f"  collector/record: {spans / unbounded_s:,.0f} spans/s "
          f"unbounded, {spans / bounded_s:,.0f} spans/s with eviction")
    return {
        "spans": spans,
        "record_per_sec": round(spans / unbounded_s),
        "record_evicting_per_sec": round(spans / bounded_s),
    }


def _gate_collector_record(spans: int) -> float:
    wall_s, _collector = _record_all(spans, max_traces=spans)
    return spans / wall_s


#: Scenarios the CI perf gate re-runs fresh: (trajectory scenario name,
#: rate function, full-scale argument). Same shape as
#: ``bench_runtime.GATE_SCENARIOS`` so the gate drives them uniformly.
#: The request path is deliberately NOT here: its ~0.1s timing window
#: is too jittery to compare across runs even normalized, so CI gates
#: it through ``--max-disabled-overhead`` instead — the overhead ratio
#: divides out machine speed within a single process.
GATE_SCENARIOS = (
    ("collector/record", _gate_collector_record, 200_000),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="trajectory path (default: repo "
                             "BENCH_obs.json)")
    parser.add_argument("--max-disabled-overhead", type=float, default=None,
                        help="fail (exit 1) if disabled-mode overhead "
                             "exceeds this ratio, e.g. 1.05")
    options = parser.parse_args(argv)
    root = benchlib.repo_root()
    out_path = options.out or os.path.join(root, "BENCH_obs.json")

    calib = benchlib.calibrate()
    print(f"calibration: {calib:,.0f} ops/s")
    print("request path:")
    request_path = bench_request_path(options.quick)
    print("collector:")
    collector = bench_collector(options.quick)

    sha = benchlib.git_sha(root)
    date = benchlib.utc_date()
    report = {
        "git_sha": sha,
        "date": date,
        "calib_ops_per_sec": round(calib),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": options.quick,
        },
        "request_path": request_path,
        "collector": collector,
    }

    budget_failed = False
    if options.max_disabled_overhead is not None:
        overhead = request_path["disabled"]["overhead_vs_baseline"]
        if overhead > options.max_disabled_overhead:
            print(f"FAIL: disabled-tracing overhead {overhead:.3f}x "
                  f"exceeds budget {options.max_disabled_overhead:.3f}x")
            budget_failed = True
        else:
            print(f"disabled-tracing overhead {overhead:.3f}x within "
                  f"budget {options.max_disabled_overhead:.3f}x")

    if options.quick:
        # Quick rates are not comparable to full-scale baselines; print
        # the report but leave the committed trajectory untouched. An
        # explicit --out still gets the report (CI uploads it).
        print(json.dumps(report, indent=2, sort_keys=True))
        if options.out:
            with open(options.out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print("quick run: committed trajectory not updated")
        return 1 if budget_failed else 0

    entries = [
        {"git_sha": sha, "date": date, "scenario": "request_path/disabled",
         "events_per_sec": request_path["disabled"]["requests_per_sec"],
         "calib_ops_per_sec": round(calib)},
        {"git_sha": sha, "date": date, "scenario": "collector/record",
         "events_per_sec": collector["record_per_sec"],
         "calib_ops_per_sec": round(calib)},
    ]
    benchlib.append_trajectory(out_path, entries, report)
    print(f"wrote {out_path}")
    return 1 if budget_failed else 0


if __name__ == "__main__":
    sys.exit(main())
