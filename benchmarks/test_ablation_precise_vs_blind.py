"""Ablation: RCA-driven precise scaling vs blind scaling.

Regenerates the study via ``repro.experiments.run("ablation_scaling")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_precise_vs_blind(exhibit):
    result = exhibit("ablation_scaling")
    assert result.findings["precise_ops"] < result.findings["blind_ops"]
    assert result.findings["precise_time_s"] < result.findings["blind_time_s"]
