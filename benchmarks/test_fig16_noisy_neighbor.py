"""Fig 16: noisy-neighbor isolation in a multi-tenant backend.

Regenerates the exhibit via ``repro.experiments.run("fig16")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig16_noisy_neighbor(exhibit):
    result = exhibit("fig16")
    assert 0.7 <= result.findings["peak_backend_cpu"] <= 0.9
    assert result.findings["final_backend_cpu"] <= 0.4
    assert result.findings["max_error_codes"] == 0
    assert result.findings["recovery_seconds"] <= 60
