"""Fig 19: backend combinations from shuffle sharding.

Regenerates the exhibit via ``repro.experiments.run("fig19")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig19_shuffle_sharding(exhibit):
    result = exhibit("fig19")
    assert result.findings["fully_overlapping_pairs"] == 0
    assert result.findings["min_survivor_backends"] >= 1
