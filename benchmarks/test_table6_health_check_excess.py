"""Table 6: health checks vs app traffic.

Regenerates the exhibit via ``repro.experiments.run("table6")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table6_health_check_excess(exhibit):
    result = exhibit("table6")
    assert result.findings["max_ratio"] > 400
