"""Ablation: redirector chain length (Beamer 2 vs Canal 4).

Regenerates the study via ``repro.experiments.run("ablation_chain")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_chain_length(exhibit):
    result = exhibit("ablation_chain")
    assert result.findings["kept_fraction_chain4"] == 1.0
    assert result.findings["kept_fraction_chain2"] < 0.95
