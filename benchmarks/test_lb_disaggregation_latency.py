"""§4.4's latency claim: dedicated LBs vs in-replica redirectors.

Regenerates via ``repro.experiments.run("lb_latency")``.
"""


def test_lb_disaggregation_latency(exhibit):
    result = exhibit("lb_latency")
    # Paper: 3-4.2 ms with dedicated LBs → 1.4-2.1 ms disaggregated.
    assert 2.6 <= result.findings["dedicated_p10_ms"]
    assert result.findings["dedicated_p90_ms"] <= 4.6
    assert 1.3 <= result.findings["disaggregated_p10_ms"]
    assert result.findings["disaggregated_p90_ms"] <= 2.2
