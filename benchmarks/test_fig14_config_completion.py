"""Fig 14: configuration completion time for pod creation.

Regenerates the exhibit via ``repro.experiments.run("fig14")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig14_config_completion(exhibit):
    result = exhibit("fig14")
    assert 1.3 < result.findings["istio_over_canal_time"] < 2.3
    assert 1.1 < result.findings["ambient_over_canal_time"] < 1.6
