"""Table 2: configuration update frequency by cluster size.

Regenerates the exhibit via ``repro.experiments.run("table2")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table2_update_frequency(exhibit):
    result = exhibit("table2")
    assert 1.0 <= result.findings["small_cluster_per_min"] <= 5.0
    assert 40.0 <= result.findings["large_cluster_per_min"] <= 70.0
