"""Figs 27/28: throughput/latency with key-server offloading.

Regenerates the exhibit via ``repro.experiments.run("fig27_28")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig27_28_offload_perf(exhibit):
    result = exhibit("fig27_28")
    assert 1.5 < result.findings["throughput_ratio_min"]
    assert result.findings["throughput_ratio_max"] < 1.9
    assert result.findings["latency_reduction_max"] > 0.45
