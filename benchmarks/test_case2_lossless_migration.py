"""Case 2 (§6.2): anomalous scaling cadence → lossless migration.

Regenerates the scenario via ``repro.experiments.run("case2")``.
"""


def test_case2_lossless_migration(exhibit):
    result = exhibit("case2")
    assert result.findings["lossless_migrations"] == 1
    assert result.findings["sessions_reset"] == 0
