"""Ablation: incremental vs full-config push.

Regenerates the study via ``repro.experiments.run("ablation_incremental")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_incremental_push(exhibit):
    result = exhibit("ablation_incremental")
    assert result.findings["full_over_incremental_large"] > 2 * result.findings["full_over_incremental_small"]
