"""Fig 21: iptables vs eBPF redirection path structure.

Regenerates the exhibit via ``repro.experiments.run("fig21")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig21_iptables_path(exhibit):
    result = exhibit("fig21")
    assert result.findings["iptables_extra_stack_passes"] == 2
    assert result.findings["cpu_ratio"] > 3.0
