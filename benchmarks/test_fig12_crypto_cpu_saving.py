"""Fig 12: on-node CPU saving from crypto offloading.

Regenerates the exhibit via ``repro.experiments.run("fig12")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig12_crypto_cpu_saving(exhibit):
    result = exhibit("fig12")
    assert 0.43 <= result.findings["local_saving_min"]
    assert result.findings["local_saving_max"] <= 0.72
    assert 0.60 <= result.findings["remote_saving_min"]
    assert result.findings["remote_saving_max"] <= 0.72
