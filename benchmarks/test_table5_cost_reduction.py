"""Table 5: cost reduction by redirector and tunneling.

Regenerates the exhibit via ``repro.experiments.run("table5")`` and
asserts the paper-facing findings hold in shape.
"""


def test_table5_cost_reduction(exhibit):
    result = exhibit("table5")
    assert 0.30 <= result.findings["redirector_min"]
    assert result.findings["redirector_max"] <= 0.50
    assert 0.50 <= result.findings["both_min"]
    assert result.findings["both_max"] <= 0.72
