"""Shared machinery for the per-exhibit benchmark suite.

Each benchmark regenerates one paper table/figure through
``repro.experiments.run`` and records its findings into the
pytest-benchmark ``extra_info`` so ``--benchmark-only`` output shows the
paper-facing numbers next to the runtimes.
"""

import pytest

from repro.experiments import run


@pytest.fixture
def exhibit(benchmark):
    """Run one exhibit under the benchmark clock and return its result."""

    def runner(exp_id):
        result = benchmark.pedantic(lambda: run(exp_id), rounds=1,
                                    iterations=1)
        for key, value in result.findings.items():
            benchmark.extra_info[key] = round(value, 4)
        return result

    return runner
