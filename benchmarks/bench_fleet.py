"""Fleet-tier benchmark: fluid integration throughput at cloud scale.

Plain script (not pytest — ``testpaths`` keeps it out of pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick

Three scenarios, each reported as *slot-updates per second* — one
slot-update is one (service, backend) flow-step integration, the fleet
tier's unit of work the way an agenda pop is simcore's:

* ``fluid_day`` — a 3 AZ x 100 backend x 150 service region through a
  full diurnal day at dt=60s, no scaler or faults: the pure
  integration hot path (``FleetModel._advance_flows`` + aggregation).
* ``fluid_ops_day`` — the same region with the Reuse-first scaler and
  a chaos plan armed: what a fleet_fig20-style exhibit actually pays
  per region, including settle scans and shard growth.
* ``des_validation`` — the per-session reference twin at validation
  scale (the ``fleet/validate.py`` workload), reported as *session
  events per second* (admissions + departures): the price of one
  fluid-vs-DES agreement scenario.

Appends to the committed ``BENCH_fleet.json`` perf trajectory (see
``benchlib``); the CI ``perf-gate`` job re-runs the scenarios fresh
and fails on >10%% normalized regression.
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib  # noqa: E402
from repro.faults.plan import Fault, FaultPlan  # noqa: E402
from repro.fleet import (  # noqa: E402
    FleetConfig,
    FleetDemand,
    FleetFaultEngine,
    FleetModel,
    FleetScaler,
    SessionDES,
)
from repro.simcore import Simulator  # noqa: E402


def _region(scale: float):
    config = FleetConfig(azs=3, backends_per_az=max(10, int(100 * scale)),
                         services=max(10, int(150 * scale)),
                         dt_s=60.0, sample_every=5)
    demand = FleetDemand(mean_sessions=800.0, amplitude=0.3,
                         session_rps=90.0)
    return config, demand


def _slot_updates(model: FleetModel, horizon_s: float) -> int:
    """Slots integrated per tick x ticks (the advance-loop work)."""
    slots = sum(len(shard) for shard in model.topology.shards)
    return int(horizon_s / model.config.dt_s) * slots


def _scn_fluid_day(scale: float) -> float:
    horizon = 86400.0 * min(1.0, scale * 2)
    sim = Simulator(seed=7)
    config, demand = _region(scale)
    model = FleetModel(sim, config, demand)
    started = time.perf_counter()
    model.start(horizon)
    sim.run(until=horizon)
    wall_s = time.perf_counter() - started
    model.check_invariants("bench")
    return _slot_updates(model, horizon) / wall_s


def _scn_fluid_ops_day(scale: float) -> float:
    horizon = 86400.0 * min(1.0, scale * 2)
    sim = Simulator(seed=7)
    config, demand = _region(scale)
    model = FleetModel(sim, config, demand)
    FleetScaler(sim, model)
    engine = FleetFaultEngine(sim, model)
    engine.arm(FaultPlan.of(
        Fault(kind="az_crash", at=horizon * 0.35, target="az:1",
              duration_s=2700.0),
        Fault(kind="backend_crash", at=horizon * 0.55, target="backend:9",
              duration_s=1200.0),
        Fault(kind="query_of_death", at=horizon * 0.65, target="service:6",
              duration_s=1800.0, param=3.0),
    ))
    started = time.perf_counter()
    model.start(horizon)
    sim.run(until=horizon)
    wall_s = time.perf_counter() - started
    model.check_invariants("bench")
    return _slot_updates(model, horizon) / wall_s


def _scn_des_validation(scale: float) -> float:
    horizon = 1800.0 * min(1.0, scale * 2)
    sim = Simulator(seed=7)
    config = FleetConfig(azs=3, backends_per_az=34, services=25,
                         dt_s=1.0, sample_every=10)
    demand = FleetDemand(mean_sessions=3200.0 * scale, session_rps=37.5)
    model = SessionDES(sim, config, demand)
    started = time.perf_counter()
    model.start(horizon)
    sim.run(until=horizon)
    wall_s = time.perf_counter() - started
    model.check_invariants("bench")
    events = model.counters.admitted + model.counters.departed
    return events / wall_s


#: (trajectory scenario name, rate function, full-scale argument) —
#: same shape as ``bench_runtime.GATE_SCENARIOS`` so the CI perf gate
#: drives every benchmark family uniformly.
GATE_SCENARIOS = (
    ("fleet/fluid_day", _scn_fluid_day, 1.0),
    ("fleet/fluid_ops_day", _scn_fluid_ops_day, 1.0),
    ("fleet/des_validation", _scn_des_validation, 1.0),
)


def bench_scenarios(quick: bool) -> dict:
    scale = 0.25 if quick else 1.0
    repeats = 2 if quick else 3
    results = {}
    for name, fn, full_scale in GATE_SCENARIOS:
        best = max(fn(full_scale * scale) for _ in range(repeats))
        results[name] = {"events_per_sec": round(best)}
        print(f"  {name}: {best:,.0f} events/s")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller region and horizon (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="trajectory path (default: repo "
                             "BENCH_fleet.json)")
    options = parser.parse_args(argv)
    root = benchlib.repo_root()
    out_path = options.out or os.path.join(root, "BENCH_fleet.json")

    calib = benchlib.calibrate()
    print(f"calibration: {calib:,.0f} ops/s")
    print("fleet scenarios:")
    scenarios = bench_scenarios(options.quick)

    sha = benchlib.git_sha(root)
    date = benchlib.utc_date()
    report = {
        "git_sha": sha,
        "date": date,
        "calib_ops_per_sec": round(calib),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": options.quick,
        },
        "scenarios": scenarios,
    }
    if options.quick:
        # Quick rates are not comparable to full-scale baselines; print
        # the report but leave the committed trajectory untouched.
        print(json.dumps(report, indent=2, sort_keys=True))
        print("quick run: trajectory not updated")
        return 0

    entries = [
        {"git_sha": sha, "date": date, "scenario": name,
         "events_per_sec": result["events_per_sec"],
         "calib_ops_per_sec": round(calib)}
        for name, result in scenarios.items()
    ]
    benchlib.append_trajectory(out_path, entries, report)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
