"""Fig 10: latency under light workloads.

Regenerates the exhibit via ``repro.experiments.run("fig10")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig10_latency_light(exhibit):
    result = exhibit("fig10")
    assert 1.4 < result.findings["istio_over_canal"] < 2.2
    assert 1.1 < result.findings["ambient_over_canal"] < 1.6
    assert result.findings["canal_over_baseline"] < 1.4
