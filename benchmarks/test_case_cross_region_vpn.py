"""§2.1 case: config updates saturate a 100 Mbps cross-region VPN.

Regenerates the scenario via ``repro.experiments.run("case_vpn")``.
"""


def test_case_cross_region_vpn(exhibit):
    result = exhibit("case_vpn")
    assert result.findings["delay_ratio"] > 5.0
    assert result.findings["queue_growth_100mbps"] > 1.5
