"""Fig 17: CDF of Reuse/New completion times.

Regenerates the exhibit via ``repro.experiments.run("fig17")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig17_scaling_cdf(exhibit):
    result = exhibit("fig17")
    assert 30.0 < result.findings["reuse_p50_s"] < 90.0
    assert 12 * 60 < result.findings["new_p50_s"] < 24 * 60
