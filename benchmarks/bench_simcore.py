"""Simcore engine benchmark: calendar-queue agenda vs the heapq oracle.

Plain script (not pytest — ``testpaths`` keeps it out of tier-1)::

    PYTHONPATH=src python benchmarks/bench_simcore.py
    PYTHONPATH=src python benchmarks/bench_simcore.py --quick

Four engine scenarios, each run on both agenda engines with a
repeat-and-take-best loop:

* ``heavy_traffic`` — the fleet-scale tier (ROADMAP item 1): hundreds
  of thousands of concurrent sessions rescheduling jittered ~1s
  periods. The regime the calendar queue exists for; the tentpole
  target is the calendar engine >= +30% events/sec over heapq here.
* ``same_instant_bursts`` — synchronized config-push / AVX-512 crypto
  batch fan-outs: hundreds of events sharing a timestamp, exercising
  batched same-time draining.
* ``timeout_chain`` — one process advancing through timeouts; the
  minimum-agenda case where C heapq wins on constant factors. This is
  precisely why the default engine is adaptive: ``"auto"`` stays on
  the heap below the migration threshold, so light workloads never
  pay the calendar's pure-Python bookkeeping.
* ``far_future_mix`` — steady traffic plus cert-rotation-style timers
  far past the horizon, exercising the sorted spill path.

Plus a **warm-start sweep demo**: a steady-state world simulated to a
warm-up horizon once, snapshotted, and forked per sweep point
(``repro.runtime.warmstart``) vs. re-simulating warm-up per point; the
tentpole target is >= 3x wall-clock reduction.

Appends to the committed ``BENCH_simcore.json`` perf trajectory (see
``benchlib``); the CI ``perf-gate`` job compares fresh normalized rates
against the latest committed entries and fails on >10% regression.
"""

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import benchlib  # noqa: E402
from repro.runtime import warm_start  # noqa: E402
from repro.simcore import Simulator  # noqa: E402

ENGINES = ("heap", "calendar")


# ---------------------------------------------------------------------------
# scenario worlds — callback-driven so they are also snapshot-eligible.


class _Session:
    """A mesh session re-arming a jittered periodic timer forever."""

    __slots__ = ("sim", "rng", "period", "fired")

    def __init__(self, sim, rng, period):
        self.sim = sim
        self.rng = rng
        self.period = period
        self.fired = 0
        sim.timeout(rng.random() * period).add_callback(self.fire)

    def fire(self, event):
        self.fired += 1
        delay = self.period * (0.5 + self.rng.random())
        self.sim.timeout(delay).add_callback(self.fire)


def _scn_heavy_traffic(engine, scale):
    nsessions = int(400_000 * scale)
    sim = Simulator(seed=7, agenda=engine)
    rng = random.Random(42)
    sessions = [_Session(sim, rng, 1.0) for _ in range(nsessions)]
    started = time.perf_counter()
    sim.run(until=4.0)
    elapsed = time.perf_counter() - started
    return sum(s.fired for s in sessions), elapsed


class _Burst:
    """Config-push fan-out: ``fan`` same-instant events per round."""

    __slots__ = ("sim", "fan", "fired", "rounds")

    def __init__(self, sim, fan, rounds):
        self.sim = sim
        self.fan = fan
        self.fired = 0
        self.rounds = rounds
        self._arm(1.0)

    def _arm(self, when_delay):
        for _ in range(self.fan):
            self.sim.timeout(when_delay).add_callback(self.fire)

    def fire(self, event):
        self.fired += 1
        if self.fired % self.fan == 0 and self.fired < self.rounds * self.fan:
            self._arm(1.0)


def _scn_same_instant_bursts(engine, scale):
    rounds, fan = int(800 * scale), 500
    sim = Simulator(seed=7, agenda=engine)
    burst = _Burst(sim, fan, rounds)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return burst.fired, elapsed


def _scn_timeout_chain(engine, scale):
    n = int(400_000 * scale)
    sim = Simulator(seed=7, agenda=engine)

    def ticker():
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(ticker())
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim._sequence, elapsed


def _scn_far_future_mix(engine, scale):
    nsessions = int(50_000 * scale)
    ntimers = int(20_000 * scale)
    sim = Simulator(seed=7, agenda=engine)
    rng = random.Random(42)
    sessions = [_Session(sim, rng, 1.0) for _ in range(nsessions)]
    fired_far = []
    for index in range(ntimers):  # cert rotations, daily ops: way out
        sim.timeout(3600.0 + rng.random() * 86_400.0, index).add_callback(
            fired_far.append)
    started = time.perf_counter()
    sim.run(until=10.0)
    elapsed = time.perf_counter() - started
    return sum(s.fired for s in sessions), elapsed


SCENARIOS = {
    "heavy_traffic": _scn_heavy_traffic,
    "same_instant_bursts": _scn_same_instant_bursts,
    "timeout_chain": _scn_timeout_chain,
    "far_future_mix": _scn_far_future_mix,
}


def bench_engines(quick):
    scale = 0.25 if quick else 1.0
    repeats = 2 if quick else 3
    out = {}
    for name, scenario in SCENARIOS.items():
        # Interleave engines within each repeat so noisy-neighbor
        # slowdowns hit both engines evenly instead of biasing
        # whichever ran second.
        best = dict.fromkeys(ENGINES, 0.0)
        events = dict.fromkeys(ENGINES, 0)
        for _ in range(repeats):
            for engine in ENGINES:
                events[engine], elapsed = scenario(engine, scale)
                best[engine] = max(best[engine], events[engine] / elapsed)
        rates = {engine: {"events_per_sec": round(best[engine]),
                          "events": events[engine]}
                 for engine in ENGINES}
        ratio = (rates["calendar"]["events_per_sec"]
                 / rates["heap"]["events_per_sec"])
        out[name] = {**rates, "calendar_vs_heap": round(ratio, 3)}
        print(f"  {name}: heap {rates['heap']['events_per_sec']:,} ev/s, "
              f"calendar {rates['calendar']['events_per_sec']:,} ev/s "
              f"({ratio:.2f}x)")
    return out


# ---------------------------------------------------------------------------
# warm-start sweep demo — warm up once + fork vs re-simulate per point.


_WARM_SESSIONS = 5_000
_WARMUP_S = 60.0
_MEASURE_S = 1.0
_POINTS = list(range(8))


def _build_warm_world():
    sim = Simulator(seed=11)
    rng = random.Random(13)
    sim._sessions = [_Session(sim, rng, 1.0)  # park on the sim: picklable
                     for _ in range(_WARM_SESSIONS)]
    return sim


def _measure_point(sim, point):
    horizon = sim.now + _MEASURE_S
    sim.run(until=horizon)
    return sum(s.fired for s in sim._sessions) + point


def bench_warmstart(quick):
    points = _POINTS[:4] if quick else _POINTS
    warmup = _WARMUP_S / 2 if quick else _WARMUP_S

    started = time.perf_counter()
    cold_results = []
    for point in points:
        sim = _build_warm_world()
        sim.run(until=warmup)
        cold_results.append(_measure_point(sim, point))
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    snapshot = warm_start(_build_warm_world, until=warmup)
    warm_results = snapshot.map(_measure_point, points)
    warm_s = time.perf_counter() - started

    assert warm_results == cold_results, (
        "warm-started sweep diverged from cold sweep")
    speedup = cold_s / warm_s
    print(f"  warmstart_sweep: {cold_s:.2f}s cold, {warm_s:.2f}s warm "
          f"({speedup:.2f}x, variant {snapshot.variant})")
    return {
        "points": len(points),
        "warmup_s": warmup,
        "measure_s": _MEASURE_S,
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "snapshot_bytes": snapshot.payload_size,
        "variant": snapshot.variant,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="trajectory path (default: repo "
                             "BENCH_simcore.json)")
    parser.add_argument("--no-append", action="store_true",
                        help="print results without rewriting the "
                             "trajectory file")
    options = parser.parse_args(argv)
    root = benchlib.repo_root()
    out_path = options.out or os.path.join(root, "BENCH_simcore.json")

    calib = benchlib.calibrate()
    print(f"calibration: {calib:,.0f} ops/s")
    print("engine scenarios:")
    engines = bench_engines(options.quick)
    print("warm-start sweep:")
    warm = bench_warmstart(options.quick)

    sha = benchlib.git_sha(root)
    date = benchlib.utc_date()
    entries = [
        {"git_sha": sha, "date": date, "scenario": f"{name}/calendar",
         "events_per_sec": result["calendar"]["events_per_sec"],
         "calib_ops_per_sec": round(calib)}
        for name, result in engines.items()
    ]
    last_run = {
        "git_sha": sha, "date": date, "quick": options.quick,
        "calib_ops_per_sec": round(calib),
        "engines": engines, "warmstart": warm,
    }
    if options.no_append or options.quick:
        # Quick rates are not comparable to full-scale baselines; print
        # the report but leave the committed trajectory untouched.
        print(json.dumps(last_run, indent=2, sort_keys=True))
        if options.quick and not options.no_append:
            print("quick run: trajectory not updated")
    else:
        benchlib.append_trajectory(out_path, entries, last_run)
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
