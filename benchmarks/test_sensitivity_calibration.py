"""Robustness: headline orderings under ±40% calibration perturbation.

Regenerates via ``repro.experiments.run("sensitivity")``.
"""


def test_sensitivity_calibration(exhibit):
    result = exhibit("sensitivity")
    assert result.findings["ordering_holds_everywhere"] == 1.0
    assert result.findings["latency_ratio_min"] > 1.1
