"""CI perf regression gate: fresh runs vs the committed trajectories.

Re-runs the gated benchmark scenarios at full scale with a
repeat-and-take-best loop, normalizes each rate by a same-process
calibration spin loop (see ``benchlib``), and compares against the
latest committed entry per scenario in ``BENCH_simcore.json``,
``BENCH_runtime.json``, ``BENCH_obs.json``, and ``BENCH_fleet.json``.
Exits non-zero if any scenario's normalized rate regressed by more
than the tolerance (default 10%).

::

    PYTHONPATH=src python benchmarks/perf_gate.py
    PYTHONPATH=src python benchmarks/perf_gate.py --inject-slowdown 10

``--inject-slowdown PCT`` scales every measured rate down by PCT
percent before the comparison — CI runs it after the real gate and
asserts the gate *fails*, proving the gate can actually catch a
regression of that size.

Normalization makes the gate portable across runners: a slower machine
scores lower on both the scenario and the calibration loop, so the
ratio moves far less than raw events/sec. Residual noise is damped by
take-best (the max over repeats estimates the machine's true ceiling
better than the mean under CI noisy neighbors).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import bench_fleet  # noqa: E402
import bench_obs  # noqa: E402
import bench_runtime  # noqa: E402
import bench_simcore  # noqa: E402
import benchlib  # noqa: E402

#: Allowed normalized-rate regression before the gate fails.
TOLERANCE = 0.10


def gate_checks(repeats):
    """Yield ``(scenario, fresh_events_per_sec)`` for every gated
    scenario with a committed baseline."""
    root = benchlib.repo_root()

    sim_baselines = benchlib.baseline_rates(
        os.path.join(root, "BENCH_simcore.json"))
    for name, scenario in bench_simcore.SCENARIOS.items():
        key = f"{name}/calendar"
        baseline = sim_baselines.get(key)
        if baseline is None:
            print(f"  {key}: no committed baseline, skipped")
            continue
        best = 0.0
        for _ in range(repeats):
            events, elapsed = scenario("calendar", 1.0)
            best = max(best, events / elapsed)
        yield key, best, baseline

    # bench_runtime, bench_obs, and bench_fleet all expose the same
    # (name, rate_fn, full_scale_arg) GATE_SCENARIOS shape.
    for module, trajectory in ((bench_runtime, "BENCH_runtime.json"),
                               (bench_obs, "BENCH_obs.json"),
                               (bench_fleet, "BENCH_fleet.json")):
        baselines = benchlib.baseline_rates(os.path.join(root, trajectory))
        for name, fn, full_n in module.GATE_SCENARIOS:
            baseline = baselines.get(name)
            if baseline is None:
                print(f"  {name}: no committed baseline, skipped")
                continue
            best = max(fn(full_n) for _ in range(repeats))
            yield name, best, baseline


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="take-best repeats per scenario")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional regression")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        metavar="PCT",
                        help="scale measured rates down by PCT%% "
                             "(gate self-test: the gate must fail)")
    options = parser.parse_args(argv)
    factor = 1.0 - options.inject_slowdown / 100.0

    calib = benchlib.calibrate()
    print(f"calibration: {calib:,.0f} ops/s")
    if options.inject_slowdown:
        print(f"injecting {options.inject_slowdown:.0f}% slowdown "
              f"(gate self-test)")

    failures = []
    compared = 0
    for name, rate, baseline in gate_checks(options.repeats):
        normalized = rate * factor / calib
        ratio = normalized / baseline
        compared += 1
        verdict = "ok" if ratio >= 1.0 - options.tolerance else "REGRESSION"
        print(f"  {name}: {rate * factor:,.0f} ev/s, "
              f"{ratio:.2f}x of baseline — {verdict}")
        if verdict != "ok":
            failures.append(name)

    if not compared:
        print("perf-gate: no committed baselines found — nothing gated")
        return 0
    if failures:
        print(f"perf-gate: FAIL — normalized regression > "
              f"{options.tolerance:.0%} in: {', '.join(failures)}")
        return 1
    print(f"perf-gate: ok ({compared} scenarios within "
          f"{options.tolerance:.0%} of committed baselines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
