"""Fig 11: P99 latency vs offered RPS (throughput knees).

Regenerates the exhibit via ``repro.experiments.run("fig11")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig11_latency_vs_rps(exhibit):
    result = exhibit("fig11")
    assert result.findings["canal_over_istio_throughput"] > 5.0
    assert result.findings["canal_over_ambient_throughput"] > 1.5
