"""Fig 18: daily Reuse/New occurrences over a month.

Regenerates the exhibit via ``repro.experiments.run("fig18")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig18_scaling_occurrences(exhibit):
    result = exhibit("fig18")
    assert result.findings["total_reuse"] > 8 * result.findings["total_new"]
    assert result.findings["total_new"] > 0
