"""Ablation: session-aggregation tunnel count.

Regenerates the study via ``repro.experiments.run("ablation_tunnels")`` and
asserts the design choice's benefit is visible.
"""


def test_ablation_tunnel_count(exhibit):
    result = exhibit("ablation_tunnels")
    assert result.findings["session_reduction_at_10x"] > 0.999
