"""Fig 24: production end-to-end latency distribution.

Regenerates the exhibit via ``repro.experiments.run("fig24")`` and
asserts the paper-facing findings hold in shape.
"""


def test_fig24_latency_distribution(exhibit):
    result = exhibit("fig24")
    assert result.findings["share_40_50ms"] > 0.25
    assert result.findings["share_100_200ms"] > 0.25
    assert result.findings["key_server_delta_relative"] < 0.02
