"""Ambient fault-plan state, mirroring ``repro.obs.runtime``.

Two pieces of cross-cutting state live here:

* the **ambient fault plan** — installed by the serve worker (from a
  job spec's ``faults`` field) or a caller's ``use_fault_plan`` block,
  and honored by chaos-aware exhibits (``fig8_recovery``) so one
  exhibit body serves both its default schedule and externally
  supplied plans. ``repro.runtime.cache`` treats an installed plan as
  a cache disqualifier: a faulted run must never satisfy (or poison)
  the clean-result cache.
* **timeline registration** — every :class:`~repro.faults.engine.\
FaultEngine` registers its timeline list here at construction;
  ``repro.runtime.driver`` drains them after a run and folds them into
  the JSON run report.

This module must stay import-light (no simcore/core imports): the
result cache imports it on its hot path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "get_fault_plan",
    "set_fault_plan",
    "use_fault_plan",
    "register_timeline",
    "take_timelines",
]

_plan = None
_timelines: List[List[Dict[str, object]]] = []


def get_fault_plan():
    """The ambient plan, or ``None`` when no chaos is requested."""
    return _plan


def set_fault_plan(plan) -> Optional[object]:
    """Install ``plan`` (may be ``None``); returns the previous plan."""
    global _plan
    previous, _plan = _plan, plan
    return previous


@contextmanager
def use_fault_plan(plan) -> Iterator[object]:
    """Scope an ambient fault plan over a ``with`` block."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def register_timeline(timeline: List[Dict[str, object]]) -> None:
    """Track one engine's timeline for the next :func:`take_timelines`."""
    _timelines.append(timeline)


def take_timelines() -> List[List[Dict[str, object]]]:
    """Drain (return and forget) every registered fault timeline."""
    global _timelines
    drained, _timelines = _timelines, []
    return drained
