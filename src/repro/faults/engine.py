"""The fault engine: compiles a FaultPlan onto a simulator agenda.

:meth:`FaultEngine.arm` walks a :class:`~repro.faults.plan.FaultPlan`
and schedules one direct call per injection (and one per recovery,
when the fault has a ``duration_s``) on the simulator's agenda via the
allocation-free ``_schedule_call`` path. Everything after that is
ordinary discrete-event execution: faults fire at exact virtual times,
tie-broken by plan order through the agenda's monotone sequence
numbers, so a plan's effect is a pure function of (plan, seed) —
independent of wall clock, worker count, or process interleaving.

After every injection and recovery the engine appends a timeline entry
(drained into run reports via :mod:`repro.faults.runtime`), bumps the
``faults_injected_total`` / ``faults_recovered_total`` telemetry
counters, and — unless auditing was disabled — runs the
:class:`~repro.faults.audit.InvariantAuditor` so a conservation bug
surfaces at the exact step that introduced it.

Wiring is by component: pass whichever of ``gateway`` /
``controlplane`` / ``ca`` / ``redirector`` the plan's fault kinds
touch; :meth:`arm` rejects a plan that needs a component the engine
was not given, at arm time rather than mid-run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.failure import FailureInjector
from ..obs.runtime import get_telemetry
from ..obs.trace import get_tracer
from ..simcore import Simulator
from .audit import InvariantAuditor
from .plan import Fault, FaultPlan, FaultPlanError
from .runtime import register_timeline

__all__ = ["FaultEngine", "FaultTargetError"]


class FaultTargetError(FaultPlanError):
    """A fault's target could not be resolved against the topology."""


#: Component each fault kind needs wired into the engine.
_REQUIRES = {
    "replica_crash": "gateway",
    "backend_crash": "gateway",
    "az_crash": "gateway",
    "query_of_death": "gateway",
    "controlplane_push_delay": "controlplane",
    "controlplane_partition": "controlplane",
    "cert_rotation_failure": "ca",
    "nagle_misconfig": "redirector",
}


class FaultEngine:
    """Executes fault plans against the wired components."""

    def __init__(self, sim: Simulator, gateway=None, controlplane=None,
                 ca=None, redirector=None,
                 auditor: Optional[InvariantAuditor] = None,
                 audit: bool = True, reissue_ttl_s: float = 1e6):
        self.sim = sim
        self.gateway = gateway
        self.controlplane = controlplane
        self.ca = ca
        #: Current redirector config; ``nagle_misconfig`` swaps in a
        #: degraded copy here, recovery restores the pristine one.
        #: Consumers that want the fault to bite must read the
        #: redirector through this attribute.
        self.redirector = redirector
        self._pristine_redirector = redirector
        self.reissue_ttl_s = reissue_ttl_s
        self.injector = (FailureInjector(sim, gateway)
                         if gateway is not None else None)
        if auditor is not None:
            self.auditor = auditor
        elif audit:
            self.auditor = InvariantAuditor(gateway=gateway,
                                            controlplane=controlplane)
        else:
            self.auditor = None
        #: Chronological record of every injection/recovery, drained
        #: into run reports by ``repro.runtime.driver``.
        self.timeline: List[Dict[str, object]] = []
        register_timeline(self.timeline)
        self.armed_faults = 0

    # -- arming --------------------------------------------------------------
    def arm(self, plan: FaultPlan) -> int:
        """Schedule every sim-scoped fault in ``plan``; returns how many.

        ``serve_worker_death`` entries are skipped here — they belong
        to the serve worker layer, not the simulation.
        """
        for fault in plan.sim_faults():
            component = _REQUIRES[fault.kind]
            if getattr(self, component) is None:
                raise FaultPlanError(
                    f"{fault.kind} needs a {component!r} wired into the "
                    f"FaultEngine")
        for fault in plan.sim_faults():
            delay = fault.at - self.sim.now
            if delay < 0:
                raise FaultPlanError(
                    f"{fault.kind} at t={fault.at} is in the past "
                    f"(sim.now={self.sim.now})")
            self.sim._schedule_call(self._fire, fault, delay)
            if fault.duration_s is not None:
                self.sim._schedule_call(self._heal, fault,
                                        delay + fault.duration_s)
            self.armed_faults += 1
        return self.armed_faults

    # -- target resolution ---------------------------------------------------
    def _service_ids(self) -> List[int]:
        return sorted(self.gateway.service_backends)

    def _resolve_service(self, token: str) -> int:
        if token.startswith("service:"):
            index = _index(token, "service")
            services = self._service_ids()
            if index >= len(services):
                raise FaultTargetError(
                    f"{token}: only {len(services)} services registered")
            return services[index]
        try:
            return int(token)
        except ValueError:
            raise FaultTargetError(
                f"service target must be 'service:<i>' or a service id, "
                f"got {token!r}") from None

    def _resolve_backend(self, target: str) -> str:
        """``service:i/backend:j`` or a literal name → backend name."""
        if "/" not in target:
            return target
        service_token, backend_token = target.split("/", 1)
        service_id = self._resolve_service(service_token)
        backends = self.gateway.service_backends[service_id]
        index = _index(backend_token, "backend")
        if index >= len(backends):
            raise FaultTargetError(
                f"{target}: service {service_id} has only "
                f"{len(backends)} backends")
        return backends[index].name

    def _resolve_replica(self, fault: Fault):
        """→ (backend_name, replica_name) for a replica_crash fault."""
        if "/" not in fault.target:
            return fault.backend, fault.target
        prefix, replica_token = fault.target.rsplit("/", 1)
        backend_name = self._resolve_backend(prefix)
        backend = self.gateway.backend_by_name(backend_name)
        index = _index(replica_token, "replica")
        if index >= len(backend.replicas):
            raise FaultTargetError(
                f"{fault.target}: backend {backend_name} has only "
                f"{len(backend.replicas)} replicas")
        return backend_name, backend.replicas[index].name

    # -- firing --------------------------------------------------------------
    def _fire(self, fault: Fault) -> None:
        detail = self._inject(fault)
        self._note("inject", fault, detail)

    def _heal(self, fault: Fault) -> None:
        detail = self._recover(fault)
        self._note("recover", fault, detail)

    def _inject(self, fault: Fault) -> str:
        kind = fault.kind
        if kind == "replica_crash":
            backend_name, replica_name = self._resolve_replica(fault)
            event = self.injector.fail_replica(backend_name, replica_name)
            return f"{replica_name} ({event.sessions_disrupted} sessions)"
        if kind == "backend_crash":
            name = self._resolve_backend(fault.target)
            event = self.injector.fail_backend(name)
            return f"{name} ({event.sessions_disrupted} sessions)"
        if kind == "az_crash":
            event = self.injector.fail_az(fault.target)
            return f"{fault.target} ({event.sessions_disrupted} sessions)"
        if kind == "query_of_death":
            service_id = self._resolve_service(fault.target)
            events = self.injector.query_of_death(service_id)
            return (f"service {service_id} "
                    f"({len(events)} backends cascaded)")
        if kind == "controlplane_push_delay":
            self.controlplane.inject_push_delay(fault.param)
            return f"+{fault.param:g}s southbound"
        if kind == "controlplane_partition":
            self.controlplane.partition()
            return "controller partitioned"
        if kind == "cert_rotation_failure":
            generation = self.ca.rotate_secret()
            return f"CA secret rotated to gen{generation}, certs orphaned"
        if kind == "nagle_misconfig":
            self.redirector = replace(self._pristine_redirector,
                                      nagle_enabled=False)
            return "nagle aggregation lost"
        raise FaultPlanError(f"unhandled fault kind {kind!r}")

    def _recover(self, fault: Fault) -> str:
        kind = fault.kind
        if kind == "replica_crash":
            backend_name, replica_name = self._resolve_replica(fault)
            self.injector.recover_replica(backend_name, replica_name)
            return replica_name
        if kind == "backend_crash":
            name = self._resolve_backend(fault.target)
            self.injector.recover_backend(name)
            return name
        if kind == "az_crash":
            self.injector.recover_az(fault.target)
            return fault.target
        if kind == "query_of_death":
            service_id = self._resolve_service(fault.target)
            self.injector.recover_service(service_id)
            return f"service {service_id}"
        if kind == "controlplane_push_delay":
            self.controlplane.clear_push_delay()
            return "southbound delay cleared"
        if kind == "controlplane_partition":
            self.controlplane.heal_partition()
            return "partition healed"
        if kind == "cert_rotation_failure":
            reissued = self.ca.reissue_all(self.sim.now + self.reissue_ttl_s)
            return f"{len(reissued)} certs reissued"
        if kind == "nagle_misconfig":
            self.redirector = self._pristine_redirector
            return "nagle restored"
        raise FaultPlanError(f"unhandled fault kind {kind!r}")

    def _note(self, action: str, fault: Fault, detail: str) -> None:
        entry = {"t": self.sim.now, "action": action, "kind": fault.kind,
                 "target": fault.target, "detail": detail}
        self.timeline.append(entry)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc(f"faults_{action}ed_total", kind=fault.kind)
        tracer = get_tracer()
        if tracer is not None and tracer.collector is not None:
            # Annotate the fault onto the trace stream so analytics can
            # line up injections with the first degraded trace.
            tracer.collector.mark_fault(self.sim.now, action, fault.kind,
                                        fault.target, detail)
        if self.auditor is not None:
            self.auditor.check(
                context=f"{action}:{fault.kind}:{fault.target or '-'}")


def _index(token: str, label: str) -> int:
    prefix = f"{label}:"
    if not token.startswith(prefix):
        raise FaultTargetError(
            f"expected '{label}:<index>' in target, got {token!r}")
    try:
        index = int(token[len(prefix):])
    except ValueError:
        raise FaultTargetError(
            f"non-integer index in {token!r}") from None
    if index < 0:
        raise FaultTargetError(f"negative index in {token!r}")
    return index
