"""Conservation invariants checked after every fault and recovery.

The :class:`InvariantAuditor` is the bug-finding half of the fault
subsystem: after each injection or recovery it re-derives the
gateway's externally visible state from first principles and asserts
it agrees with what the bookkeeping claims. The catalog:

``sessions-in-range``
    Every replica's session count sits in ``[0, capacity]``.
``dead-replica-sessions``
    An unhealthy replica holds zero sessions — its SmartNIC table died
    with the VM (stale counts here were a real pre-plan bug: failures
    injected below the gateway API left sessions parked on corpses).
``session-conservation``
    Fluid-mode sessions carried by a service's backends never exceed
    the assigned total, and — when any backend is available — fall
    short only by integer-division slack (< one share per target).
``availability-consistency``
    ``availability_report`` equals availability re-derived from
    backend/replica health (including the sandbox override); no
    service is marked up with zero live backends.
``dns-consistency``
    Each (service, AZ) DNS record's health flag equals "that service
    has a healthy backend in that AZ" (stale records were the other
    real pre-plan bug: replica-scoped failures never refreshed DNS).
``water-levels``
    Backend water levels stay within ``[0, 1]``.
``counters-monotone``
    Every ambient telemetry *counter* family total is non-decreasing
    between checks (gauges may move freely).
``controlplane-counters``
    Push/byte totals are non-negative and monotone; the injected push
    delay is never negative.
``breaker-legality``
    Every circuit-breaker transition recorded by the gateway's
    installed resilience policies is a legal state-machine edge
    (closed→open, open→half_open, half_open→closed/open) and
    transition times never regress — a breaker that "recovers"
    without passing through half-open is a mesh bug.
``retry-amplification``
    Recorded retries never exceed ``first_attempts × (max_attempts
    − 1)`` — the configured amplification cap; more means the retry
    loop leaked attempts past its budget.

The resilience checks run only when the gateway has a policy set
installed (``gateway.resilience``), so unprotected runs audit
exactly what they did before.

A failed invariant raises :class:`InvariantViolation` (an
``AssertionError``: a violated invariant is a bug in the simulation,
not a condition for callers to handle) unless the auditor was built
with ``raise_on_violation=False``, in which case violations accumulate
on :attr:`InvariantAuditor.violations` for later inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.runtime import get_telemetry
from ..resilience import BreakerIllegalTransition

__all__ = ["InvariantAuditor", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """One conservation property failed after a fault or recovery."""

    def __init__(self, invariant: str, message: str, context: str = ""):
        suffix = f" [after {context}]" if context else ""
        super().__init__(f"{invariant}: {message}{suffix}")
        self.invariant = invariant
        self.context = context


class InvariantAuditor:
    """Re-derives and checks system state after every fault step."""

    def __init__(self, gateway=None, controlplane=None,
                 raise_on_violation: bool = True):
        self.gateway = gateway
        self.controlplane = controlplane
        self.raise_on_violation = raise_on_violation
        self.checks_run = 0
        self.violations: List[InvariantViolation] = []
        self._counter_totals: Dict[str, float] = {}
        self._cp_totals = (0, 0)

    # -- entry point ---------------------------------------------------------
    def check(self, context: str = "") -> int:
        """Run every applicable invariant; returns how many ran.

        ``context`` names the step being audited (e.g.
        ``"inject:az_crash:az1"``) and is carried into violation
        messages and the telemetry counter.
        """
        checks = 0
        if self.gateway is not None:
            checks += self._check_sessions(context)
            checks += self._check_availability(context)
            checks += self._check_dns(context)
            checks += self._check_water_levels(context)
            if getattr(self.gateway, "resilience", None) is not None:
                checks += self._check_resilience(context)
        checks += self._check_counters_monotone(context)
        if self.controlplane is not None:
            checks += self._check_controlplane(context)
        self.checks_run += checks
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("fault_invariant_checks_total", amount=checks)
        return checks

    def _violate(self, invariant: str, message: str, context: str) -> None:
        violation = InvariantViolation(invariant, message, context)
        self.violations.append(violation)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("fault_invariant_violations_total",
                          invariant=invariant)
        if self.raise_on_violation:
            raise violation

    # -- gateway invariants --------------------------------------------------
    def _check_sessions(self, context: str) -> int:
        gateway = self.gateway
        for backend in gateway.all_backends:
            for replica in backend.replicas:
                used = replica.sessions_used
                if used < 0 or used > replica.config.session_capacity:
                    self._violate(
                        "sessions-in-range",
                        f"replica {replica.name} holds {used} sessions "
                        f"(capacity {replica.config.session_capacity})",
                        context)
                if not replica.healthy and used > 0:
                    self._violate(
                        "dead-replica-sessions",
                        f"unhealthy replica {replica.name} still holds "
                        f"{used} sessions", context)
        for service_id in sorted(gateway.service_sessions):
            total = gateway.service_sessions[service_id]
            carriers = list(gateway.service_backends.get(service_id, ()))
            sandbox = gateway.sandboxed.get(service_id)
            if sandbox is not None and sandbox not in carriers:
                carriers.append(sandbox)
            carried = sum(b.service_sessions(service_id) for b in carriers)
            if carried < 0 or carried > total:
                self._violate(
                    "session-conservation",
                    f"service {service_id} carries {carried} sessions, "
                    f"assigned {total}", context)
            targets = [b for b in carriers if b.is_healthy]
            if sandbox is not None:
                targets = [sandbox] if sandbox.is_healthy else []
            if total > 0 and targets and total - carried >= len(targets):
                self._violate(
                    "session-conservation",
                    f"service {service_id} lost {total - carried} of "
                    f"{total} sessions with {len(targets)} available "
                    f"backend(s) (more than integer-division slack)",
                    context)
        return 2

    def _check_availability(self, context: str) -> int:
        gateway = self.gateway
        for service_id in sorted(gateway.service_backends):
            reported_up = not gateway.service_outage(service_id)
            sandbox = gateway.sandboxed.get(service_id)
            if sandbox is not None:
                derived_up = any(r.healthy for r in sandbox.replicas)
            else:
                derived_up = any(
                    replica.healthy
                    for backend in gateway.service_backends[service_id]
                    for replica in backend.replicas)
            if reported_up != derived_up:
                self._violate(
                    "availability-consistency",
                    f"service {service_id} reported "
                    f"{'up' if reported_up else 'down'} but replica "
                    f"health derives "
                    f"{'up' if derived_up else 'down'}", context)
        return 1

    def _check_dns(self, context: str) -> int:
        gateway = self.gateway
        for service_id in sorted(gateway.service_backends):
            backends = gateway.service_backends[service_id]
            name = gateway._dns_name(service_id)
            records = {record.address: record
                       for record in gateway.dns.endpoints(name)}
            for az in sorted({b.az for b in backends}):
                record = records.get(f"vip-{service_id}-{az}")
                if record is None:
                    continue
                healthy_here = any(b.is_healthy for b in backends
                                   if b.az == az)
                if record.healthy != healthy_here:
                    self._violate(
                        "dns-consistency",
                        f"service {service_id} DNS in {az} says "
                        f"{'healthy' if record.healthy else 'down'} but "
                        f"backends derive "
                        f"{'healthy' if healthy_here else 'down'}",
                        context)
        return 1

    def _check_water_levels(self, context: str) -> int:
        for backend in self.gateway.all_backends:
            level = backend.water_level()
            if level < 0.0 or level > 1.0:
                self._violate(
                    "water-levels",
                    f"backend {backend.name} water level {level:.3f} "
                    f"outside [0, 1]", context)
        return 1

    def _check_resilience(self, context: str) -> int:
        """Breaker state-machine legality + retry amplification cap."""
        policies = self.gateway.resilience
        for service_id in sorted(policies.breakers):
            breaker = policies.breakers[service_id]
            try:
                breaker.audit_transitions()
            except BreakerIllegalTransition as exc:
                self._violate("breaker-legality", str(exc), context)
        if policies.retry is not None:
            retry = policies.retry
            bound = retry.amplification_bound()
            if retry.retries > bound:
                self._violate(
                    "retry-amplification",
                    f"{retry.retries} retries exceed the cap of {bound} "
                    f"({retry.first_attempts} first attempts × "
                    f"{retry.max_retries} max retries)", context)
        return 2

    # -- telemetry / control-plane invariants --------------------------------
    def _check_counters_monotone(self, context: str) -> int:
        telemetry = get_telemetry()
        for family in telemetry.families():
            if family.kind != "counter":
                continue
            total = sum(child.value for child in family)
            previous = self._counter_totals.get(family.name, 0.0)
            if total < previous:
                self._violate(
                    "counters-monotone",
                    f"counter {family.name} went backwards "
                    f"({previous} -> {total})", context)
            self._counter_totals[family.name] = total
        return 1

    def _check_controlplane(self, context: str) -> int:
        cp = self.controlplane
        pushed, total_bytes = cp.updates_pushed, cp.bytes_pushed_total
        prev_pushed, prev_bytes = self._cp_totals
        if pushed < prev_pushed or total_bytes < prev_bytes:
            self._violate(
                "controlplane-counters",
                f"push totals went backwards "
                f"({prev_pushed}/{prev_bytes} -> {pushed}/{total_bytes})",
                context)
        if pushed < 0 or total_bytes < 0 or cp.push_delay_s < 0:
            self._violate(
                "controlplane-counters",
                f"negative control-plane counter (pushes={pushed}, "
                f"bytes={total_bytes}, delay={cp.push_delay_s})", context)
        self._cp_totals = (pushed, total_bytes)
        return 1
