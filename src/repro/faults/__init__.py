"""Deterministic, seeded fault injection with invariant auditing.

The subsystem has three moving parts:

* :class:`FaultPlan` (``plan.py``) — a declarative, JSON-serializable
  schedule of typed faults: replica/backend/AZ crashes and recoveries,
  the query-of-death cascade, control-plane push delay and partition,
  cert-rotation failure, Nagle misconfiguration, and serve worker
  death;
* :class:`FaultEngine` (``engine.py``) — compiles a plan onto a
  :class:`~repro.simcore.Simulator` agenda so faults fire at exact
  virtual times (byte-identical under ``sweep_map`` at any ``--jobs``
  level) and records a timeline of every injection/recovery;
* :class:`InvariantAuditor` (``audit.py``) — after every step,
  re-derives session conservation, availability, DNS health, and
  counter monotonicity from first principles and raises
  :class:`InvariantViolation` on the first inconsistency.

``runtime.py`` holds the ambient plan (for serve chaos jobs) and the
timeline registry the run-report exporter drains.
"""

from .audit import InvariantAuditor, InvariantViolation
from .engine import FaultEngine, FaultTargetError
from .plan import FAULT_KINDS, Fault, FaultPlan, FaultPlanError
from .runtime import (
    get_fault_plan,
    register_timeline,
    set_fault_plan,
    take_timelines,
    use_fault_plan,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultEngine",
    "FaultPlan",
    "FaultPlanError",
    "FaultTargetError",
    "InvariantAuditor",
    "InvariantViolation",
    "get_fault_plan",
    "register_timeline",
    "set_fault_plan",
    "take_timelines",
    "use_fault_plan",
]
