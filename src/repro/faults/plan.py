"""Declarative fault plans: typed, serializable, deterministic.

A :class:`FaultPlan` is a schedule of :class:`Fault` entries — *what*
breaks, *when* (virtual time), and for *how long* — with no behaviour
of its own. The :class:`~repro.faults.engine.FaultEngine` compiles a
plan onto a :class:`~repro.simcore.Simulator` agenda, so faults fire at
exact virtual times regardless of wall-clock scheduling, worker count,
or process interleaving: the same plan over the same seed is
byte-identical at any ``--jobs`` level.

Plans round-trip through JSON (``to_json``/``from_json``) so they can
travel in ``repro.serve`` job specs, be committed next to an exhibit,
or be diffed across runs; :meth:`FaultPlan.canonical` is the sorted,
whitespace-free encoding used for job dedupe keys.

Targets may be literal object names (``backend-3``, ``az2``) or
*symbolic* paths resolved against the gateway topology at fire time::

    service:0                    # the first registered service
    service:0/backend:1          # its second shuffle-shard backend
    service:0/backend:1/replica:0   # that backend's first replica

Symbolic targets keep a plan meaningful across seeds: shuffle-sharding
assigns different concrete backends per seed, but "the victim service's
first backend" names the same *role* in every run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """A fault entry or plan failed validation."""


#: Every fault kind the engine knows how to inject. ``serve_worker_death``
#: is special: it is consumed by the ``repro.serve`` worker layer (kill
#: the forked job process on its first ``param`` attempts) rather than
#: compiled onto the simulator agenda.
FAULT_KINDS = (
    "replica_crash",
    "backend_crash",
    "az_crash",
    "query_of_death",
    "controlplane_push_delay",
    "controlplane_partition",
    "cert_rotation_failure",
    "nagle_misconfig",
    "serve_worker_death",
)

#: Kinds that need a target; the rest act on a singleton component.
_TARGETED_KINDS = ("replica_crash", "backend_crash", "az_crash",
                   "query_of_death")

#: Kinds whose ``param`` must be positive (it carries the magnitude).
_PARAM_KINDS = ("controlplane_push_delay",)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: kind + virtual time + target + duration.

    ``duration_s`` (when set) schedules the matching recovery that many
    seconds after injection; ``None`` means the fault persists to the
    end of the run. ``param`` carries a kind-specific magnitude: the
    extra seconds for ``controlplane_push_delay``, the number of doomed
    attempts for ``serve_worker_death`` (default 1).
    """

    kind: str
    at: float = 0.0
    target: str = ""
    #: Owning backend for ``replica_crash`` with a literal replica name
    #: (symbolic ``service:i/backend:j/replica:k`` targets carry the
    #: backend in the path instead).
    backend: str = ""
    duration_s: Optional[float] = None
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: "
                + ", ".join(FAULT_KINDS))
        if self.at < 0:
            raise FaultPlanError(
                f"{self.kind}: fault time must be >= 0, got {self.at}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise FaultPlanError(
                f"{self.kind}: duration_s must be > 0, got "
                f"{self.duration_s}")
        if self.kind in _TARGETED_KINDS and not self.target:
            raise FaultPlanError(f"{self.kind} needs a target")
        if self.kind in _PARAM_KINDS and self.param <= 0:
            raise FaultPlanError(
                f"{self.kind} needs a positive param "
                f"(got {self.param})")
        if (self.kind == "replica_crash" and not self.backend
                and "/" not in self.target):
            raise FaultPlanError(
                "replica_crash with a literal replica name needs its "
                "owning 'backend'; or use a symbolic "
                "service:i/backend:j/replica:k target")

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "at": self.at}
        if self.target:
            out["target"] = self.target
        if self.backend:
            out["backend"] = self.backend
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.param:
            out["param"] = self.param
        return out

    @classmethod
    def from_json(cls, payload: object) -> "Fault":
        if not isinstance(payload, dict):
            raise FaultPlanError("each fault must be a JSON object")
        known = ("kind", "at", "target", "backend", "duration_s", "param")
        unknown = sorted(k for k in payload if k not in known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault field(s): {', '.join(unknown)}")
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise FaultPlanError("fault 'kind' must be a string")
        at = _number(payload.get("at", 0.0), "at")
        target = payload.get("target", "")
        backend = payload.get("backend", "")
        if not isinstance(target, str) or not isinstance(backend, str):
            raise FaultPlanError("'target' and 'backend' must be strings")
        duration = payload.get("duration_s")
        if duration is not None:
            duration = _number(duration, "duration_s")
        param = _number(payload.get("param", 0.0), "param")
        return cls(kind=kind, at=at, target=target, backend=backend,
                   duration_s=duration, param=param)


def _number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"fault {name!r} must be a number")
    return float(value)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of faults.

    Order matters only to break ties among faults at the same virtual
    time (earlier in the plan fires first); otherwise the engine
    schedules each fault independently at its own ``at``.
    """

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self):
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise FaultPlanError(
                    f"plan entries must be Fault instances, got "
                    f"{type(fault).__name__}")

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(tuple(faults))

    @classmethod
    def from_json(cls, payload: object) -> "FaultPlan":
        if not isinstance(payload, (list, tuple)):
            raise FaultPlanError("a fault plan must be a JSON array")
        return cls(tuple(Fault.from_json(entry) for entry in payload))

    def to_json(self) -> List[Dict[str, object]]:
        return [fault.to_json() for fault in self.faults]

    def canonical(self) -> str:
        """Deterministic compact encoding (dedupe keys, diffs)."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def of_kind(self, *kinds: str) -> "FaultPlan":
        return FaultPlan(tuple(f for f in self.faults if f.kind in kinds))

    def sim_faults(self) -> Tuple[Fault, ...]:
        """Faults the engine compiles onto the simulator agenda."""
        return tuple(f for f in self.faults
                     if f.kind != "serve_worker_death")

    def serve_faults(self) -> Tuple[Fault, ...]:
        """Faults consumed by the serve worker layer."""
        return tuple(f for f in self.faults
                     if f.kind == "serve_worker_death")

    def horizon(self) -> float:
        """Virtual time by which every fault and recovery has fired."""
        edge = 0.0
        for fault in self.sim_faults():
            edge = max(edge, fault.at + (fault.duration_s or 0.0))
        return edge
