"""A Kubernetes-like cluster: nodes, scheduling, services, watch events.

The cluster is deliberately mesh-agnostic: the three mesh architectures
subscribe to its watch stream (pod/service add/update/delete) and react
— Istio injects sidecars on admission, Ambient runs per-node/per-service
proxies, Canal registers services at the remote gateway. That admission
hook is how sidecar *intrusion* is modeled: injected containers consume
node resources the user bought for apps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim import Cidr, Vpc
from ..netsim.topology import HostNode
from .objects import (
    Container,
    Deployment,
    Pod,
    PodPhase,
    ResourceRequest,
    Service,
)

__all__ = ["ClusterNode", "WatchEvent", "Cluster", "SchedulingError"]


class SchedulingError(RuntimeError):
    """No node has room for a pod."""


@dataclass
class ClusterNode:
    """A K8s worker/master node bound to a physical host."""

    host: HostNode
    cpu_millicores_capacity: int = 16000
    memory_mb_capacity: int = 65536
    role: str = "worker"
    pods: List[Pod] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def cpu_millicores_used(self) -> int:
        return sum(p.total_resources.cpu_millicores for p in self.pods)

    @property
    def memory_mb_used(self) -> int:
        return sum(p.total_resources.memory_mb for p in self.pods)

    def fits(self, request: ResourceRequest) -> bool:
        return (self.cpu_millicores_used + request.cpu_millicores
                <= self.cpu_millicores_capacity
                and self.memory_mb_used + request.memory_mb
                <= self.memory_mb_capacity)


@dataclass(frozen=True)
class WatchEvent:
    """One entry of the cluster's watch stream."""

    kind: str     # "pod" | "service"
    action: str   # "added" | "updated" | "deleted"
    name: str
    obj: object


class Cluster:
    """One tenant's Kubernetes cluster."""

    def __init__(self, name: str, nodes: List[HostNode], tenant: str = "tenant1",
                 pod_cidr: str = "10.0.0.0/16", vni: int = 100,
                 node_cpu_millicores: int = 16000,
                 node_memory_mb: int = 65536):
        self.name = name
        self.tenant = tenant
        self.vpc = Vpc(tenant=tenant, name=f"{name}-vpc",
                       cidr=Cidr.parse(pod_cidr), vni=vni)
        self.nodes: List[ClusterNode] = []
        for index, host in enumerate(nodes):
            role = "master" if index == 0 and len(nodes) > 1 else "worker"
            self.nodes.append(ClusterNode(
                host=host, role=role,
                cpu_millicores_capacity=node_cpu_millicores,
                memory_mb_capacity=node_memory_mb))
        self.pods: Dict[str, Pod] = {}
        self.services: Dict[str, Service] = {}
        self.deployments: Dict[str, Deployment] = {}
        self._watchers: List[Callable[[WatchEvent], None]] = []
        self._admission_hooks: List[Callable[[Pod], None]] = []
        self._pod_counter = 0

    # -- watch / admission ---------------------------------------------------
    def watch(self, callback: Callable[[WatchEvent], None]) -> None:
        """Subscribe to the cluster's event stream (mesh control planes)."""
        self._watchers.append(callback)

    def add_admission_hook(self, hook: Callable[[Pod], None]) -> None:
        """Mutating admission webhook — how Istio injects sidecars."""
        self._admission_hooks.append(hook)

    def _emit(self, event: WatchEvent) -> None:
        for watcher in list(self._watchers):
            watcher(event)

    # -- workers ---------------------------------------------------------------
    @property
    def worker_nodes(self) -> List[ClusterNode]:
        workers = [n for n in self.nodes if n.role == "worker"]
        return workers if workers else self.nodes

    def node_by_name(self, name: str) -> ClusterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in cluster {self.name}")

    # -- pod lifecycle -----------------------------------------------------------
    def create_pod(self, name: str = "", labels: Optional[Dict[str, str]] = None,
                   resources: Optional[ResourceRequest] = None,
                   namespace: str = "default") -> Pod:
        """Admit, schedule, and start a pod."""
        self._pod_counter += 1
        pod = Pod(name=name or f"pod-{self._pod_counter}",
                  namespace=namespace, tenant=self.tenant,
                  labels=dict(labels or {}))
        pod.containers.append(Container(
            name="app", resources=resources or ResourceRequest()))
        for hook in self._admission_hooks:
            hook(pod)
        self._schedule(pod)
        pod.ip = self.vpc.allocate(owner=pod.name)
        pod.phase = PodPhase.RUNNING
        self.pods[pod.name] = pod
        self._emit(WatchEvent("pod", "added", pod.name, pod))
        return pod

    def delete_pod(self, name: str) -> None:
        pod = self.pods.pop(name, None)
        if pod is None:
            raise KeyError(f"no pod named {name!r}")
        pod.phase = PodPhase.TERMINATED
        node = self.node_by_name(pod.node_name)
        node.pods.remove(pod)
        self._emit(WatchEvent("pod", "deleted", pod.name, pod))

    def _schedule(self, pod: Pod) -> None:
        """Least-allocated spread over worker nodes."""
        request = pod.total_resources
        candidates = [n for n in self.worker_nodes if n.fits(request)]
        if not candidates:
            raise SchedulingError(
                f"no node fits pod {pod.name} ({request})")
        target = min(candidates, key=lambda n: n.cpu_millicores_used)
        target.pods.append(pod)
        pod.node_name = target.name

    # -- services ---------------------------------------------------------------
    def create_service(self, name: str, selector: Dict[str, str],
                       port: int = 80, namespace: str = "default") -> Service:
        if name in self.services:
            raise ValueError(f"duplicate service {name!r}")
        service = Service(name=name, namespace=namespace, tenant=self.tenant,
                          selector=dict(selector), port=port,
                          cluster_ip=self.vpc.allocate(owner=f"svc/{name}"))
        self.services[name] = service
        self._emit(WatchEvent("service", "added", name, service))
        return service

    def endpoints(self, service_name: str) -> List[Pod]:
        """Running pods currently selected by a service."""
        service = self.services[service_name]
        return [pod for pod in self.pods.values()
                if pod.phase is PodPhase.RUNNING
                and pod.namespace == service.namespace
                and pod.matches(service.selector)]

    # -- deployments ---------------------------------------------------------------
    def create_deployment(self, name: str, replicas: int,
                          labels: Optional[Dict[str, str]] = None,
                          resources: Optional[ResourceRequest] = None,
                          namespace: str = "default") -> Deployment:
        if name in self.deployments:
            raise ValueError(f"duplicate deployment {name!r}")
        deployment = Deployment(
            name=name, namespace=namespace, tenant=self.tenant,
            replicas=0, labels=dict(labels or {"app": name}),
            template_resources=resources or ResourceRequest())
        self.deployments[name] = deployment
        self.scale_deployment(name, replicas)
        return deployment

    def scale_deployment(self, name: str, replicas: int) -> Deployment:
        """Reconcile pod count to the new desired replicas."""
        if replicas < 0:
            raise ValueError(f"negative replica count {replicas}")
        deployment = self.deployments[name]
        while deployment.running_replicas < replicas:
            pod = self.create_pod(
                name=f"{name}-{len(deployment.pods) + 1}",
                labels=deployment.labels,
                resources=deployment.template_resources,
                namespace=deployment.namespace)
            deployment.pods.append(pod)
        while deployment.running_replicas > replicas:
            victim = next(p for p in reversed(deployment.pods)
                          if p.phase is PodPhase.RUNNING)
            self.delete_pod(victim.name)
        deployment.replicas = replicas
        return deployment

    # -- cluster-wide accounting --------------------------------------------------
    @property
    def pod_count(self) -> int:
        return len(self.pods)

    def resource_usage(self) -> Dict[str, int]:
        """Cluster totals split into app vs sidecar shares."""
        app_cpu = sidecar_cpu = app_mem = sidecar_mem = 0
        for pod in self.pods.values():
            for container in pod.containers:
                if container.is_sidecar:
                    sidecar_cpu += container.resources.cpu_millicores
                    sidecar_mem += container.resources.memory_mb
                else:
                    app_cpu += container.resources.cpu_millicores
                    app_mem += container.resources.memory_mb
        return {
            "app_cpu_millicores": app_cpu,
            "sidecar_cpu_millicores": sidecar_cpu,
            "app_memory_mb": app_mem,
            "sidecar_memory_mb": sidecar_mem,
            "capacity_cpu_millicores": sum(
                n.cpu_millicores_capacity for n in self.nodes),
            "capacity_memory_mb": sum(
                n.memory_mb_capacity for n in self.nodes),
        }
