"""Kubernetes-style API objects: containers, pods, services, deployments.

Only the fields the mesh architectures dispatch on are modeled: resource
requests (for the intrusion/occupation analyses), labels and selectors
(for service membership), and lifecycle state (for control-plane
configuration churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

__all__ = ["PodPhase", "Container", "Pod", "Service", "Deployment",
           "ResourceRequest"]


@dataclass(frozen=True)
class ResourceRequest:
    """CPU/memory a container asks the scheduler for."""

    cpu_millicores: int = 100
    memory_mb: int = 128

    def __add__(self, other: "ResourceRequest") -> "ResourceRequest":
        return ResourceRequest(self.cpu_millicores + other.cpu_millicores,
                               self.memory_mb + other.memory_mb)


class PodPhase(Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass
class Container:
    """One container in a pod (the app, or an injected sidecar)."""

    name: str
    resources: ResourceRequest = field(default_factory=ResourceRequest)
    is_sidecar: bool = False


@dataclass
class Pod:
    """The schedulable unit. Sidecar meshes inject containers into it."""

    name: str
    namespace: str = "default"
    tenant: str = "tenant1"
    labels: Dict[str, str] = field(default_factory=dict)
    containers: List[Container] = field(default_factory=list)
    phase: PodPhase = PodPhase.PENDING
    node_name: Optional[str] = None
    ip: Optional[str] = None

    @property
    def total_resources(self) -> ResourceRequest:
        total = ResourceRequest(0, 0)
        for container in self.containers:
            total = total + container.resources
        return total

    @property
    def sidecar(self) -> Optional[Container]:
        for container in self.containers:
            if container.is_sidecar:
                return container
        return None

    @property
    def app_resources(self) -> ResourceRequest:
        total = ResourceRequest(0, 0)
        for container in self.containers:
            if not container.is_sidecar:
                total = total + container.resources
        return total

    def matches(self, selector: Dict[str, str]) -> bool:
        return all(self.labels.get(k) == v for k, v in selector.items())


@dataclass
class Service:
    """A named set of pods selected by labels."""

    name: str
    namespace: str = "default"
    tenant: str = "tenant1"
    selector: Dict[str, str] = field(default_factory=dict)
    port: int = 80
    cluster_ip: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.namespace}/{self.name}"


@dataclass
class Deployment:
    """Desired-state replica management for one pod template."""

    name: str
    namespace: str = "default"
    tenant: str = "tenant1"
    replicas: int = 1
    labels: Dict[str, str] = field(default_factory=dict)
    template_resources: ResourceRequest = field(default_factory=ResourceRequest)
    pods: List[Pod] = field(default_factory=list)

    @property
    def running_replicas(self) -> int:
        return sum(1 for pod in self.pods if pod.phase is PodPhase.RUNNING)
