"""Kubernetes-like cluster substrate.

Pods, nodes, services, deployments, a spreading scheduler, and a watch
stream that mesh control planes subscribe to. Single-tenant by design
(mirroring upstream K8s); multi-tenancy lives in the Canal gateway.
"""

from .cluster import Cluster, ClusterNode, SchedulingError, WatchEvent
from .objects import (
    Container,
    Deployment,
    Pod,
    PodPhase,
    ResourceRequest,
    Service,
)

__all__ = [
    "Cluster",
    "ClusterNode",
    "Container",
    "Deployment",
    "Pod",
    "PodPhase",
    "ResourceRequest",
    "SchedulingError",
    "Service",
    "WatchEvent",
]
