"""Composable resilience policy sets for one gateway.

:class:`ResiliencePolicies` bundles any subset of the five mechanisms
behind one attach point (``MeshGateway.install_resilience``): circuit
breakers are per-service (lazily created on first dispatch), the
retry policy's jitter stream is derived from the simulation seed, the
bulkhead ledgers (tenant, backend) compartments, and the leveler and
degradation controller guard the gateway as a whole.

Nothing here is consulted unless a policy set is installed — the
ambient default is ``None`` and every integration point in
``core.gateway`` / ``core.canal`` / ``core.failure`` guards on it, so
unprotected runs are byte-identical with and without this package
imported.

Outcomes land in the ambient telemetry registry under
``resilience_*`` metric families, and the request-path integrations
annotate traces (``retries``, ``breaker`` state) so the causal tracer
shows *why* a request fast-failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..obs.runtime import get_telemetry
from .breaker import BreakerConfig, CircuitBreaker
from .bulkhead import Bulkhead, BulkheadConfig
from .degradation import DegradationConfig, DegradationController
from .leveling import LevelerConfig, LoadLeveler
from .retry import RetryConfig, RetryPolicy

__all__ = [
    "BulkheadRejected",
    "CircuitOpenError",
    "RequestShed",
    "ResilienceConfig",
    "ResiliencePolicies",
]


class CircuitOpenError(RuntimeError):
    """Dispatch fast-failed: the service's circuit breaker is open."""


class BulkheadRejected(RuntimeError):
    """Replica admission rejected: the tenant's compartment is full."""


class RequestShed(RuntimeError):
    """The gateway shed this request (leveler overflow or degradation)."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Which mechanisms to install, and their tuning. ``None`` = off."""

    breaker: Optional[BreakerConfig] = None
    retry: Optional[RetryConfig] = None
    bulkhead: Optional[BulkheadConfig] = None
    leveler: Optional[LevelerConfig] = None
    degradation: Optional[DegradationConfig] = None
    #: Windowed failures one crashed backend contributes during a
    #: query-of-death cascade (the fluid-mode coupling: each poisoned
    #: backend's death is observed as this many dispatch errors).
    qod_failures_per_backend: int = 3


class ResiliencePolicies:
    """One gateway's installed policy set."""

    def __init__(self, config: ResilienceConfig = ResilienceConfig(),
                 seed: object = 0, name: str = "gateway"):
        self.config = config
        self.name = name
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.retry: Optional[RetryPolicy] = (
            RetryPolicy(config.retry, seed=seed,
                        label=f"repro.resilience.retry:{name}")
            if config.retry is not None else None)
        self.bulkhead: Optional[Bulkhead] = (
            Bulkhead(config.bulkhead)
            if config.bulkhead is not None else None)
        self.leveler: Optional[LoadLeveler] = (
            LoadLeveler(config.leveler)
            if config.leveler is not None else None)
        self.degradation: Optional[DegradationController] = (
            DegradationController(config.degradation)
            if config.degradation is not None else None)
        #: Pull-based water-level source for the degradation
        #: controller; installed by ``MeshGateway.install_resilience``.
        self.water_source: Optional[Callable[[], float]] = None

    # -- circuit breaker -----------------------------------------------------
    def breaker_for(self, service_id: int) -> Optional[CircuitBreaker]:
        """The service's breaker (created lazily), or ``None`` if off."""
        if self.config.breaker is None:
            return None
        breaker = self.breakers.get(service_id)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker,
                                     name=f"service-{service_id}")
            self.breakers[service_id] = breaker
        return breaker

    def allow_dispatch(self, service_id: int, now: float) -> bool:
        """Breaker gate for one dispatch; counts fast-fails."""
        breaker = self.breaker_for(service_id)
        if breaker is None or breaker.allow(now):
            return True
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("resilience_breaker_fast_fail_total",
                          service=str(service_id))
        return False

    def record_dispatch(self, service_id: int, now: float, ok: bool,
                        count: int = 1) -> None:
        """Feed one dispatch outcome into the service's breaker."""
        breaker = self.breaker_for(service_id)
        if breaker is None:
            return
        before = len(breaker.transitions)
        if ok:
            breaker.record_success(now, count)
        else:
            breaker.record_failure(now, count)
        if len(breaker.transitions) > before:
            telemetry = get_telemetry()
            if telemetry.enabled:
                for _t, _from, to_state, _why in \
                        breaker.transitions[before:]:
                    telemetry.inc("resilience_breaker_transitions_total",
                                  service=str(service_id), to=to_state)

    def breaker_state(self, service_id: int) -> str:
        breaker = self.breakers.get(service_id)
        return breaker.state if breaker is not None else "closed"

    # -- retry ---------------------------------------------------------------
    def note_retry(self, service_id: int) -> None:
        self.retry.note_retry()
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("resilience_retries_total",
                          service=str(service_id))

    # -- bulkhead ------------------------------------------------------------
    def acquire_slot(self, tenant: str, backend: str) -> bool:
        """Reserve one replica-admission slot; counts rejections."""
        if self.bulkhead is None:
            return True
        if self.bulkhead.try_acquire(tenant, backend):
            return True
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("resilience_bulkhead_rejected_total",
                          tenant=tenant)
        return False

    def release_slot(self, tenant: str, backend: str) -> None:
        if self.bulkhead is not None:
            self.bulkhead.release(tenant, backend)

    # -- leveling ------------------------------------------------------------
    def leveler_reserve(self, now: float) -> Optional[float]:
        """Wait seconds for the next drain slot, or ``None`` = shed.

        0.0 when no leveler is installed (pass-through).
        """
        if self.leveler is None:
            return 0.0
        wait = self.leveler.reserve(now)
        telemetry = get_telemetry()
        if telemetry.enabled:
            if wait is None:
                telemetry.inc("resilience_leveler_shed_total")
            elif wait > 0:
                telemetry.inc("resilience_leveler_delayed_total")
        return wait

    # -- degradation ---------------------------------------------------------
    def degradation_tick(self, now: float) -> None:
        """Refresh the shed cutoff from the installed water source."""
        if self.degradation is None or self.water_source is None:
            return
        self.degradation.update(now, self.water_source())

    def tenant_allowed(self, tenant: str) -> bool:
        if self.degradation is None:
            return True
        if self.degradation.allows(tenant):
            return True
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("resilience_shed_total", tenant=tenant)
        return False

    # -- inspection ----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Plain-data snapshot for exhibits and tests (picklable)."""
        out: Dict[str, object] = {
            "breakers": {
                sid: {"state": breaker.state,
                      "times_opened": breaker.times_opened,
                      "fast_failures": breaker.fast_failures,
                      "transitions": list(breaker.transitions)}
                for sid, breaker in sorted(self.breakers.items())
            },
        }
        if self.retry is not None:
            out["retry"] = {"first_attempts": self.retry.first_attempts,
                            "retries": self.retry.retries,
                            "bound": self.retry.amplification_bound()}
        if self.bulkhead is not None:
            out["bulkhead"] = {"admitted": self.bulkhead.admitted,
                               "rejected": self.bulkhead.rejected,
                               "inflight": self.bulkhead.total_inflight()}
        if self.leveler is not None:
            out["leveler"] = {"admitted": self.leveler.admitted,
                              "delayed": self.leveler.delayed,
                              "shed": self.leveler.shed}
        if self.degradation is not None:
            out["degradation"] = {
                "cutoff": self.degradation.cutoff,
                "requests_shed": self.degradation.requests_shed,
                "escalations": list(self.degradation.escalations)}
        return out
