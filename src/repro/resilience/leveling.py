"""Queue-based load leveling at the gateway dispatch point.

Bursts that arrive faster than the gateway's sustainable drain rate
are *smoothed* instead of forwarded: each admission reserves the next
free virtual-queue slot and the request waits (in simulated time) for
its slot; arrivals that would push the queue past ``max_queue`` are
shed immediately — the early-drop analogue of §6.2, applied to burst
shape rather than steady rate.

The leveler is a pure arithmetic ledger over virtual time: one float
(the next free slot) and the configured drain rate. No RNG, no wall
clock, so protected runs stay byte-identical at any ``--jobs`` level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["LevelerConfig", "LoadLeveler"]


@dataclass(frozen=True)
class LevelerConfig:
    """Drain rate and queue bound of the gateway leveling queue."""

    #: Sustained forwarding rate (requests per virtual second).
    drain_rate_per_s: float = 1000.0
    #: Most requests that may wait for a slot at once; arrivals beyond
    #: this are shed with an immediate rejection.
    max_queue: int = 100

    def __post_init__(self):
        if self.drain_rate_per_s <= 0:
            raise ValueError(
                f"drain_rate_per_s must be > 0, got {self.drain_rate_per_s}")
        if self.max_queue < 0:
            raise ValueError(
                f"max_queue must be >= 0, got {self.max_queue}")


class LoadLeveler:
    """Reserves drain slots for arrivals; sheds when the queue is full."""

    def __init__(self, config: LevelerConfig = LevelerConfig()):
        self.config = config
        self._next_slot = 0.0
        self.admitted = 0
        self.delayed = 0
        self.shed = 0

    def reserve(self, now: float) -> Optional[float]:
        """Seconds the arriving request must wait, or ``None`` = shed.

        A return of 0.0 means the queue is idle and the request passes
        straight through.
        """
        interval = 1.0 / self.config.drain_rate_per_s
        slot = max(now, self._next_slot)
        wait = slot - now
        if wait * self.config.drain_rate_per_s > self.config.max_queue:
            self.shed += 1
            return None
        self._next_slot = slot + interval
        self.admitted += 1
        if wait > 0:
            self.delayed += 1
        return wait

    def queue_depth(self, now: float) -> int:
        """Requests currently waiting for a slot at virtual time ``now``."""
        backlog = (self._next_slot - now) * self.config.drain_rate_per_s
        return max(0, int(backlog))
