"""Mesh-side resilience policies, composable and deterministic.

The consolidated gateway must *contain* failures, not merely survive
them (query-of-death blast radius §7, health-check explosion §6.1).
``repro.faults`` injects chaos; this package is the other half — the
defensive mechanisms a production Canal deployment layers onto the
gateway and its replicas:

* :class:`CircuitBreaker` (``breaker.py``) — closed/open/half-open on
  a rolling error rate; an open breaker fast-fails dispatch so a
  poisoned service stops crashing backends it can still reach;
* :class:`RetryPolicy` (``retry.py``) — exponential backoff with
  deterministic jitter drawn from a dedicated seeded stream (never
  ``sim.rng``: retry timing must not perturb the model, the same
  discipline as trace sampling);
* :class:`Bulkhead` (``bulkhead.py``) — per-tenant concurrent-capacity
  caps at replica admission, so one tenant cannot monopolize a
  backend's execution slots;
* :class:`LoadLeveler` (``leveling.py``) — queue-based load leveling
  at the gateway: bursts are smoothed to a drain rate, and arrivals
  that would overflow the virtual queue are shed early;
* :class:`DegradationController` (``degradation.py``) — graceful
  degradation: shed the lowest-priority tenants first when water
  levels climb, restore them with hysteresis.

:class:`ResiliencePolicies` (``policy.py``) composes any subset of the
five and attaches at the gateway (``MeshGateway.install_resilience``).
Policies emit ``repro.obs`` metrics and trace annotations, and are
audited by :class:`~repro.faults.InvariantAuditor` checks (breaker
state-machine legality, retry-amplification cap). Every mechanism is a
pure function of (config, seed, event order), so protected chaos runs
stay byte-identical at any ``--jobs`` level.
"""

from .breaker import (
    BREAKER_STATES,
    BreakerConfig,
    BreakerIllegalTransition,
    CircuitBreaker,
    contained_cascade_depth,
)
from .bulkhead import Bulkhead, BulkheadConfig
from .degradation import DegradationConfig, DegradationController
from .leveling import LevelerConfig, LoadLeveler
from .policy import (
    BulkheadRejected,
    CircuitOpenError,
    RequestShed,
    ResilienceConfig,
    ResiliencePolicies,
)
from .retry import RetryConfig, RetryPolicy, retry_storm_arrivals

__all__ = [
    "BREAKER_STATES",
    "BreakerConfig",
    "BreakerIllegalTransition",
    "Bulkhead",
    "BulkheadConfig",
    "BulkheadRejected",
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradationConfig",
    "DegradationController",
    "LevelerConfig",
    "LoadLeveler",
    "RequestShed",
    "ResilienceConfig",
    "ResiliencePolicies",
    "RetryConfig",
    "RetryPolicy",
    "contained_cascade_depth",
    "retry_storm_arrivals",
]
