"""Circuit breaker: closed/open/half-open on a rolling error rate.

The breaker watches dispatch outcomes for one service over a sliding
window. While CLOSED it admits everything; once the windowed error
rate reaches the threshold (with enough volume to mean something) it
OPENs and fast-fails dispatch for ``open_duration_s``; then it lets a
bounded number of HALF_OPEN probes through, closing again only after
``close_after`` consecutive probe successes. A probe failure re-opens
immediately.

The legal transition edges::

    closed    -> open        (windowed error rate tripped)
    open      -> half_open   (cooldown expired)
    half_open -> closed      (probe successes reached close_after)
    half_open -> open        (a probe failed)

Every transition is appended to :attr:`CircuitBreaker.transitions`;
the :class:`~repro.faults.InvariantAuditor` replays that log and
raises on any edge outside this set or any time regression — a
breaker that "recovers" without passing through half-open is a bug in
the mesh, not a lucky break.

Everything here is a pure function of (config, call order, call
times): no randomness, no wall clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

__all__ = [
    "BREAKER_STATES",
    "BreakerConfig",
    "BreakerIllegalTransition",
    "CircuitBreaker",
    "contained_cascade_depth",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: The legal (from, to) edges of the breaker state machine.
LEGAL_TRANSITIONS = frozenset([
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, CLOSED),
    (HALF_OPEN, OPEN),
])


class BreakerIllegalTransition(AssertionError):
    """The breaker took an edge outside the legal state machine."""


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one circuit breaker."""

    #: Rolling window the error rate is computed over (virtual seconds).
    window_s: float = 30.0
    #: Minimum outcomes in the window before the breaker may trip —
    #: a volume threshold so one early failure cannot open it.
    min_requests: int = 5
    #: Windowed error-rate threshold in (0, 1] that opens the breaker.
    failure_threshold: float = 0.5
    #: Seconds the breaker stays OPEN before probing.
    open_duration_s: float = 30.0
    #: Consecutive half-open probe successes required to close.
    close_after: int = 2

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.min_requests < 1:
            raise ValueError(
                f"min_requests must be >= 1, got {self.min_requests}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], "
                             f"got {self.failure_threshold}")
        if self.open_duration_s <= 0:
            raise ValueError(
                f"open_duration_s must be > 0, got {self.open_duration_s}")
        if self.close_after < 1:
            raise ValueError(
                f"close_after must be >= 1, got {self.close_after}")


class CircuitBreaker:
    """One service's dispatch gate."""

    def __init__(self, config: BreakerConfig = BreakerConfig(),
                 name: str = ""):
        self.config = config
        self.name = name
        self.state = CLOSED
        self.opened_at = 0.0
        #: (t, from_state, to_state, reason) — audited for legality.
        self.transitions: List[Tuple[float, str, str, str]] = []
        #: Rolling (t, ok) outcomes inside the window.
        self._window: Deque[Tuple[float, bool]] = deque()
        self._half_open_successes = 0
        self.fast_failures = 0
        self.times_opened = 0

    # -- state machine -------------------------------------------------------
    def _transition(self, now: float, to_state: str, reason: str) -> None:
        self.transitions.append((now, self.state, to_state, reason))
        self.state = to_state
        if to_state == OPEN:
            self.opened_at = now
            self.times_opened += 1
        elif to_state == HALF_OPEN:
            self._half_open_successes = 0

    def allow(self, now: float) -> bool:
        """May one dispatch proceed at virtual time ``now``?

        An OPEN breaker whose cooldown has expired moves to HALF_OPEN
        here (lazily — there is no timer process to keep deterministic
        order simple) and admits the probe.
        """
        if self.state == OPEN:
            if now - self.opened_at >= self.config.open_duration_s:
                self._transition(now, HALF_OPEN, "cooldown expired")
                return True
            self.fast_failures += 1
            return False
        return True

    def record_success(self, now: float, count: int = 1) -> None:
        for _ in range(count):
            self._record(now, ok=True)

    def record_failure(self, now: float, count: int = 1) -> None:
        for _ in range(count):
            self._record(now, ok=False)

    def _record(self, now: float, ok: bool) -> None:
        if self.state == HALF_OPEN:
            if ok:
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.close_after:
                    self._window.clear()
                    self._transition(now, CLOSED, "probe successes")
            else:
                self._transition(now, OPEN, "probe failed")
            return
        self._window.append((now, ok))
        self._prune(now)
        if self.state == CLOSED and self._tripped():
            self._transition(
                now, OPEN,
                f"error rate {self.error_rate():.2f} >= "
                f"{self.config.failure_threshold:g} "
                f"over {len(self._window)} requests")

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()

    def _tripped(self) -> bool:
        if len(self._window) < self.config.min_requests:
            return False
        return self.error_rate() >= self.config.failure_threshold

    def error_rate(self) -> float:
        """Windowed error fraction (0.0 when the window is empty)."""
        if not self._window:
            return 0.0
        failures = sum(1 for _t, ok in self._window if not ok)
        return failures / len(self._window)

    def audit_transitions(self) -> None:
        """Raise unless every recorded transition is a legal edge.

        Called by the fault subsystem's invariant auditor after each
        injection/recovery step.
        """
        last_t = None
        for t, from_state, to_state, reason in self.transitions:
            if (from_state, to_state) not in LEGAL_TRANSITIONS:
                raise BreakerIllegalTransition(
                    f"breaker {self.name or '?'}: illegal transition "
                    f"{from_state} -> {to_state} at t={t:g} ({reason})")
            if last_t is not None and t < last_t:
                raise BreakerIllegalTransition(
                    f"breaker {self.name or '?'}: transition time went "
                    f"backwards ({last_t:g} -> {t:g})")
            last_t = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.name or '?'} state={self.state} "
                f"error_rate={self.error_rate():.2f}>")


def contained_cascade_depth(backends: int, failures_per_backend: int,
                            config: BreakerConfig) -> int:
    """How many backends a query-of-death crashes before the breaker trips.

    The aggregate (fluid-tier) analogue of driving a
    :class:`CircuitBreaker` through a cascade: each poisoned backend
    contributes ``failures_per_backend`` windowed failures, and the
    cascade halts once the breaker opens. With no breaker semantics
    (``backends`` small, threshold never reached) the answer is all of
    them — exactly the uncontained baseline. O(1) per backend, cheap
    enough for fleet-tier sweeps to call per service.
    """
    if backends < 0 or failures_per_backend < 1:
        raise ValueError("need backends >= 0 and failures_per_backend >= 1")
    breaker = CircuitBreaker(config)
    crashed = 0
    for _ in range(backends):
        if not breaker.allow(0.0):
            break
        crashed += 1
        breaker.record_failure(0.0, count=failures_per_backend)
    return crashed
