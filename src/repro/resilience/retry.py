"""Retry with exponential backoff and deterministic jitter.

Naked retries turn a partial outage into a total one: every client
that lost a session to an AZ crash retries at the same instant, and
the synchronized spike re-crashes whatever survived (§7's retry-storm
failure mode). The fix is two-part: *cap* the amplification (a hard
attempt budget, audited by the invariant auditor) and *de-synchronize*
the schedule (full jitter on an exponential backoff).

Jitter must be random across clients but **deterministic across
runs** — so it is drawn from a dedicated stream derived from the
simulation seed (:func:`repro.simcore.rng.derived_stream`), never from
``sim.rng``. Consuming the model's own stream here would change every
downstream sample whenever a retry policy toggles, the same hazard the
tracing sampler documents. Draw order is simulation event order, which
the agenda already fixes, so protected runs stay byte-identical at any
``--jobs`` level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..simcore.rng import derived_stream

__all__ = ["RetryConfig", "RetryPolicy", "retry_storm_arrivals"]


@dataclass(frozen=True)
class RetryConfig:
    """Backoff shape of one retry policy."""

    #: Total attempts including the first (3 = first try + 2 retries).
    max_attempts: int = 3
    #: Backoff before the first retry, seconds.
    base_backoff_s: float = 0.5
    #: Exponential growth factor per subsequent retry.
    multiplier: float = 2.0
    #: Ceiling on any single backoff, seconds.
    max_backoff_s: float = 30.0
    #: Jitter fraction in [0, 1]: each backoff is scaled by a factor
    #: drawn uniformly from [1 - jitter, 1]. 1.0 is AWS-style "full
    #: jitter"; 0.0 reproduces the synchronized (storm-prone) schedule.
    jitter: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s <= 0:
            raise ValueError(
                f"base_backoff_s must be > 0, got {self.base_backoff_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


class RetryPolicy:
    """Produces backoff delays from a dedicated seeded jitter stream."""

    def __init__(self, config: RetryConfig = RetryConfig(),
                 seed: object = 0, label: str = "repro.resilience.retry",
                 stream: Optional[random.Random] = None):
        self.config = config
        self._stream = (stream if stream is not None
                        else derived_stream(seed, label))
        self.first_attempts = 0
        self.retries = 0

    @property
    def max_retries(self) -> int:
        """Retries allowed after the first attempt."""
        return self.config.max_attempts - 1

    def should_retry(self, attempt: int) -> bool:
        """May attempt number ``attempt`` (1-based) be retried?"""
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt}")
        return attempt < self.config.max_attempts

    def backoff_s(self, attempt: int) -> float:
        """Delay before retrying after failed attempt ``attempt``.

        Consumes exactly one jitter draw per call (even at jitter=0)
        so schedules with and without jitter stay draw-aligned.
        """
        if not self.should_retry(attempt):
            raise ValueError(
                f"attempt {attempt} exhausted the budget of "
                f"{self.config.max_attempts}")
        config = self.config
        nominal = min(config.max_backoff_s,
                      config.base_backoff_s
                      * config.multiplier ** (attempt - 1))
        draw = self._stream.random()
        return nominal * (1.0 - config.jitter * draw)

    # -- amplification accounting (audited) ----------------------------------
    def note_first_attempt(self) -> None:
        self.first_attempts += 1

    def note_retry(self) -> None:
        self.retries += 1

    def amplification_bound(self) -> int:
        """Most retries the recorded first attempts may legally spawn."""
        return self.first_attempts * self.max_retries


def retry_storm_arrivals(sessions: int, config: RetryConfig,
                         seed: object = 0, bucket_s: float = 1.0,
                         label: str = "repro.resilience.retry-storm"
                         ) -> List[int]:
    """Reconnect arrivals per time bucket after a mass disconnect.

    The aggregate (fluid-tier) analogue of ``sessions`` disrupted
    clients each scheduling their first reconnect through a
    :class:`RetryPolicy`: returns a histogram of arrivals per
    ``bucket_s`` window, starting at the disconnect instant. With
    ``jitter=0`` every client lands in the same bucket — the
    synchronized retry storm; with full jitter the same population
    spreads over the whole backoff span. O(sessions), no simulator
    needed, so fleet-scale runs can price a retry storm analytically.
    """
    if sessions < 0:
        raise ValueError(f"negative session count {sessions}")
    if bucket_s <= 0:
        raise ValueError(f"bucket_s must be > 0, got {bucket_s}")
    policy = RetryPolicy(config, seed=seed, label=label)
    buckets: List[int] = []
    for _ in range(sessions):
        delay = policy.backoff_s(1)
        index = int(delay / bucket_s)
        if index >= len(buckets):
            buckets.extend([0] * (index - len(buckets) + 1))
        buckets[index] += 1
    return buckets
