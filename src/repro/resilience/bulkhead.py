"""Bulkhead: per-tenant concurrent-capacity caps at replica admission.

One tenant's traffic burst must not monopolize a backend shared with
other tenants (the multi-tenant version of the ship-compartment
metaphor). The bulkhead tracks in-flight request concurrency per
(tenant, backend) compartment and rejects admissions beyond the cap —
before the request occupies a replica execution slot, so a flooded
compartment costs the flooding tenant a 429, not its neighbors their
latency.

Acquire/release pairs bracket the replica execution in
``MeshGateway.process_request``; release sits in a ``finally`` so a
failing replica cannot leak a slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Bulkhead", "BulkheadConfig"]


@dataclass(frozen=True)
class BulkheadConfig:
    """Sizing of the per-tenant compartments."""

    #: Concurrent in-flight requests one tenant may hold on one backend.
    max_concurrent_per_backend: int = 64

    def __post_init__(self):
        if self.max_concurrent_per_backend < 1:
            raise ValueError(
                f"max_concurrent_per_backend must be >= 1, got "
                f"{self.max_concurrent_per_backend}")


class Bulkhead:
    """In-flight concurrency ledger over (tenant, backend) compartments."""

    def __init__(self, config: BulkheadConfig = BulkheadConfig()):
        self.config = config
        self._inflight: Dict[Tuple[str, str], int] = {}
        self.admitted = 0
        self.rejected = 0

    def try_acquire(self, tenant: str, backend: str) -> bool:
        """Reserve one slot; False when the compartment is full."""
        key = (tenant, backend)
        held = self._inflight.get(key, 0)
        if held >= self.config.max_concurrent_per_backend:
            self.rejected += 1
            return False
        self._inflight[key] = held + 1
        self.admitted += 1
        return True

    def release(self, tenant: str, backend: str) -> None:
        key = (tenant, backend)
        held = self._inflight.get(key, 0)
        if held <= 0:
            raise ValueError(
                f"bulkhead release without acquire for tenant "
                f"{tenant!r} on {backend!r}")
        if held == 1:
            del self._inflight[key]
        else:
            self._inflight[key] = held - 1

    def inflight(self, tenant: str, backend: str) -> int:
        return self._inflight.get((tenant, backend), 0)

    def total_inflight(self) -> int:
        return sum(self._inflight.values())
