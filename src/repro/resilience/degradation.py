"""Graceful degradation: shed low-priority tenants before collapse.

When gateway water levels climb toward saturation, total availability
is best defended by *choosing* what to drop: the controller raises a
priority cutoff one step at a time while the observed water level
stays above ``shed_water_level``, shedding the lowest-priority
tenants' requests, and lowers it again (with hysteresis, below
``restore_water_level``) as capacity returns. Priorities are small
ints — higher is more important; tenants without an entry get
``default_priority`` and are shed last among the defaults.

Updates are rate-limited by ``check_interval_s`` of *virtual* time so
the per-request fast path stays O(1) without a timer process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["DegradationConfig", "DegradationController"]


@dataclass(frozen=True)
class DegradationConfig:
    """Thresholds and the tenant priority map."""

    #: Water level at or above which shedding escalates one step.
    shed_water_level: float = 0.9
    #: Water level below which shedding de-escalates one step
    #: (hysteresis: must be < shed_water_level).
    restore_water_level: float = 0.7
    #: tenant name -> priority (higher = shed later).
    tenant_priorities: Mapping[str, int] = field(default_factory=dict)
    #: Priority of tenants absent from the map.
    default_priority: int = 0
    #: Highest cutoff the controller may escalate to: tenants at or
    #: above this priority are never shed.
    max_shed_priority: int = 1
    #: Minimum virtual seconds between controller re-evaluations.
    check_interval_s: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.shed_water_level <= 1.0:
            raise ValueError(f"shed_water_level must be in (0, 1], "
                             f"got {self.shed_water_level}")
        if not 0.0 <= self.restore_water_level < self.shed_water_level:
            raise ValueError(
                "restore_water_level must be in [0, shed_water_level)")
        if self.check_interval_s <= 0:
            raise ValueError(
                f"check_interval_s must be > 0, got {self.check_interval_s}")


class DegradationController:
    """Escalating/de-escalating priority cutoff over water-level input."""

    def __init__(self, config: DegradationConfig = DegradationConfig()):
        self.config = config
        #: Tenants with priority < cutoff are shed; 0 sheds nobody
        #: (priorities below 0 are still legal and shed first).
        self.cutoff = min(0, config.default_priority)
        self._floor = self.cutoff
        self._last_check = None
        self.requests_shed = 0
        #: (t, cutoff) history of every cutoff change.
        self.escalations: list = []

    def priority_of(self, tenant: str) -> int:
        return self.config.tenant_priorities.get(
            tenant, self.config.default_priority)

    def update(self, now: float, water_level: float) -> None:
        """Feed one water-level observation (rate-limited internally)."""
        if (self._last_check is not None
                and now - self._last_check < self.config.check_interval_s):
            return
        self._last_check = now
        if water_level >= self.config.shed_water_level:
            if self.cutoff < self.config.max_shed_priority + 1:
                self.cutoff += 1
                self.escalations.append((now, self.cutoff))
        elif water_level < self.config.restore_water_level:
            if self.cutoff > self._floor:
                self.cutoff -= 1
                self.escalations.append((now, self.cutoff))

    def allows(self, tenant: str) -> bool:
        """Is this tenant's traffic currently admitted?"""
        if self.priority_of(tenant) >= self.cutoff:
            return True
        self.requests_shed += 1
        return False

    @property
    def shedding(self) -> bool:
        return self.cutoff > self._floor

    def shed_tenants(self) -> Dict[str, int]:
        """Currently-shed tenants (from the explicit priority map)."""
        return {tenant: priority
                for tenant, priority
                in sorted(self.config.tenant_priorities.items())
                if priority < self.cutoff}
