"""Content-hash-keyed incremental cache for simlint.

Warm lint runs must stay O(changed files). Two stages cache
independently, both keyed purely by content:

* **facts** — ``facts::{path}::{sha256}::{versions}`` →
  :class:`~repro.lint.graph.ModuleFacts`. Facts depend only on the
  file's bytes and path, never on other files, so a cached entry is
  valid for as long as the bytes are.
* **findings** — ``findings::{path}::{sha256}::{rules}::{program}`` →
  the file's final findings. The ``program`` component is a per-file
  digest of every *global* input to that file's findings (its resolved
  DET101/RACE001 slices and the project-wide set-attribute table), so
  editing file A re-lints file B only when A actually changed what the
  whole-program analysis says about B.

The store is a single pickle under the cache directory (default
``.repro-cache/simlint``), written atomically, pruned on save to the
keys the current run touched — stale hashes never accumulate.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Dict, Optional, Set

__all__ = ["LintCache", "content_hash", "default_cache_dir"]

_CACHE_FILENAME = "simlint-cache.pkl"


def default_cache_dir() -> str:
    return os.path.join(".repro-cache", "simlint")


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """A load-once / save-once key-value store for one lint run."""

    def __init__(self, cache_dir: Optional[str] = None,
                 enabled: bool = True):
        self.cache_dir = cache_dir or default_cache_dir()
        self.enabled = enabled
        self.path = os.path.join(self.cache_dir, _CACHE_FILENAME)
        self._entries: Dict[str, Any] = {}
        self._touched: Set[str] = set()
        self.hits = 0
        self.misses = 0
        if enabled:
            self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            if isinstance(payload, dict):
                self._entries = payload
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            # A corrupt or version-skewed cache is just a cold start.
            self._entries = {}

    def get(self, key: str) -> Any:
        """The cached value, or None. A hit marks the key live."""
        if not self.enabled:
            return None
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touched.add(key)
        return value

    def put(self, key: str, value: Any) -> None:
        if not self.enabled or value is None:
            return
        self._entries[key] = value
        self._touched.add(key)

    def save(self) -> None:
        """Atomically persist only the keys this run touched."""
        if not self.enabled:
            return
        live = {key: self._entries[key] for key in sorted(self._touched)
                if key in self._entries}
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=self.cache_dir,
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(live, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, self.path)
            except BaseException:
                os.unlink(temp_path)
                raise
        except OSError:
            pass  # read-only checkout: lint still works, just cold
