"""simlint runner: collect files, apply rules, filter baselines.

Directory arguments are walked recursively; ``__pycache__``, hidden
directories, and ``lint_fixtures`` (intentional violations used by the
test suite) are skipped during the walk but never when a file is named
explicitly — ``python -m repro.lint tests/lint_fixtures/det001.py``
always lints exactly that file.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .framework import (
    Finding,
    ModuleSource,
    ProjectIndex,
    Rule,
    all_rules,
)

__all__ = [
    "DEFAULT_EXCLUDE_DIRS",
    "collect_files",
    "lint_files",
    "lint_paths",
    "load_baseline",
    "select_rules",
    "split_baselined",
    "write_baseline",
]

DEFAULT_EXCLUDE_DIRS = frozenset({"__pycache__", "lint_fixtures",
                                  ".git", ".repro-cache", "build",
                                  "dist"})


def collect_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths``: explicit files as-is, directories
    walked (deterministically sorted, excluded dirs pruned)."""
    files: List[str] = []
    seen: Set[str] = set()

    def add(path: str) -> None:
        normalized = os.path.normpath(path)
        if normalized not in seen:
            seen.add(normalized)
            files.append(normalized)

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in DEFAULT_EXCLUDE_DIRS
                    and not d.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            add(path)
        else:
            raise FileNotFoundError(
                f"not a directory or .py file: {path!r}")
    return files


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rule instances a run should apply."""
    rules = all_rules()
    known = {rule.id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(f"unknown rule {requested!r}; known: "
                           + ", ".join(sorted(known)))
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [rule for rule in rules if rule.id not in unwanted]
    return rules


def lint_files(files: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Findings (sorted, suppressions applied) for explicit files."""
    if rules is None:
        rules = select_rules()
    modules: List[ModuleSource] = []
    findings: List[Finding] = []
    for path in files:
        module = ModuleSource(path)
        if module.skip_file:
            continue
        if module.syntax_error is not None:
            findings.append(Finding(
                rule="PARSE", severity="error", path=module.path,
                line=1, col=1,
                message=f"syntax error: {module.syntax_error}"))
            continue
        modules.append(module)
    project = ProjectIndex.build(modules)
    for module in modules:
        for rule in rules:
            for finding in rule.check(module, project):
                if not module.is_suppressed(finding.line, finding.rule):
                    findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint files/directories with the selected rule set."""
    return lint_files(collect_files(paths),
                      rules=select_rules(select, ignore))


# -- baselines ---------------------------------------------------------------

def load_baseline(path: str) -> Set[str]:
    """Baseline keys from a ``--write-baseline`` JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    keys: Set[str] = set()
    for entry in payload.get("findings", []):
        keys.add(f"{entry['rule']}::{entry['path']}::{entry['line']}")
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the accepted baseline."""
    payload = {
        "version": 1,
        "findings": [{"rule": f.rule, "path": f.path, "line": f.line,
                      "message": f.message} for f in findings],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_baselined(findings: Sequence[Finding],
                    baseline: Set[str]
                    ) -> Tuple[List[Finding], List[Finding]]:
    """``(new findings, baselined findings)``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.baseline_key in baseline else new).append(finding)
    return new, old
