"""simlint runner: the two-phase whole-program lint pipeline.

v1 applied per-file rules in a single loop. v2 is a map/assemble/map
pipeline so the whole-program analysis stays cacheable per file and
parallelizable (``--jobs N`` rides ``runtime.sweep_map``, the same
executor the exhibits dogfood):

1. **Facts** (:func:`_phase1_point`, per file, pure) — parse and
   extract a picklable :class:`~repro.lint.graph.ModuleFacts`
   (declarations, imports, taint templates). Cached by content hash.
2. **Assemble** (parent process) — fold all facts into a
   :class:`~repro.lint.framework.ProjectIndex`: symbol table, call
   graph, SCC-ordered taint summaries, resolved DET101/RACE001 slices.
3. **Findings** (:func:`_phase2_point`, per file, pure) — re-apply the
   rule catalog to one file given only its slice of the global
   analysis. Cached by content hash + rule set + a digest of the
   file's global slice, so editing one file re-lints only the files
   whose *analysis inputs* actually changed.

Both map phases consume and produce picklable values only, findings are
sorted at the end, and every cross-file table is built in sorted order —
``--jobs 1`` and ``--jobs 4`` are byte-identical by construction.

Directory arguments are walked recursively; ``__pycache__``, hidden
directories, and ``lint_fixtures`` (intentional violations used by the
test suite) are skipped during the walk but never when a file is named
explicitly — ``python -m repro.lint tests/lint_fixtures/det001.py``
always lints exactly that file.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cache import LintCache, content_hash
from .framework import (
    Finding,
    ModuleSource,
    ProjectIndex,
    Rule,
    all_rules,
    get_rule,
)

__all__ = [
    "DEFAULT_EXCLUDE_DIRS",
    "collect_files",
    "lint_files",
    "lint_paths",
    "load_baseline",
    "select_rules",
    "split_baselined",
    "write_baseline",
]

DEFAULT_EXCLUDE_DIRS = frozenset({"__pycache__", "lint_fixtures",
                                  ".git", ".repro-cache", "build",
                                  "dist"})

#: Bump to invalidate cached *findings* when rule logic changes.
LINT_VERSION = 2


def collect_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths``: explicit files as-is, directories
    walked (deterministically sorted, excluded dirs pruned)."""
    files: List[str] = []
    seen: Set[str] = set()

    def add(path: str) -> None:
        normalized = os.path.normpath(path)
        if normalized not in seen:
            seen.add(normalized)
            files.append(normalized)

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in DEFAULT_EXCLUDE_DIRS
                    and not d.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            add(path)
        else:
            raise FileNotFoundError(
                f"not a directory or .py file: {path!r}")
    return files


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """The rule instances a run should apply."""
    rules = all_rules()
    known = {rule.id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(f"unknown rule {requested!r}; known: "
                           + ", ".join(sorted(known)))
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [rule for rule in rules if rule.id not in unwanted]
    return rules


# -- phase 1: per-file fact extraction (cacheable, parallelizable) -----------

def _phase1_point(path: str) -> dict:
    """Parse one file and extract its :class:`ModuleFacts`. Pure
    function of the file's bytes — module-level so it pickles to a
    sweep worker, dict-of-picklables so the result pickles back."""
    from .graph import extract_facts

    module = ModuleSource(path)
    record = {"path": path, "skip": module.skip_file,
              "syntax_error": module.syntax_error, "facts": None}
    if not module.skip_file and module.syntax_error is None:
        record["facts"] = extract_facts(module)
    return record


# -- phase 2: per-file rule application (cacheable, parallelizable) ----------

def _apply_rules(module: ModuleSource, project: ProjectIndex,
                 rules: Sequence[Rule]) -> Tuple[Finding, ...]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module, project):
            if not module.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return tuple(findings)


def _phase2_point(point: tuple) -> Tuple[Finding, ...]:
    """Lint one file against its slice of the whole-program analysis.

    The point carries everything global the rules may consult — the
    project-wide set-attribute table and this file's resolved
    DET101/RACE001 findings — so workers never rebuild the program.
    """
    path, rule_ids, set_attributes, dataflow_slice, race_slice = point
    module = ModuleSource(path)
    if module.skip_file or module.syntax_error is not None:
        return ()
    project = ProjectIndex()
    project.set_attributes = set(set_attributes)
    project.dataflow_findings = {path: list(dataflow_slice)}
    project.race_findings = {path: list(race_slice)}
    rules = [get_rule(rule_id) for rule_id in rule_ids]
    return _apply_rules(module, project, rules)


def _map(fn, points: Sequence, jobs: int) -> List:
    if jobs != 1 and len(points) > 1:
        # Dogfood the runtime layer: the same ambient executor the
        # paper exhibits sweep through (lazy import keeps plain
        # ``import repro.lint`` light).
        from ..runtime.sweep import sweep_map, use_executor
        with use_executor(jobs=jobs):
            return sweep_map(fn, list(points))
    return [fn(point) for point in points]


def _program_digest(set_attributes: Tuple[str, ...],
                    dataflow_slice: tuple, race_slice: tuple) -> str:
    digest = hashlib.sha256()
    digest.update(repr(set_attributes).encode())
    digest.update(repr(dataflow_slice).encode())
    digest.update(repr(race_slice).encode())
    return digest.hexdigest()[:16]


def lint_files(files: Sequence[str],
               rules: Optional[Sequence[Rule]] = None,
               jobs: int = 1,
               cache_dir: Optional[str] = None,
               use_cache: bool = True) -> List[Finding]:
    """Findings (sorted, suppressions applied) for explicit files."""
    from .dataflow import DATAFLOW_VERSION
    from .graph import FACTS_VERSION

    if rules is None:
        rules = select_rules()
    cache = LintCache(cache_dir, enabled=use_cache)
    versions = f"{FACTS_VERSION}.{DATAFLOW_VERSION}.{LINT_VERSION}"

    # Phase 1: per-file facts, cache-first.
    hashes: Dict[str, str] = {}
    records: Dict[str, dict] = {}
    missing: List[Tuple[str, str]] = []
    for path in files:
        with open(path, "rb") as handle:
            hashes[path] = content_hash(handle.read())
        key = f"facts::{path}::{hashes[path]}::{versions}"
        record = cache.get(key)
        if record is None:
            missing.append((path, key))
        else:
            records[path] = record
    extracted = _map(_phase1_point,
                     [path for path, _key in missing], jobs)
    for (path, key), record in zip(missing, extracted):
        cache.put(key, record)
        records[path] = record

    # Assemble the whole-program context in the parent.
    findings: List[Finding] = []
    lintable: List[str] = []
    facts = []
    for path in files:
        record = records[path]
        if record["skip"]:
            continue
        if record["syntax_error"] is not None:
            findings.append(Finding(
                rule="PARSE", severity="error", path=path,
                line=1, col=1,
                message=f"syntax error: {record['syntax_error']}"))
            continue
        lintable.append(path)
        facts.append(record["facts"])
    project = ProjectIndex.from_facts(facts)
    set_attributes = tuple(sorted(project.set_attributes))
    rule_ids = tuple(sorted(rule.id for rule in rules))

    # Phase 2: per-file findings, cache-first.
    pending: List[Tuple[str, tuple]] = []  # (key, point)
    for path in lintable:
        dataflow_slice = tuple(project.dataflow_findings.get(path, ()))
        race_slice = tuple(
            tuple(sorted(record.items(), key=lambda kv: kv[0]))
            for record in project.race_findings.get(path, ()))
        digest = _program_digest(set_attributes, dataflow_slice,
                                 race_slice)
        key = (f"findings::{path}::{hashes[path]}::"
               f"{','.join(rule_ids)}::{versions}::{digest}")
        cached = cache.get(key)
        if cached is not None:
            findings.extend(cached)
        else:
            race_dicts = tuple(
                project.race_findings.get(path, ()))
            pending.append((key, (path, rule_ids, set_attributes,
                                  dataflow_slice, race_dicts)))
    if pending:
        results = _map(_phase2_point,
                       [point for _key, point in pending], jobs)
        for (key, _point), file_findings in zip(pending, results):
            cache.put(key, file_findings)
            findings.extend(file_findings)

    cache.save()
    findings.sort(key=lambda f: f.sort_key)
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               jobs: int = 1,
               cache_dir: Optional[str] = None,
               use_cache: bool = True) -> List[Finding]:
    """Lint files/directories with the selected rule set."""
    return lint_files(collect_files(paths),
                      rules=select_rules(select, ignore),
                      jobs=jobs, cache_dir=cache_dir,
                      use_cache=use_cache)


# -- baselines ---------------------------------------------------------------

def load_baseline(path: str) -> Set[str]:
    """Baseline keys from a ``--write-baseline`` JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    keys: Set[str] = set()
    for entry in payload.get("findings", []):
        keys.add(f"{entry['rule']}::{entry['path']}::{entry['line']}")
    return keys


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the accepted baseline."""
    payload = {
        "version": 1,
        "findings": [{"rule": f.rule, "path": f.path, "line": f.line,
                      "message": f.message} for f in findings],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_baselined(findings: Sequence[Finding],
                    baseline: Set[str]
                    ) -> Tuple[List[Finding], List[Finding]]:
    """``(new findings, baselined findings)``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.baseline_key in baseline else new).append(finding)
    return new, old
