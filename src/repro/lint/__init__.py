"""simlint — AST-based determinism & sim-safety linter.

The repository's correctness claims (byte-identical sweeps at any
``--jobs`` level, sound cache keys from a static import closure, every
stochastic draw through a seeded rng) are conventions, not syntax; this
package turns them into machine-checked rules::

    python -m repro.lint src tests            # lint, exit 1 on findings
    python -m repro.lint --list-rules         # the rule catalog
    python -m repro.lint --format json src    # machine-readable report

Suppress a finding in place with a justification::

    started = time.perf_counter()  # simlint: ignore[DET001] CLI timing

See DESIGN.md §2c for the rule catalog and rationale.
"""

from .framework import (
    Finding,
    ModuleSource,
    ProjectIndex,
    Rule,
    all_rules,
    get_rule,
    register,
)
from .runner import collect_files, lint_files, lint_paths, select_rules
from . import rules  # noqa: F401  (imports register the rule catalog)
from . import program_rules  # noqa: F401  (whole-program rule families)

__all__ = [
    "Finding",
    "ModuleSource",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "collect_files",
    "get_rule",
    "lint_files",
    "lint_paths",
    "register",
    "select_rules",
]
