"""``python -m repro.lint`` — the simlint command line.

Exit codes: 0 clean (or every finding baselined), 1 findings, 2 usage
error. ``--format json`` emits a machine-readable report (CI uploads it
as an artifact); ``--output`` additionally writes the report to a file
so the exit code still gates the job.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .framework import Finding, all_rules
from .runner import (
    collect_files,
    lint_files,
    load_baseline,
    select_rules,
    split_baselined,
    write_baseline,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & sim-safety static analysis.")
    parser.add_argument("paths", nargs="*", metavar="path",
                        help="files or directories to lint "
                             "(default: src and tests if present)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accepted-findings file; matching findings "
                             "don't fail the run")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--select", metavar="RULE,...", default=None,
                        help="only run these rule ids")
    parser.add_argument("--ignore", metavar="RULE,...", default=None,
                        help="skip these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _split_ids(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _default_paths() -> List[str]:
    import os
    paths = [p for p in ("src", "tests") if os.path.isdir(p)]
    return paths or ["."]


def _render_json(findings: List[Finding], baselined: List[Finding],
                 files: int) -> str:
    by_rule: dict = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    report = {
        "version": 1,
        "tool": "simlint",
        "summary": {"files": files, "findings": len(findings),
                    "baselined": len(baselined), "by_rule": by_rule},
        "findings": [f.to_dict() for f in findings],
        "baselined": [f.to_dict() for f in baselined],
    }
    return json.dumps(report, indent=2, sort_keys=True)


def _render_text(findings: List[Finding], baselined: List[Finding],
                 files: int) -> str:
    lines = [finding.format_text() for finding in findings]
    summary = (f"simlint: {len(findings)} finding(s) in {files} file(s)")
    if baselined:
        summary += f" ({len(baselined)} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        options = _parser().parse_args(argv)
    except SystemExit as exit_:  # argparse --help (0) or usage error (2)
        return 0 if exit_.code == 0 else 2

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<10} {rule.severity:<8} {rule.summary}")
        return 0

    try:
        rules = select_rules(_split_ids(options.select),
                             _split_ids(options.ignore))
        files = collect_files(options.paths or _default_paths())
    except (KeyError, FileNotFoundError) as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    findings = lint_files(files, rules=rules)

    if options.write_baseline:
        write_baseline(options.write_baseline, findings)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{options.write_baseline}")
        return 0

    baselined: List[Finding] = []
    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"simlint: bad baseline {options.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        findings, baselined = split_baselined(findings, baseline)

    renderer = _render_json if options.format == "json" else _render_text
    report = renderer(findings, baselined, len(files))
    print(report)
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if findings else 0
