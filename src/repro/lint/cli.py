"""``python -m repro.lint`` — the simlint command line.

Exit codes: 0 clean (or every finding baselined), 1 findings, 2 usage
error. ``--format json`` emits a machine-readable report (CI uploads it
as an artifact), ``--format sarif`` emits SARIF 2.1.0 for GitHub code
scanning; ``--output`` additionally writes the report to a file so the
exit code still gates the job. ``--jobs N`` fans the two per-file
phases out over ``runtime.sweep_map`` workers with byte-identical
findings at any jobs level, and the content-hash incremental cache
(``--cache-dir``, disable with ``--no-cache``) keeps warm re-runs
O(changed files).

A ``simlint-baseline.json`` in the current directory is loaded
automatically when ``--baseline`` is not given, so the repository's
accepted findings (intentional wall-clock timing in the benchmark
harness) don't fail routine runs; pass ``--baseline ''`` to disable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .framework import Finding, all_rules
from .runner import (
    collect_files,
    lint_files,
    load_baseline,
    select_rules,
    split_baselined,
    write_baseline,
)
from .sarif import render_sarif

__all__ = ["main"]

#: Auto-loaded when present and ``--baseline`` is not given.
DEFAULT_BASELINE = "simlint-baseline.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & sim-safety static analysis.")
    parser.add_argument("paths", nargs="*", metavar="path",
                        help="files or directories to lint "
                             "(default: src and tests if present)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accepted-findings file; matching findings "
                             "don't fail the run (default: "
                             f"{DEFAULT_BASELINE} when present; pass '' "
                             "to disable)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--select", metavar="RULE,...", default=None,
                        help="only run these rule ids")
    parser.add_argument("--ignore", metavar="RULE,...", default=None,
                        help="skip these rule ids")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files on N sweep workers "
                             "(0 = all cores); findings are "
                             "byte-identical at any level")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="incremental cache directory "
                             "(default: .repro-cache/simlint)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _split_ids(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _default_paths() -> List[str]:
    paths = [p for p in ("src", "tests") if os.path.isdir(p)]
    return paths or ["."]


def _render_json(findings: List[Finding], baselined: List[Finding],
                 files: int) -> str:
    by_rule: dict = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    report = {
        "version": 1,
        "tool": "simlint",
        "summary": {"files": files, "findings": len(findings),
                    "baselined": len(baselined), "by_rule": by_rule},
        "findings": [f.to_dict() for f in findings],
        "baselined": [f.to_dict() for f in baselined],
    }
    return json.dumps(report, indent=2, sort_keys=True)


def _render_text(findings: List[Finding], baselined: List[Finding],
                 files: int) -> str:
    lines = [finding.format_text() for finding in findings]
    summary = (f"simlint: {len(findings)} finding(s) in {files} file(s)")
    if baselined:
        summary += f" ({len(baselined)} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        options = _parser().parse_args(argv)
    except SystemExit as exit_:  # argparse --help (0) or usage error (2)
        return 0 if exit_.code == 0 else 2

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<10} {rule.severity:<8} {rule.summary}")
        return 0

    try:
        rules = select_rules(_split_ids(options.select),
                             _split_ids(options.ignore))
        files = collect_files(options.paths or _default_paths())
    except (KeyError, FileNotFoundError) as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    findings = lint_files(files, rules=rules, jobs=options.jobs,
                          cache_dir=options.cache_dir,
                          use_cache=not options.no_cache)

    if options.write_baseline:
        write_baseline(options.write_baseline, findings)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{options.write_baseline}")
        return 0

    baseline_path = options.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    baselined: List[Finding] = []
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"simlint: bad baseline {baseline_path!r}: {exc}",
                  file=sys.stderr)
            return 2
        findings, baselined = split_baselined(findings, baseline)

    if options.format == "sarif":
        report = render_sarif(findings, baselined, rules)
    elif options.format == "json":
        report = _render_json(findings, baselined, len(files))
    else:
        report = _render_text(findings, baselined, len(files))
    print(report)
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 1 if findings else 0
