"""Shared AST utilities: module discovery, imports, name resolution.

Two consumers with the same needs live in this repository:

* the result cache (:mod:`repro.runtime.cache`) hashes an exhibit's
  *static import closure* — it must find every module under ``repro``
  and extract its intra-package imports without executing anything;
* the simlint analyzer (:mod:`repro.lint`) walks the same files and
  additionally needs import-alias tables to resolve calls like
  ``perf_counter()`` back to ``time.perf_counter``.

Everything here is purely syntactic (one :func:`ast.parse` per file, no
imports executed), so both consumers stay deterministic and cheap.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "collect_aliases",
    "dotted_name",
    "dynamic_import_lines",
    "iter_module_files",
    "module_imports",
    "module_name_for_path",
    "parse_file",
    "resolve_call_name",
]


# -- module discovery --------------------------------------------------------

def iter_module_files(root: str) -> Iterable[Tuple[str, str]]:
    """Yield ``(dotted module name, file path)`` for every .py under a
    package directory ``root`` (e.g. the ``repro`` package dir)."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, os.path.dirname(root))
            parts = rel[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            yield ".".join(parts), path


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for ``path``, by walking up ``__init__.py`` dirs.

    ``src/repro/mesh/ambient.py`` -> ``repro.mesh.ambient``;
    a file outside any package returns its bare stem.
    """
    path = os.path.abspath(path)
    if not path.endswith(".py"):
        return None
    parts: List[str] = []
    stem = os.path.basename(path)[:-3]
    if stem != "__init__":
        parts.append(stem)
    current = os.path.dirname(path)
    while os.path.isfile(os.path.join(current, "__init__.py")):
        parts.insert(0, os.path.basename(current))
        parent = os.path.dirname(current)
        if parent == current:  # pragma: no cover - filesystem root
            break
        current = parent
    return ".".join(parts) if parts else None


def parse_file(path: str) -> Tuple[bytes, Optional[ast.AST]]:
    """``(source bytes, tree)``; tree is None on a syntax error."""
    with open(path, "rb") as handle:
        source = handle.read()
    try:
        return source, ast.parse(source, filename=path)
    except SyntaxError:
        return source, None


# -- static imports ----------------------------------------------------------

def module_imports(tree: ast.AST, module: str, is_package: bool,
                   known: Set[str]) -> Set[str]:
    """Modules from ``known`` that ``module`` imports, statically.

    Resolves absolute and relative imports against ``known`` by longest
    known prefix, so ``from repro.core.replica import ReplicaConfig``
    lands on ``repro.core.replica`` and plain ``import repro.core`` on
    ``repro.core``.
    """
    package_parts = module.split(".")
    if not is_package:
        package_parts = package_parts[:-1]
    found: Set[str] = set()

    def resolve(name: str) -> None:
        parts = name.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in known:
                found.add(candidate)
                return
            parts = parts[:-1]

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolve(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[:len(package_parts) - node.level + 1]
                prefix = ".".join(base)
            else:
                prefix = ""
            stem = node.module or ""
            base_name = ".".join(p for p in (prefix, stem) if p)
            if base_name:
                resolve(base_name)
            for alias in node.names:
                if base_name:
                    resolve(f"{base_name}.{alias.name}")
                elif node.level == 0:
                    resolve(alias.name)
    found.discard(module)
    return found


def dynamic_import_lines(tree: ast.AST) -> List[int]:
    """Line numbers of dynamic-import constructs a static walker cannot
    see through: ``import importlib`` / ``from importlib import ...``
    and calls to ``__import__``."""
    lines: List[int] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "importlib"
                   for alias in node.names):
                lines.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] == \
                    "importlib":
                lines.append(node.lineno)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and \
                    node.func.id == "__import__":
                lines.append(node.lineno)
    return sorted(set(lines))


# -- name resolution for lint rules -----------------------------------------

def collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin, from every import in the tree.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc":
    "time.perf_counter"}``. Relative imports are skipped (they cannot
    name stdlib modules, which is all the rules resolve against).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(func: ast.AST,
                      aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of a call target with import aliases substituted.

    With ``from datetime import datetime``, the call ``datetime.now()``
    resolves to ``datetime.datetime.now``. Purely syntactic: a local
    variable shadowing an imported name will still resolve — simlint
    rules accept that imprecision (suppressible) over executing code.
    """
    name = dotted_name(func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    origin = aliases.get(root)
    if origin is not None:
        return f"{origin}.{rest}" if rest else origin
    return name
