"""Interprocedural determinism-taint dataflow for simlint v2.

The engine answers one question: *can a nondeterministic value reach
state that the repository's correctness claims depend on?* Sources are
the four ways nondeterminism enters a Python process:

* ``wallclock`` — ``time.time()`` and friends (the DET001 call set);
* ``rng`` — the module-level ``random`` functions / unseeded ``Random``;
* ``order`` — hash-ordered iteration: ``list(a_set)``, ``dict.popitem``,
  elements bound by iterating a set;
* ``ident`` — ``id()`` / ``hash()``, which vary per process and per
  ``PYTHONHASHSEED``.

Sinks are the three places a tainted value corrupts a run: simulation
state writes in the model layers, values returned by
``repro.experiments`` functions (exhibit results), and cache-key
material (``cached_run`` / ``RunSpec`` arguments).

The analysis is two-phase so it parallelizes and caches per file:

1. **Extraction** (:func:`extract_templates`) — one purely local AST
   pass per function producing a :class:`FunctionTemplate` whose return
   value, sink inputs, and call arguments are *taint terms*: a small
   picklable algebra (``kind`` / ``param`` / ``attrset`` / ``call`` /
   ``sans_order`` / ``join``) that defers everything cross-module.
2. **Resolution** (:func:`resolve_summaries`) — folds
   :class:`Summary` objects (return taint, param→return flows,
   param→sink flows) over the call graph in Tarjan SCC order, iterating
   each SCC to a fixpoint (the lattice is finite and joins are
   monotone, so convergence is guaranteed; recursion and call cycles
   just take an extra lap). Ground taint arriving at a sink — directly,
   through a helper's return, or through an argument that a callee
   eventually sinks — becomes a :class:`ResolvedFinding` for DET101.

The same extraction pass also records :class:`RaceWrite` facts (writes
to module globals / class attributes from inside sim-process
generators) for RACE001, since it is already walking every function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .astutil import resolve_call_name
from .rules import WallClockRule

__all__ = [
    "FunctionTemplate",
    "RaceWrite",
    "ResolvedFinding",
    "Sink",
    "Summary",
    "extract_templates",
    "race_groups",
    "resolve_summaries",
]

#: Bump when term semantics change (cache-key component).
DATAFLOW_VERSION = 1

KIND_LABELS = {
    "wallclock": "wall-clock",
    "rng": "unseeded/global rng",
    "order": "set/dict iteration order",
    "ident": "id()/hash() identity",
}

_WALLCLOCK_CALLS = WallClockRule._CALLS
_RNG_MODULE_FNS = frozenset(
    f"random.{fn}" for fn in (
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "gauss", "expovariate", "lognormvariate",
        "normalvariate", "paretovariate", "triangular", "betavariate",
        "gammavariate", "vonmisesvariate", "weibullvariate",
        "getrandbits", "randbytes"))
_IDENT_CALLS = frozenset({"id", "hash"})
#: Builtins whose result does not depend on argument order — they
#: *sanitize* the ``order`` kind (but pass every other kind through).
_ORDER_SANITIZERS = frozenset({"sorted", "sum", "min", "max", "len",
                               "any", "all", "set", "frozenset"})
_SEQUENCE_CTORS = frozenset({"list", "tuple", "iter"})
#: Call names whose arguments are cache-key material.
_CACHE_KEY_SINKS = frozenset({"cached_run", "RunSpec"})
#: Attribute calls that push a (possibly tainted) delay into the agenda.
_SCHEDULE_ATTRS = frozenset({"timeout", "_schedule", "_schedule_call"})
#: Mutating container methods (RACE001 write detection).
_MUTATORS = frozenset({"append", "add", "update", "extend", "insert",
                       "pop", "popleft", "appendleft", "remove",
                       "discard", "clear", "setdefault", "popitem"})
#: Module-level constructors that make shared state legitimate: writes
#: that go through simcore events/resources are synchronized by the
#: simulator itself.
SYNC_CTORS = frozenset({"Resource", "CpuResource", "Store", "Event"})

_wallclock_rule = WallClockRule()


def _is_state_module(module: Optional[str]) -> bool:
    """Modules whose attribute writes count as sim-state sinks.

    The model layers (rank <= 2 of the layer DAG) hold simulation
    state; the DET001 wall-clock allowlist (repro.obs instrumentation,
    repro.serve) is carved out because those layers measure real time
    on purpose — except the denylisted tracer, which records sim time.
    """
    from .graph import layer_rank
    if not module:
        return False
    rank = layer_rank(module)
    if rank is None or rank > 2:
        return False
    return not _wallclock_rule._allowlisted(module)


# -- taint terms -------------------------------------------------------------
# Terms are plain nested tuples: hashable, picklable, canonical.
#   ("kind", k) | ("param", i) | ("attrset", attr) | ("sans_order", t)
#   ("call", desc, pos_terms, kw_terms) | ("join", terms)
# None is bottom (untainted).

def _join(terms: Sequence) -> Optional[tuple]:
    flat: List[tuple] = []
    for term in terms:
        if term is None:
            continue
        if term[0] == "join":
            flat.extend(term[1])
        else:
            flat.append(term)
    unique = sorted(set(flat), key=repr)
    if not unique:
        return None
    if len(unique) == 1:
        return unique[0]
    return ("join", tuple(unique))


def _term_has_call(term) -> bool:
    if term is None:
        return False
    tag = term[0]
    if tag == "call":
        return True
    if tag == "join":
        return any(_term_has_call(t) for t in term[1])
    if tag == "sans_order":
        return _term_has_call(term[1])
    return False


def _term_call_names(term) -> List[str]:
    """Callee names appearing in a term (for finding messages)."""
    names: List[str] = []
    if term is None:
        return names
    tag = term[0]
    if tag == "call":
        names.append(term[1][1])
        for sub in term[2] + tuple(t for _, t in term[3]):
            names.extend(_term_call_names(sub))
    elif tag == "join":
        for sub in term[1]:
            names.extend(_term_call_names(sub))
    elif tag == "sans_order":
        names.extend(_term_call_names(term[1]))
    return sorted(set(names))


@dataclass(frozen=True)
class Sink:
    """A taint sink site inside one function."""

    label: str     # sim-state | exhibit-result | cache-key
    line: int
    col: int
    detail: str    # attribute / callee name, for the message
    term: tuple    # the taint term of the value reaching the sink


@dataclass(frozen=True)
class CallSite:
    """One call with argument taint terms (for sink lifting)."""

    desc: Tuple[str, str]
    line: int
    col: int
    pos_terms: tuple
    kw_terms: Tuple[Tuple[str, tuple], ...]


@dataclass(frozen=True)
class FunctionTemplate:
    """The per-function extraction result; everything later phases need."""

    qualname: str
    module: str
    class_qualname: str
    lineno: int
    params: Tuple[str, ...]
    kind: str                       # function | method | ...
    return_term: Optional[tuple]
    sinks: Tuple[Sink, ...]
    callsites: Tuple[CallSite, ...]

    def callee_descs(self) -> List[Tuple[str, str]]:
        descs = {site.desc for site in self.callsites}

        def walk(term):
            if term is None:
                return
            if term[0] == "call":
                descs.add(term[1])
                for sub in term[2] + tuple(t for _, t in term[3]):
                    walk(sub)
            elif term[0] == "join":
                for sub in term[1]:
                    walk(sub)
            elif term[0] == "sans_order":
                walk(term[1])

        walk(self.return_term)
        for sink in self.sinks:
            walk(sink.term)
        for site in self.callsites:
            for sub in site.pos_terms + tuple(t for _, t in site.kw_terms):
                walk(sub)
        return sorted(descs)


@dataclass(frozen=True)
class RaceWrite:
    """A write to shared mutable state from a sim-process generator."""

    scope: str      # "global" | "class"
    owner: str      # module name or class qualname
    name: str       # the written symbol / attribute
    writer: str     # generator qualname doing the write
    path: str
    line: int
    col: int


# -- extraction --------------------------------------------------------------

class _FunctionExtractor:
    """One pass over one function body building its template."""

    def __init__(self, module_source, module: str, qualname: str,
                 class_qualname: str, node, kind: str):
        self.source = module_source
        self.module = module
        self.qualname = qualname
        self.class_qualname = class_qualname
        self.node = node
        self.kind = kind
        self.aliases = module_source.aliases
        args = node.args
        self.params = tuple(a.arg for a in args.args)
        self.param_index = {name: i for i, name in enumerate(self.params)}
        self.env: Dict[str, Optional[tuple]] = {
            name: ("param", i) for name, i in
            sorted(self.param_index.items())}
        self.setish: Set[str] = set()
        self.return_terms: List[tuple] = []
        self.sinks: List[Sink] = []
        self.callsites: List[CallSite] = []
        self.is_experiment = bool(module) and (
            module == "repro.experiments" or
            module.startswith("repro.experiments."))
        self.state_module = _is_state_module(module)

    # -- expression terms ---------------------------------------------------
    def _is_setish(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name) and node.id in self.setish:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
            return self._is_setish(node.left) or \
                self._is_setish(node.right)
        return False

    def _attrset_term(self, node: ast.AST) -> Optional[tuple]:
        if isinstance(node, ast.Attribute):
            return ("attrset", node.attr)
        return None

    def term(self, node: Optional[ast.AST]) -> Optional[tuple]:
        if node is None:
            return None
        if isinstance(node, ast.Call):
            return self._call_term(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self.term(node.value)
        if isinstance(node, ast.Subscript):
            return _join([self.term(node.value), self.term(node.slice)])
        if isinstance(node, (ast.BinOp,)):
            return _join([self.term(node.left), self.term(node.right)])
        if isinstance(node, ast.UnaryOp):
            return self.term(node.operand)
        if isinstance(node, ast.BoolOp):
            return _join([self.term(v) for v in node.values])
        if isinstance(node, ast.Compare):
            return _join([self.term(node.left)] +
                         [self.term(c) for c in node.comparators])
        if isinstance(node, ast.IfExp):
            return _join([self.term(node.body), self.term(node.orelse)])
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _join([self.term(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            return _join([self.term(k) for k in node.keys if k] +
                         [self.term(v) for v in node.values])
        if isinstance(node, ast.JoinedStr):
            return _join([self.term(v) for v in node.values])
        if isinstance(node, ast.FormattedValue):
            return self.term(node.value)
        if isinstance(node, ast.Starred):
            return self.term(node.value)
        if isinstance(node, ast.Await):
            return self.term(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            parts: List[Optional[tuple]] = []
            order = False
            for comp in node.generators:
                parts.append(self.term(comp.iter))
                if self._is_setish(comp.iter) and \
                        not isinstance(node, ast.SetComp):
                    order = True
                attrset = self._attrset_term(comp.iter)
                if attrset is not None and \
                        not isinstance(node, ast.SetComp):
                    parts.append(attrset)
            if isinstance(node, ast.DictComp):
                parts.extend([self.term(node.key), self.term(node.value)])
            else:
                parts.append(self.term(node.elt))
            if order:
                parts.append(("kind", "order"))
            return _join(parts)
        return None

    def _call_term(self, node: ast.Call) -> Optional[tuple]:
        name = resolve_call_name(node.func, self.aliases)
        pos_terms = tuple(self.term(a) for a in node.args)
        kw_terms = tuple(sorted(
            (kw.arg or "**", self.term(kw.value))
            for kw in node.keywords))
        arg_join = _join([t for t in pos_terms if t is not None] +
                         [t for _, t in kw_terms if t is not None])

        # Sources -----------------------------------------------------------
        if name in _WALLCLOCK_CALLS:
            return ("kind", "wallclock")
        if name in _RNG_MODULE_FNS or name == "random.SystemRandom":
            return ("kind", "rng")
        if name == "random.Random" and not node.args and not node.keywords:
            return ("kind", "rng")
        if isinstance(node.func, ast.Name) and \
                node.func.id in _IDENT_CALLS and node.args:
            return _join([("kind", "ident"), arg_join])
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "popitem":
            return _join([("kind", "order"), self.term(node.func.value)])
        if isinstance(node.func, ast.Name) and \
                node.func.id in _SEQUENCE_CTORS and len(node.args) == 1:
            arg = node.args[0]
            if self._is_setish(arg):
                return _join([("kind", "order"), arg_join])
            attrset = self._attrset_term(arg)
            if attrset is not None:
                # list(obj.attr): order-tainted iff the program declares
                # attr as a Set somewhere — resolved globally.
                return _join([attrset, arg_join])
            return arg_join

        # Sanitizers --------------------------------------------------------
        if isinstance(node.func, ast.Name) and \
                node.func.id in _ORDER_SANITIZERS:
            if arg_join is None:
                return None
            return ("sans_order", arg_join)

        # Calls -------------------------------------------------------------
        desc = self._callee_desc(node.func, name)
        site = CallSite(desc=desc, line=node.lineno,
                        col=node.col_offset + 1,
                        pos_terms=pos_terms, kw_terms=kw_terms)
        self.callsites.append(site)
        if desc[0] == "opaque":
            return arg_join
        return ("call", desc, pos_terms, kw_terms)

    def _callee_desc(self, func: ast.AST,
                     name: Optional[str]) -> Tuple[str, str]:
        if name is not None:
            root, _, rest = name.partition(".")
            if root in ("self", "cls") and rest and "." not in rest:
                return ("self", rest)
            if root in ("self", "cls"):
                return ("opaque", name)
            return ("name", name)
        return ("opaque", "")

    # -- statements ---------------------------------------------------------
    def _record_sink(self, label: str, node: ast.AST, detail: str,
                     term: Optional[tuple]) -> None:
        if term is not None:
            self.sinks.append(Sink(label=label, line=node.lineno,
                                   col=node.col_offset + 1,
                                   detail=detail, term=term))

    def _handle_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.Assign, ast.AnnAssign,
                                  ast.AugAssign)):
            value = statement.value
            if value is None:
                return
            term = self.term(value)
            targets = statement.targets if isinstance(
                statement, ast.Assign) else [statement.target]
            for target in targets:
                self._assign(target, term, value,
                             augmented=isinstance(statement,
                                                  ast.AugAssign))
        elif isinstance(statement, ast.Return):
            term = self.term(statement.value)
            if term is not None:
                self.return_terms.append(term)
                if self.is_experiment:
                    self._record_sink("exhibit-result", statement,
                                      "return value", term)
        elif isinstance(statement, ast.Expr):
            self.term(statement.value)   # record call sites / sinks
        elif isinstance(statement, ast.For):
            iter_term = self.term(statement.iter)
            extra = []
            if self._is_setish(statement.iter):
                extra.append(("kind", "order"))
            attrset = self._attrset_term(statement.iter)
            if attrset is not None:
                extra.append(attrset)
            self._assign(statement.target,
                         _join([iter_term] + extra), statement.iter)
        elif isinstance(statement, (ast.If, ast.While)):
            self.term(statement.test)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                term = self.term(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, term,
                                 item.context_expr)

    def _assign(self, target: ast.AST, term: Optional[tuple],
                value: ast.AST, augmented: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augmented:
                term = _join([self.env.get(target.id), term])
            self.env[target.id] = term
            if self._is_setish(value):
                self.setish.add(target.id)
            elif target.id in self.setish and not augmented:
                self.setish.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, term, value)
        elif isinstance(target, ast.Attribute):
            if self.state_module:
                self._record_sink("sim-state", target, target.attr, term)
        elif isinstance(target, ast.Subscript):
            container = target.value
            if isinstance(container, ast.Attribute) and self.state_module:
                self._record_sink("sim-state", target,
                                  f"{container.attr}[...]", term)

    def _scan_special_sinks(self, node: ast.AST) -> None:
        """Cache-key and scheduling sinks live in call argument position."""
        if not isinstance(node, ast.Call):
            return
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if callee in _CACHE_KEY_SINKS:
            term = _join([self.term(a) for a in node.args] +
                         [self.term(kw.value) for kw in node.keywords])
            self._record_sink("cache-key", node, callee + "()", term)
        elif callee in _SCHEDULE_ATTRS and \
                isinstance(func, ast.Attribute) and node.args and \
                self.state_module:
            term = self.term(node.args[0])
            self._record_sink("sim-state", node,
                              f"{callee}() delay", term)

    def extract(self) -> FunctionTemplate:
        statements = _own_statements(self.node)
        # Two passes: the second picks up loop-carried and
        # defined-later dependencies that a single in-order pass misses.
        for _pass in (1, 2):
            self.return_terms = []
            self.sinks = []
            self.callsites = []
            for statement in statements:
                self._handle_statement(statement)
            for statement in statements:
                for sub in ast.walk(statement):
                    self._scan_special_sinks(sub)
        return FunctionTemplate(
            qualname=self.qualname, module=self.module,
            class_qualname=self.class_qualname,
            lineno=self.node.lineno, params=self.params, kind=self.kind,
            return_term=_join(self.return_terms),
            sinks=tuple(self.sinks),
            callsites=tuple(self.callsites))


def _own_statements(fn) -> List[ast.stmt]:
    """Every statement in the function, excluding nested def bodies,
    flattened in source order (branch bodies included — the dataflow is
    deliberately path-insensitive: any branch may execute)."""
    statements: List[ast.stmt] = []

    def visit(body: Sequence[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            statements.append(statement)
            for name in ("body", "orelse", "finalbody"):
                nested = getattr(statement, name, None)
                if nested:
                    visit(nested)
            for handler in getattr(statement, "handlers", ()):
                visit(handler.body)

    visit(fn.body)
    return statements


# -- sim-process generator detection (shared with RACE001) -------------------

_SIM_ATTRS = frozenset({"timeout", "process", "event", "work",
                        "all_of", "any_of", "wait"})


def _walk_own(node: ast.AST):
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def is_sim_generator(fn) -> bool:
    """A generator whose yields interact with a simulator (the SIM001
    heuristic: a yielded expression mentions ``sim`` or a simulator
    verb)."""
    for node in _walk_own(fn):
        if not isinstance(node, (ast.Yield, ast.YieldFrom)):
            continue
        value = node.value
        if value is None:
            continue
        for sub in ast.walk(value):
            if isinstance(sub, ast.Name) and sub.id == "sim":
                return True
            if isinstance(sub, ast.Attribute) and (
                    sub.attr == "sim" or sub.attr in _SIM_ATTRS):
                return True
    return False


def _race_writes(module_source, qualname: str, fn,
                 module_globals: Set[str],
                 class_names: Set[str]) -> List[RaceWrite]:
    if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _walk_own(fn)):
        return []
    if not is_sim_generator(fn):
        return []
    module = module_source.module or ""
    declared_global: Set[str] = set()
    for node in _walk_own(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    writes: List[RaceWrite] = []

    def record(scope: str, owner: str, name: str, node: ast.AST) -> None:
        writes.append(RaceWrite(
            scope=scope, owner=owner, name=name, writer=qualname,
            path=module_source.path, line=node.lineno,
            col=node.col_offset + 1))

    def classify_target(target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                record("global", module, target.id, node)
        elif isinstance(target, ast.Attribute):
            value = target.value
            if isinstance(value, ast.Name) and value.id in class_names:
                record("class", f"{module}.{value.id}", target.attr,
                       node)
        elif isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Name):
                if value.id in declared_global or \
                        value.id in module_globals:
                    record("global", module, value.id, node)
            elif isinstance(value, ast.Attribute) and \
                    isinstance(value.value, ast.Name) and \
                    value.value.id in class_names:
                record("class", f"{module}.{value.value.id}",
                       value.attr, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                classify_target(element, node)

    for node in _walk_own(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                classify_target(target, node)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in module_globals or \
                        receiver.id in declared_global:
                    record("global", module, receiver.id, node)
            elif isinstance(receiver, ast.Attribute) and \
                    isinstance(receiver.value, ast.Name) and \
                    receiver.value.id in class_names:
                record("class", f"{module}.{receiver.value.id}",
                       receiver.attr, node)
    return writes


def extract_templates(module_source):
    """``(templates, race_writes)`` for one parsed module."""
    tree = module_source.tree
    module = module_source.module or ""
    if tree is None:
        return (), ()
    module_globals: Set[str] = set()
    class_names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            class_names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)

    templates: List[FunctionTemplate] = []
    races: List[RaceWrite] = []

    def visit_function(node, qualname: str, class_qualname: str,
                       kind: str) -> None:
        extractor = _FunctionExtractor(module_source, module, qualname,
                                       class_qualname, node, kind)
        templates.append(extractor.extract())
        races.extend(_race_writes(module_source, qualname, node,
                                  module_globals, class_names))

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, f"{module}.{node.name}", "", "function")
        elif isinstance(node, ast.ClassDef):
            class_qualname = f"{module}.{node.name}"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    kind = "method"
                    for decorator in item.decorator_list:
                        name = decorator.id if isinstance(
                            decorator, ast.Name) else None
                        if name in ("staticmethod", "classmethod"):
                            kind = name
                    visit_function(item,
                                   f"{class_qualname}.{item.name}",
                                   class_qualname, kind)
    return tuple(templates), tuple(races)


# -- resolution --------------------------------------------------------------

@dataclass(frozen=True)
class Summary:
    """What a function does with taint, from its caller's viewpoint."""

    returns: FrozenSet[str]
    param_returns: FrozenSet[int]
    #: param index -> sink label the parameter eventually reaches.
    param_sinks: Tuple[Tuple[int, str], ...]


@dataclass(frozen=True)
class ResolvedFinding:
    """One ground DET101 hit, ready to become a Finding."""

    path: str
    module: str
    line: int
    col: int
    label: str
    detail: str
    kinds: Tuple[str, ...]
    via: Tuple[str, ...]
    through_call: bool


_EMPTY_SUMMARY = Summary(returns=frozenset(), param_returns=frozenset(),
                         param_sinks=())


class _Resolver:
    """Evaluates taint terms against the evolving summary table."""

    def __init__(self, graph):
        self.graph = graph
        self.templates: Dict[str, FunctionTemplate] = {}
        for module_facts in graph.facts:
            for template in module_facts.templates:
                self.templates[template.qualname] = template
        self.summaries: Dict[str, Summary] = {
            qualname: _EMPTY_SUMMARY for qualname in self.templates}

    # -- term evaluation ----------------------------------------------------
    def eval(self, term, template: FunctionTemplate,
             depth: int = 0) -> Tuple[Set[str], Set[int]]:
        """``(ground kinds, open param indices)`` for a term."""
        if term is None or depth > 40:
            return set(), set()
        tag = term[0]
        if tag == "kind":
            return {term[1]}, set()
        if tag == "param":
            return set(), {term[1]}
        if tag == "attrset":
            if term[1] in self.graph.set_attributes:
                return {"order"}, set()
            return set(), set()
        if tag == "sans_order":
            kinds, params = self.eval(term[1], template, depth + 1)
            return kinds - {"order"}, params
        if tag == "join":
            kinds: Set[str] = set()
            params: Set[int] = set()
            for sub in term[1]:
                sub_kinds, sub_params = self.eval(sub, template,
                                                  depth + 1)
                kinds |= sub_kinds
                params |= sub_params
            return kinds, params
        if tag == "call":
            return self._eval_call(term[1], term[2], term[3], template,
                                   depth)
        return set(), set()

    def _arg_term(self, index: int, pos_terms, kw_terms,
                  callee: FunctionTemplate, offset: int):
        position = index - offset
        if 0 <= position < len(pos_terms):
            return pos_terms[position]
        if index < len(callee.params):
            wanted = callee.params[index]
            for name, term in kw_terms:
                if name == wanted:
                    return term
        return None

    def _callee_offset(self, desc, callee: FunctionTemplate) -> int:
        """Skip the bound ``self``/``cls`` parameter at call sites."""
        if callee.kind in ("method", "classmethod") and callee.params:
            if desc[0] == "self":
                return 1
            # Constructor or instance-attribute call resolved by name.
            if callee.params[0] in ("self", "cls"):
                return 1
        return 0

    def _eval_call(self, desc, pos_terms, kw_terms,
                   template: FunctionTemplate,
                   depth: int) -> Tuple[Set[str], Set[int]]:
        target = self.graph.resolve_callee(desc, template.module,
                                           template.class_qualname)
        arg_terms = tuple(pos_terms) + tuple(t for _, t in kw_terms)
        if target is None or target not in self.templates:
            # Opaque call (stdlib, foreign): conservatively pass
            # argument taint through to the result.
            kinds: Set[str] = set()
            params: Set[int] = set()
            for sub in arg_terms:
                sub_kinds, sub_params = self.eval(sub, template,
                                                  depth + 1)
                kinds |= sub_kinds
                params |= sub_params
            return kinds, params
        callee = self.templates[target]
        summary = self.summaries[target]
        offset = self._callee_offset(desc, callee)
        kinds = set(summary.returns)
        params: Set[int] = set()
        for index in sorted(summary.param_returns):
            arg = self._arg_term(index, pos_terms, kw_terms, callee,
                                 offset)
            sub_kinds, sub_params = self.eval(arg, template, depth + 1)
            kinds |= sub_kinds
            params |= sub_params
        return kinds, params

    # -- summary fixpoint ---------------------------------------------------
    def _compute_summary(self, qualname: str) -> Summary:
        template = self.templates[qualname]
        return_kinds, return_params = self.eval(template.return_term,
                                                template)
        param_sinks: Set[Tuple[int, str]] = set()
        for sink in template.sinks:
            _kinds, params = self.eval(sink.term, template)
            for index in sorted(params):
                param_sinks.add((index, sink.label))
        for site in template.callsites:
            target = self.graph.resolve_callee(
                site.desc, template.module, template.class_qualname)
            if target is None or target not in self.templates:
                continue
            callee = self.templates[target]
            summary = self.summaries[target]
            offset = self._callee_offset(site.desc, callee)
            for index, label in summary.param_sinks:
                arg = self._arg_term(index, site.pos_terms,
                                     site.kw_terms, callee, offset)
                _kinds, params = self.eval(arg, template)
                for param in sorted(params):
                    param_sinks.add((param, label))
        return Summary(returns=frozenset(return_kinds),
                       param_returns=frozenset(return_params),
                       param_sinks=tuple(sorted(param_sinks)))

    def run(self) -> None:
        for component in self.graph.sccs:
            members = [m for m in component if m in self.templates]
            if not members:
                continue
            for _iteration in range(len(members) + 8):
                changed = False
                for qualname in members:
                    updated = self._compute_summary(qualname)
                    if updated != self.summaries[qualname]:
                        self.summaries[qualname] = updated
                        changed = True
                if not changed:
                    break

    # -- findings -----------------------------------------------------------
    def findings(self) -> List[ResolvedFinding]:
        resolved: List[ResolvedFinding] = []
        for qualname in sorted(self.templates):
            template = self.templates[qualname]
            module_facts = self.graph.by_module.get(template.module)
            path = module_facts.path if module_facts else ""
            for sink in template.sinks:
                kinds, _params = self.eval(sink.term, template)
                if kinds:
                    resolved.append(ResolvedFinding(
                        path=path, module=template.module,
                        line=sink.line, col=sink.col, label=sink.label,
                        detail=sink.detail,
                        kinds=tuple(sorted(kinds)),
                        via=tuple(_term_call_names(sink.term)),
                        through_call=_term_has_call(sink.term)))
            for site in template.callsites:
                target = self.graph.resolve_callee(
                    site.desc, template.module, template.class_qualname)
                if target is None or target not in self.templates:
                    continue
                callee = self.templates[target]
                summary = self.summaries[target]
                offset = self._callee_offset(site.desc, callee)
                for index, label in summary.param_sinks:
                    arg = self._arg_term(index, site.pos_terms,
                                         site.kw_terms, callee, offset)
                    kinds, _params = self.eval(arg, template)
                    if kinds:
                        resolved.append(ResolvedFinding(
                            path=path, module=template.module,
                            line=site.line, col=site.col, label=label,
                            detail=f"argument to {site.desc[1]}()",
                            kinds=tuple(sorted(kinds)),
                            via=(site.desc[1],), through_call=True))
        return resolved


def resolve_summaries(graph):
    """``(summaries, findings)`` for a built :class:`ProgramGraph`."""
    resolver = _Resolver(graph)
    resolver.run()
    return resolver.summaries, resolver.findings()


def race_groups(graph) -> Dict[str, List[dict]]:
    """RACE001 resolution: path -> contested-write records.

    A symbol is contested when >= 2 *distinct* sim-process generators
    write it. Module globals constructed from a simcore synchronization
    type (Resource/Store/Event) are exempt: the simulator serializes
    access to those by construction.
    """
    by_symbol: Dict[Tuple[str, str, str], List[RaceWrite]] = {}
    for module_facts in graph.facts:
        for write in module_facts.race_writes:
            key = (write.scope, write.owner, write.name)
            by_symbol.setdefault(key, []).append(write)

    findings: Dict[str, List[dict]] = {}
    for key in sorted(by_symbol):
        scope, owner, name = key
        writes = by_symbol[key]
        writers = sorted({w.writer for w in writes})
        if len(writers) < 2:
            continue
        if scope == "global":
            owner_facts = graph.by_module.get(owner)
            if owner_facts is not None and any(
                    global_name == name and ctor in SYNC_CTORS
                    for global_name, ctor in owner_facts.global_ctors):
                continue
        symbol = f"{owner}.{name}" if scope == "global" else \
            f"{owner}.{name} (class attribute)"
        for write in sorted(writes, key=lambda w: (w.path, w.line, w.col)):
            others = [w for w in writers if w != write.writer] or writers
            findings.setdefault(write.path, []).append({
                "line": write.line, "col": write.col, "symbol": symbol,
                "writer": write.writer, "others": others})
    return findings
