"""Whole-program simlint rules: DET101, LAYER001, RACE001, LEAK001.

These are the rule families the per-file catalog (:mod:`.rules`)
structurally cannot express:

* **DET101** — interprocedural nondeterminism taint: a wall-clock read,
  unseeded rng draw, hash-order dependence, or ``id()``/``hash()``
  identity that reaches sim state, an exhibit result, or a cache key
  *through helper calls*. Resolution happens globally (summaries folded
  over the call graph in SCC order — see :mod:`.dataflow`); this class
  just formats its file's slice of the resolved findings.
* **LAYER001** — architecture layering against the declared DAG
  (:data:`~repro.lint.graph.LAYERS`): an import whose layer rank is
  *higher* than the importer's is an upward dependency and a finding.
* **RACE001** — module- or class-level mutable state written from two
  or more distinct sim-process generators without going through simcore
  synchronization (Resource/Store/Event). Under one worker this is a
  scheduling-order dependence; under the entity-array refactor
  (ROADMAP 1) it becomes a real data race.
* **LEAK001** — slab/resource discipline: a value acquired via
  ``*._acquire()``/``*.acquire()`` must be released, returned, or
  handed off on every exit path; a held name at a ``return`` (or at
  fall-off) means the slab entry leaks and reuse stops working.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .dataflow import KIND_LABELS
from .framework import Finding, ModuleSource, ProjectIndex, Rule, register
from .graph import _resolve_relative, layer_rank

__all__ = [
    "InterproceduralTaintRule",
    "LayeringRule",
    "SimRaceRule",
    "SlabLeakRule",
]


@register
class InterproceduralTaintRule(Rule):
    """DET101: nondeterminism that reaches a sink through calls."""

    id = "DET101"
    severity = "error"
    summary = ("interprocedural nondeterminism taint reaching sim state, "
               "an exhibit result, or a cache key")
    fix_hint = ("derive the value from sim.now / the seeded rng, or "
                "sort before iterating; the taint path runs through the "
                "named helpers")

    _SINK_LABELS = {
        "sim-state": "simulation state",
        "exhibit-result": "an exhibit result",
        "cache-key": "cache-key material",
    }

    def _reportable(self, resolved) -> List[str]:
        """DET001/DET002 already flag *direct* wall-clock and rng use at
        the source site, so those kinds only fire here when the taint
        travelled through at least one call. Order and identity taint
        has no per-file rule covering the conversion/sink forms, so it
        always fires."""
        kinds = []
        for kind in resolved.kinds:
            if kind in ("order", "ident") or resolved.through_call:
                kinds.append(kind)
        return kinds

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        for resolved in project.dataflow_findings.get(module.path, ()):
            kinds = self._reportable(resolved)
            if not kinds:
                continue
            labels = " + ".join(KIND_LABELS[k] for k in kinds)
            sink = self._SINK_LABELS.get(resolved.label, resolved.label)
            message = (f"{labels} taint reaches {sink} "
                       f"({resolved.detail})")
            if resolved.via:
                message += " via " + ", ".join(
                    f"{name}()" for name in resolved.via)
            yield Finding(rule=self.id, severity=self.severity,
                          path=module.path, line=resolved.line,
                          col=resolved.col, message=message,
                          fix_hint=self.fix_hint)


@register
class LayeringRule(Rule):
    """LAYER001: upward imports against the declared layer DAG."""

    id = "LAYER001"
    severity = "error"
    summary = ("import from a higher architecture layer (upward edge in "
               "the declared layer DAG)")
    fix_hint = ("invert the dependency: move the shared piece down a "
                "layer or register a hook from the higher layer "
                "(see repro.simcore.hooks)")

    def _sites(self, module: ModuleSource) -> List[Tuple[str, int]]:
        """(absolute imported name, line) pairs, one per imported
        symbol. For ``from X import a, b`` the per-alias full names are
        used (not the bare base) so importing a low-rank submodule
        through its higher-rank package root is not a false positive.
        """
        is_package = module.path.endswith("__init__.py")
        sites: List[Tuple[str, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    sites.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(module.module, is_package,
                                         node.level, node.module or "")
                if not base:
                    continue
                names = [a.name for a in node.names if a.name != "*"]
                if names:
                    sites.extend((f"{base}.{name}", node.lineno)
                                 for name in names)
                else:
                    sites.append((base, node.lineno))
        return sites

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        importer_rank = layer_rank(module.module)
        if importer_rank is None:
            return
        #: line -> (imported rank, shortest offending name)
        worst: Dict[int, Tuple[int, str]] = {}
        for name, line in self._sites(module):
            rank = layer_rank(name)
            if rank is None or rank <= importer_rank:
                continue
            current = worst.get(line)
            if current is None or rank > current[0] or \
                    (rank == current[0] and len(name) < len(current[1])):
                worst[line] = (rank, name)
        for line in sorted(worst):
            rank, name = worst[line]
            yield Finding(
                rule=self.id, severity=self.severity, path=module.path,
                line=line, col=1,
                message=(f"{module.module} (layer {importer_rank}) "
                         f"imports {name} (layer {rank}): upward "
                         f"dependency violates the declared layer DAG"),
                fix_hint=self.fix_hint)


@register
class SimRaceRule(Rule):
    """RACE001: shared mutable state contested by >= 2 sim processes."""

    id = "RACE001"
    severity = "error"
    summary = ("module/class-level mutable state written from two or "
               "more sim-process generators without simcore "
               "synchronization")
    fix_hint = ("route the shared state through a simcore Resource / "
                "Store / Event, or thread it through the process "
                "arguments so each writer owns its slice")

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        for record in project.race_findings.get(module.path, ()):
            others = ", ".join(record["others"])
            yield Finding(
                rule=self.id, severity=self.severity, path=module.path,
                line=record["line"], col=record["col"],
                message=(f"sim process {record['writer']} writes shared "
                         f"state {record['symbol']}, also written by "
                         f"{others}; write order depends on event "
                         f"interleaving"),
                fix_hint=self.fix_hint)


@register
class SlabLeakRule(Rule):
    """LEAK001: acquired slab/pool objects must escape every exit path."""

    id = "LEAK001"
    severity = "error"
    summary = ("value acquired via _acquire()/acquire() is not released, "
               "returned, or handed off on some exit path")
    fix_hint = ("release/schedule/return the acquired object on every "
                "path, or acquire it only where it is consumed")

    _ACQUIRE_ATTRS = frozenset({"_acquire", "acquire"})

    def _is_acquire_call(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._ACQUIRE_ATTRS)

    @staticmethod
    def _names_used(node: Optional[ast.AST]) -> Set[str]:
        used: Set[str] = set()
        if node is not None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and \
                        isinstance(sub.ctx, ast.Load):
                    used.add(sub.id)
        return used

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: ModuleSource,
                        fn) -> Iterable[Finding]:
        findings: List[Finding] = []
        #: held name -> (acquire line, acquire col, callee attr)
        Held = Dict[str, Tuple[int, int, str]]

        def leak(held: Held, name: str, node: ast.AST) -> None:
            line, col, attr = held[name]
            findings.append(Finding(
                rule=self.id, severity=self.severity, path=module.path,
                line=node.lineno, col=node.col_offset + 1,
                message=(f"{name!r} acquired via {attr}() at line "
                         f"{line} is not released, returned, or handed "
                         f"off on this exit path"),
                fix_hint=self.fix_hint))

        def consume(held: Held, node: Optional[ast.AST]) -> None:
            for name in self._names_used(node):
                held.pop(name, None)

        def walk(body, held: Held) -> Held:
            """Transfer function over one statement list; mutates and
            returns the held-set. Branches are merged pessimistically
            (held on any path stays held); loop bodies run once."""
            for statement in body:
                if isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                    continue
                if isinstance(statement, ast.Assign) and \
                        self._is_acquire_call(statement.value) and \
                        len(statement.targets) == 1 and \
                        isinstance(statement.targets[0], ast.Name):
                    consume(held, statement.value)
                    held[statement.targets[0].id] = (
                        statement.lineno, statement.col_offset + 1,
                        statement.value.func.attr)
                elif isinstance(statement, ast.Return):
                    consume(held, statement.value)
                    for name in sorted(held):
                        leak(held, name, statement)
                    held.clear()
                elif isinstance(statement, ast.If):
                    consume(held, statement.test)
                    branch_a = walk(statement.body, dict(held))
                    branch_b = walk(statement.orelse, dict(held))
                    held.clear()
                    held.update(branch_b)
                    held.update(branch_a)
                elif isinstance(statement, (ast.For, ast.AsyncFor)):
                    consume(held, statement.iter)
                    held.update(walk(statement.body, dict(held)))
                    walk(statement.orelse, held)
                elif isinstance(statement, ast.While):
                    consume(held, statement.test)
                    held.update(walk(statement.body, dict(held)))
                    walk(statement.orelse, held)
                elif isinstance(statement, ast.Try):
                    walk(statement.body, held)
                    for handler in statement.handlers:
                        walk(handler.body, held)
                    walk(statement.orelse, held)
                    walk(statement.finalbody, held)
                elif isinstance(statement, (ast.With, ast.AsyncWith)):
                    for item in statement.items:
                        consume(held, item.context_expr)
                    walk(statement.body, held)
                else:
                    # Any other statement: every Load of a held name is
                    # a hand-off (call argument, attribute store,
                    # release(), yield, ...).
                    consume(held, statement)
            return held

        remaining = walk(fn.body, {})
        if remaining:
            tail = fn.body[-1]
            for name in sorted(remaining):
                leak(remaining, name, tail)
        return findings
