"""SARIF 2.1.0 export for simlint findings.

GitHub code scanning ingests SARIF; ``python -m repro.lint --format
sarif`` renders one run with the full rule catalog in the driver
metadata, active findings as ``results``, and baselined findings as
suppressed results (so they stay visible in the scanning UI without
failing the check).
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .framework import Finding, Rule

__all__ = ["render_sarif", "to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")
_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": max(1, finding.col),
                },
            },
        }],
    }
    if finding.fix_hint:
        result["message"]["text"] += f" [fix: {finding.fix_hint}]"
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted in simlint baseline",
        }]
    return result


def to_sarif(findings: Sequence[Finding],
             baselined: Sequence[Finding] = (),
             rules: Sequence[Rule] = ()) -> dict:
    """The SARIF log object for one lint run."""
    rule_metadata = [{
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "help": {"text": rule.fix_hint or rule.summary},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")},
    } for rule in sorted(rules, key=lambda r: r.id)]
    results: List[dict] = [
        _result(finding, suppressed=False) for finding in findings]
    results.extend(
        _result(finding, suppressed=True) for finding in baselined)
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "informationUri": "https://example.invalid/simlint",
                "rules": rule_metadata,
            }},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def render_sarif(findings: Sequence[Finding],
                 baselined: Sequence[Finding] = (),
                 rules: Sequence[Rule] = ()) -> str:
    return json.dumps(to_sarif(findings, baselined, rules), indent=2,
                      sort_keys=True)
