"""Whole-program graphs for simlint v2: symbols, imports, calls, SCCs.

The per-file rules of PR 3 see one AST at a time; every bug class that
motivated v2 (a wall-clock read three helpers away from sim state, an
upward import, two sim processes racing on a module global) is a
*whole-program* property. This module builds the shared substrate those
rules run on:

* :func:`extract_facts` — one deterministic, purely syntactic pass per
  file producing a picklable :class:`ModuleFacts` record (declared
  functions/classes, raw import sites, module globals, taint templates
  from :mod:`.dataflow`). Facts depend only on the file's bytes and
  path, which is what makes the incremental cache (:mod:`.cache`) and
  the ``--jobs N`` fan-out sound.
* :class:`SymbolTable` — project-wide name resolution: local calls,
  aliased imports, ``self.``/``cls.`` methods (with a bounded walk up
  declared bases), and class constructors. Approximate but sound for
  this codebase's direct-call style: anything unresolvable is treated
  as an opaque call, never silently dropped.
* :class:`ProgramGraph` — the assembled import graph, call graph, and
  Tarjan SCC order (callees before callers) that
  :func:`.dataflow.resolve_summaries` folds function summaries over.

Everything here is deterministic: all tables are built in sorted order
and iterated sorted, so two runs — or ``--jobs 1`` vs ``--jobs 4`` —
produce byte-identical findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astutil import collect_aliases

__all__ = [
    "ClassDecl",
    "FunctionDecl",
    "LAYERS",
    "ModuleFacts",
    "ProgramGraph",
    "SymbolTable",
    "extract_facts",
    "layer_rank",
    "strongly_connected",
]

#: Bump when the fact schema or extraction logic changes: the
#: incremental cache keys fact entries by (content hash, this version).
FACTS_VERSION = 1

#: The declared architecture layer DAG, most-specific prefix wins.
#: Rank 0 is the foundation; a module may import only same-or-lower
#: ranks. The ``repro.obs`` instrumentation facade (telemetry counters,
#: profiler, ambient runtime state, causal tracer) sits at rank 1 — the
#: model layers call *into* it on the hot path by design — while the
#: package root (init/export wiring) stays at rank 2 with the fault
#: subsystem. ``repro.lint`` sits with the runtime layer because its
#: ``--jobs`` fan-out rides ``runtime.sweep_map``. The umbrella package
#: ``repro`` itself re-exports everything and is exempt (rank None).
LAYERS: Tuple[Tuple[str, int], ...] = (
    ("repro.simcore", 0),
    ("repro.core", 1),
    ("repro.mesh", 1),
    ("repro.netsim", 1),
    ("repro.crypto", 1),
    ("repro.kernel", 1),
    ("repro.k8s", 1),
    ("repro.workloads", 1),
    ("repro.obs.telemetry", 1),
    ("repro.obs.profiler", 1),
    ("repro.obs.runtime", 1),
    ("repro.obs.trace", 1),
    ("repro.resilience", 1),
    ("repro.obs", 2),
    ("repro.faults", 2),
    ("repro.fleet", 2),
    ("repro.runtime", 3),
    ("repro.experiments", 3),
    ("repro.lint", 3),
    ("repro.serve", 4),
)


def layer_rank(module: Optional[str]) -> Optional[int]:
    """Layer rank for a module, by most-specific declared prefix.

    ``None`` for modules outside the DAG (tests, benchmarks, the
    ``repro`` umbrella): they may import anything.
    """
    if not module:
        return None
    best: Optional[Tuple[int, int]] = None   # (prefix length, rank)
    for prefix, rank in LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), rank)
    return best[1] if best else None


@dataclass(frozen=True)
class FunctionDecl:
    """One function or method declaration."""

    qualname: str          # repro.core.gateway.Gateway.pick
    module: str            # repro.core.gateway
    name: str              # pick  (or Gateway.pick for the index)
    params: Tuple[str, ...]
    lineno: int
    kind: str              # function | method | staticmethod | classmethod
    class_qualname: str = ""   # empty for module-level functions


@dataclass(frozen=True)
class ClassDecl:
    """One class declaration with alias-resolved base names."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...]     # dotted, alias-resolved; may be foreign
    methods: Tuple[str, ...]


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the whole-program analysis needs from one file.

    Pure data (no AST nodes), so facts pickle across ``sweep_map``
    workers and serialize into the incremental cache.
    """

    module: str
    path: str
    is_package: bool
    imports: Tuple[Tuple[str, int], ...]   # (absolute dotted name, line)
    functions: Tuple[FunctionDecl, ...]
    classes: Tuple[ClassDecl, ...]
    module_globals: Tuple[str, ...]        # module-level assigned names
    global_ctors: Tuple[Tuple[str, str], ...]  # global -> ctor call name
    set_attributes: Tuple[str, ...]        # Set/FrozenSet-annotated attrs
    templates: Tuple = ()                  # dataflow.FunctionTemplate
    race_writes: Tuple = ()                # dataflow.RaceWrite


def _resolve_relative(module: str, is_package: bool, level: int,
                      stem: str) -> str:
    """Absolute dotted name for a ``from ...x import y`` statement."""
    if level == 0:
        return stem
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level:
        parts = parts[:len(parts) - level + 1]
    return ".".join(p for p in (".".join(parts), stem) if p)


def _import_sites(tree: ast.AST, module: str,
                  is_package: bool) -> List[Tuple[str, int]]:
    """Raw absolute import names with line numbers.

    ``from repro.core import gateway`` records both ``repro.core`` and
    ``repro.core.gateway``; the :class:`ProgramGraph` resolves each
    against the known-module set by longest prefix.
    """
    sites: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                sites.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, is_package, node.level,
                                     node.module or "")
            if base:
                sites.append((base, node.lineno))
            for alias in node.names:
                if alias.name != "*" and base:
                    sites.append((f"{base}.{alias.name}", node.lineno))
    return sites


_SET_CTORS = frozenset({"set", "frozenset"})


def _decl_kind(node: ast.AST) -> str:
    for decorator in getattr(node, "decorator_list", ()):
        name = decorator.id if isinstance(decorator, ast.Name) else \
            decorator.attr if isinstance(decorator, ast.Attribute) else None
        if name == "staticmethod":
            return "staticmethod"
        if name == "classmethod":
            return "classmethod"
    return "method"


def extract_facts(module_source) -> ModuleFacts:
    """The :class:`ModuleFacts` for one parsed ``ModuleSource``.

    Imports :mod:`.dataflow` lazily to keep the import graph acyclic
    (dataflow needs nothing from this module at import time).
    """
    from .dataflow import extract_templates

    module = module_source.module or ""
    tree = module_source.tree
    is_package = module_source.path.endswith("__init__.py")
    if tree is None:
        return ModuleFacts(module=module, path=module_source.path,
                           is_package=is_package, imports=(),
                           functions=(), classes=(), module_globals=(),
                           global_ctors=(), set_attributes=())

    functions: List[FunctionDecl] = []
    classes: List[ClassDecl] = []
    module_globals: List[str] = []
    global_ctors: List[Tuple[str, str]] = []
    aliases = module_source.aliases

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(FunctionDecl(
                qualname=f"{module}.{node.name}", module=module,
                name=node.name,
                params=tuple(a.arg for a in node.args.args),
                lineno=node.lineno, kind="function"))
        elif isinstance(node, ast.ClassDef):
            class_qualname = f"{module}.{node.name}"
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    functions.append(FunctionDecl(
                        qualname=f"{class_qualname}.{item.name}",
                        module=module, name=f"{node.name}.{item.name}",
                        params=tuple(a.arg for a in item.args.args),
                        lineno=item.lineno, kind=_decl_kind(item),
                        class_qualname=class_qualname))
            bases: List[str] = []
            for base in node.bases:
                parts: List[str] = []
                target = base
                while isinstance(target, ast.Attribute):
                    parts.append(target.attr)
                    target = target.value
                if isinstance(target, ast.Name):
                    parts.append(target.id)
                    dotted = ".".join(reversed(parts))
                    root, _, rest = dotted.partition(".")
                    origin = aliases.get(root)
                    if origin is not None:
                        dotted = f"{origin}.{rest}" if rest else origin
                    bases.append(dotted)
            classes.append(ClassDecl(
                qualname=class_qualname, module=module, name=node.name,
                bases=tuple(bases), methods=tuple(methods)))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            ctor = ""
            if isinstance(value, ast.Call):
                func = value.func
                ctor = func.id if isinstance(func, ast.Name) else \
                    func.attr if isinstance(func, ast.Attribute) else ""
            for target in targets:
                if isinstance(target, ast.Name):
                    module_globals.append(target.id)
                    if ctor:
                        global_ctors.append((target.id, ctor))

    set_attributes: List[str] = []
    from .framework import ProjectIndex
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and \
                ProjectIndex._is_set_annotation(node.annotation) and \
                isinstance(node.target, ast.Attribute):
            set_attributes.append(node.target.attr)

    templates, race_writes = extract_templates(module_source)
    return ModuleFacts(
        module=module, path=module_source.path, is_package=is_package,
        imports=tuple(_import_sites(tree, module, is_package)),
        functions=tuple(functions), classes=tuple(classes),
        module_globals=tuple(sorted(set(module_globals))),
        global_ctors=tuple(sorted(set(global_ctors))),
        set_attributes=tuple(sorted(set(set_attributes))),
        templates=templates, race_writes=race_writes)


class SymbolTable:
    """Project-wide name resolution over every module's declarations."""

    def __init__(self, facts: Sequence[ModuleFacts]):
        self.functions: Dict[str, FunctionDecl] = {}
        self.classes: Dict[str, ClassDecl] = {}
        #: (module, local dotted name) -> qualname, e.g.
        #: ("repro.core.gateway", "Gateway.pick") -> full qualname.
        self._local: Dict[Tuple[str, str], str] = {}
        for module_facts in sorted(facts, key=lambda f: f.module):
            for decl in module_facts.functions:
                self.functions[decl.qualname] = decl
                self._local[(decl.module, decl.name)] = decl.qualname
            for decl in module_facts.classes:
                self.classes[decl.qualname] = decl

    def _class_method(self, class_qualname: str, method: str,
                      depth: int = 0) -> Optional[str]:
        """Method lookup with a bounded walk up declared bases."""
        decl = self.classes.get(class_qualname)
        if decl is None or depth > 4:
            return None
        if method in decl.methods:
            return f"{class_qualname}.{method}"
        for base in decl.bases:
            candidates = [base]
            if "." not in base:
                candidates.append(f"{decl.module}.{base}")
            for candidate in candidates:
                if candidate in self.classes:
                    found = self._class_method(candidate, method,
                                               depth + 1)
                    if found:
                        return found
        return None

    def resolve(self, desc: Tuple[str, str], module: str,
                class_qualname: str = "") -> Optional[str]:
        """Qualname for a callee descriptor, or None if opaque.

        ``desc`` is ``("self", method)`` for ``self.x()``/``cls.x()``
        calls or ``("name", dotted)`` for everything else (already
        alias-resolved by the extractor). A resolved class yields its
        ``__init__`` when one is declared, else the class qualname
        itself (callers treat that as an argument-passthrough
        constructor).
        """
        kind, name = desc
        if kind == "self":
            if class_qualname:
                return self._class_method(class_qualname, name)
            return None
        # Bare or dotted name, alias-resolved already.
        local = self._local.get((module, name))
        if local is not None:
            return local
        if name in self.classes:
            init = self._class_method(name, "__init__")
            return init or name
        if name in self.functions:
            return name
        head, _, method = name.rpartition(".")
        if head:
            # mod.Class.method / Class.method-in-this-module forms.
            for class_name in (head, f"{module}.{head.rpartition('.')[2]}"
                               if "." not in head else head):
                if class_name in self.classes:
                    found = self._class_method(class_name, method)
                    if found:
                        return found
            local = self._local.get((module, name.rpartition(".")[2]))
        return None


def strongly_connected(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan SCCs, emitted callees-before-callers (reverse topological
    over the condensation), deterministically ordered. Iterative, so
    deep call chains cannot blow the recursion limit."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(edges.get(node, ()))
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in edges:
                    continue
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


class ProgramGraph:
    """The assembled whole-program view over a set of module facts."""

    def __init__(self, facts: Sequence[ModuleFacts]):
        self.facts: List[ModuleFacts] = sorted(facts,
                                               key=lambda f: f.module)
        self.by_module: Dict[str, ModuleFacts] = {
            f.module: f for f in self.facts}
        self.symbols = SymbolTable(self.facts)
        #: Every Set/FrozenSet-annotated attribute name in the program.
        self.set_attributes: Set[str] = set()
        for module_facts in self.facts:
            self.set_attributes.update(module_facts.set_attributes)
        self.imports = self._resolve_imports()
        self.call_edges = self._call_edges()
        self.sccs = strongly_connected(self.call_edges)

    # -- imports -------------------------------------------------------------
    def _resolve_imports(self) -> Dict[str, List[Tuple[str, int]]]:
        """module -> sorted (imported known module, first line)."""
        known = set(self.by_module)
        resolved: Dict[str, List[Tuple[str, int]]] = {}
        for module_facts in self.facts:
            seen: Dict[str, int] = {}
            for raw, lineno in module_facts.imports:
                parts = raw.split(".")
                while parts:
                    candidate = ".".join(parts)
                    if candidate in known:
                        if candidate != module_facts.module:
                            previous = seen.get(candidate)
                            if previous is None or lineno < previous:
                                seen[candidate] = lineno
                        break
                    parts = parts[:-1]
            resolved[module_facts.module] = sorted(seen.items())
        return resolved

    # -- calls ---------------------------------------------------------------
    def _call_edges(self) -> Dict[str, Set[str]]:
        edges: Dict[str, Set[str]] = {
            decl: set() for decl in self.symbols.functions}
        for module_facts in self.facts:
            for template in module_facts.templates:
                callees = edges.setdefault(template.qualname, set())
                for desc in template.callee_descs():
                    target = self.symbols.resolve(
                        desc, template.module, template.class_qualname)
                    if target is not None and \
                            target in self.symbols.functions:
                        callees.add(target)
        return edges

    def resolve_callee(self, desc: Tuple[str, str], module: str,
                       class_qualname: str = "") -> Optional[str]:
        return self.symbols.resolve(desc, module, class_qualname)
