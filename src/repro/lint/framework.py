"""simlint rule framework: findings, suppressions, rule registry.

A *rule* is a small AST pass with an id (``DET001``), a severity, and a
fix hint; it yields :class:`Finding`s against one :class:`ModuleSource`.
Rules register themselves via the :func:`register` decorator and the
runner instantiates every registered rule unless ``--select``/
``--ignore`` narrows the set.

Suppression is per line::

    started = time.perf_counter()  # simlint: ignore[DET001] CLI timing

matches the finding's line; a comment-only line directly above the
flagged line works too (for statements that wrap). A bare
``# simlint: ignore`` suppresses every rule on that line, and a
``# simlint: skip-file`` anywhere in the file skips it entirely.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Type

from .astutil import collect_aliases, module_name_for_path

__all__ = [
    "Finding",
    "ModuleSource",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> str:
        """Identity used for ``--baseline`` matching."""
        return f"{self.rule}::{self.path}::{self.line}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "fix_hint": self.fix_hint}

    def format_text(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")
        if self.fix_hint:
            text += f" [fix: {self.fix_hint}]"
        return text


class ModuleSource:
    """One parsed file plus everything rules need to inspect it."""

    def __init__(self, path: str, source: Optional[bytes] = None,
                 module: Optional[str] = None):
        self.path = path
        if source is None:
            with open(path, "rb") as handle:
                source = handle.read()
        self.source = source
        self.text = source.decode("utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.module = module if module is not None else \
            module_name_for_path(path)
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=path)
            self.syntax_error: Optional[str] = None
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = f"{exc.msg} (line {exc.lineno})"
        self.aliases: Dict[str, str] = (
            collect_aliases(self.tree) if self.tree is not None else {})
        self.skip_file = bool(_SKIP_FILE_RE.search(self.text))
        #: line number -> None (suppress all) or the suppressed rule ids.
        self.suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None or not rules.strip():
                self.suppressions[lineno] = None
            else:
                self.suppressions[lineno] = frozenset(
                    r.strip() for r in rules.split(",") if r.strip())

    def _line_suppresses(self, lineno: int, rule_id: str) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule_id in rules

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Suppressed on its own line, or by a comment-only line above."""
        if self._line_suppresses(lineno, rule_id):
            return True
        above = lineno - 1
        if above >= 1 and above <= len(self.lines) and \
                _COMMENT_ONLY_RE.match(self.lines[above - 1]):
            return self._line_suppresses(above, rule_id)
        return False


class ProjectIndex:
    """Cross-file facts shared by every rule in one lint run.

    v1 carried only ``set_attributes`` (Set/FrozenSet-annotated
    attribute names, for DET003's cross-module set detection). v2 also
    carries the whole-program context the interprocedural rules run on:
    the :class:`~repro.lint.graph.ProgramGraph`, the resolved taint
    summaries, and the pre-resolved DET101/RACE001 findings grouped by
    file path (resolution is global; the per-file rule classes just
    format their slice).

    A bare ``ProjectIndex()`` has no program (``program is None``) —
    per-file rules still work, program rules yield nothing.
    """

    _SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet",
                        "typing.Set", "typing.FrozenSet",
                        "t.Set", "t.FrozenSet"}

    def __init__(self) -> None:
        self.set_attributes: Set[str] = set()
        self.program = None            # graph.ProgramGraph | None
        self.summaries: Dict[str, object] = {}
        #: path -> [dataflow.ResolvedFinding], sorted.
        self.dataflow_findings: Dict[str, List[object]] = {}
        #: path -> [contested-write dicts] from dataflow.race_groups.
        self.race_findings: Dict[str, List[dict]] = {}

    @classmethod
    def _is_set_annotation(cls, annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        name_parts: List[str] = []
        while isinstance(annotation, ast.Attribute):
            name_parts.append(annotation.attr)
            annotation = annotation.value
        if isinstance(annotation, ast.Name):
            name_parts.append(annotation.id)
        name = ".".join(reversed(name_parts))
        return name in cls._SET_ANNOTATIONS

    @classmethod
    def from_facts(cls, facts: Iterable[object]) -> "ProjectIndex":
        """Assemble the whole-program context from per-file facts.

        ``facts`` are :class:`~repro.lint.graph.ModuleFacts` — possibly
        loaded from the incremental cache rather than freshly
        extracted; everything global (symbol table, SCC fixpoint,
        DET101/RACE001 resolution) happens here, in the parent process.
        """
        from .dataflow import race_groups, resolve_summaries
        from .graph import ProgramGraph

        index = cls()
        index.program = ProgramGraph(list(facts))
        index.set_attributes = set(index.program.set_attributes)
        index.summaries, resolved = resolve_summaries(index.program)
        for finding in resolved:
            index.dataflow_findings.setdefault(finding.path,
                                               []).append(finding)
        for path in index.dataflow_findings:
            index.dataflow_findings[path].sort(
                key=lambda f: (f.line, f.col, f.label, f.detail))
        index.race_findings = race_groups(index.program)
        return index

    @classmethod
    def build(cls, modules: Iterable["ModuleSource"]) -> "ProjectIndex":
        from .graph import extract_facts
        return cls.from_facts(extract_facts(module) for module in modules)


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    id: str = ""
    severity: str = "error"
    summary: str = ""
    fix_hint: str = ""

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str,
                fix_hint: Optional[str] = None) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=module.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message,
                       fix_hint=self.fix_hint if fix_hint is None
                       else fix_hint)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalog."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]()
