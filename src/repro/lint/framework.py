"""simlint rule framework: findings, suppressions, rule registry.

A *rule* is a small AST pass with an id (``DET001``), a severity, and a
fix hint; it yields :class:`Finding`s against one :class:`ModuleSource`.
Rules register themselves via the :func:`register` decorator and the
runner instantiates every registered rule unless ``--select``/
``--ignore`` narrows the set.

Suppression is per line::

    started = time.perf_counter()  # simlint: ignore[DET001] CLI timing

matches the finding's line; a comment-only line directly above the
flagged line works too (for statements that wrap). A bare
``# simlint: ignore`` suppresses every rule on that line, and a
``# simlint: skip-file`` anywhere in the file skips it entirely.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Type

from .astutil import collect_aliases, module_name_for_path

__all__ = [
    "Finding",
    "ModuleSource",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> str:
        """Identity used for ``--baseline`` matching."""
        return f"{self.rule}::{self.path}::{self.line}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "fix_hint": self.fix_hint}

    def format_text(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")
        if self.fix_hint:
            text += f" [fix: {self.fix_hint}]"
        return text


class ModuleSource:
    """One parsed file plus everything rules need to inspect it."""

    def __init__(self, path: str, source: Optional[bytes] = None,
                 module: Optional[str] = None):
        self.path = path
        if source is None:
            with open(path, "rb") as handle:
                source = handle.read()
        self.source = source
        self.text = source.decode("utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.module = module if module is not None else \
            module_name_for_path(path)
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=path)
            self.syntax_error: Optional[str] = None
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = f"{exc.msg} (line {exc.lineno})"
        self.aliases: Dict[str, str] = (
            collect_aliases(self.tree) if self.tree is not None else {})
        self.skip_file = bool(_SKIP_FILE_RE.search(self.text))
        #: line number -> None (suppress all) or the suppressed rule ids.
        self.suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None or not rules.strip():
                self.suppressions[lineno] = None
            else:
                self.suppressions[lineno] = frozenset(
                    r.strip() for r in rules.split(",") if r.strip())

    def _line_suppresses(self, lineno: int, rule_id: str) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule_id in rules

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Suppressed on its own line, or by a comment-only line above."""
        if self._line_suppresses(lineno, rule_id):
            return True
        above = lineno - 1
        if above >= 1 and above <= len(self.lines) and \
                _COMMENT_ONLY_RE.match(self.lines[above - 1]):
            return self._line_suppresses(above, rule_id)
        return False


class ProjectIndex:
    """Cross-file facts shared by every rule in one lint run.

    Currently: the names of attributes annotated as ``Set``/``FrozenSet``
    anywhere in the linted files, so DET003 can flag iteration over
    ``backend.configured_services`` from a *different* module than the
    one declaring ``self.configured_services: Set[int]``.
    """

    _SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet",
                        "typing.Set", "typing.FrozenSet",
                        "t.Set", "t.FrozenSet"}

    def __init__(self) -> None:
        self.set_attributes: Set[str] = set()

    @classmethod
    def _is_set_annotation(cls, annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        name_parts: List[str] = []
        while isinstance(annotation, ast.Attribute):
            name_parts.append(annotation.attr)
            annotation = annotation.value
        if isinstance(annotation, ast.Name):
            name_parts.append(annotation.id)
        name = ".".join(reversed(name_parts))
        return name in cls._SET_ANNOTATIONS

    @classmethod
    def build(cls, modules: Iterable["ModuleSource"]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.AnnAssign):
                    continue
                if not cls._is_set_annotation(node.annotation):
                    continue
                target = node.target
                if isinstance(target, ast.Attribute):
                    index.set_attributes.add(target.attr)
        return index


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    id: str = ""
    severity: str = "error"
    summary: str = ""
    fix_hint: str = ""

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str,
                fix_hint: Optional[str] = None) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=module.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message,
                       fix_hint=self.fix_hint if fix_hint is None
                       else fix_hint)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalog."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]()
