"""The simlint rule catalog.

Each rule targets a failure mode this repository has actually hit (or
is structurally exposed to):

* **DET001** — wall-clock reads outside the observability layer make
  results differ run to run.
* **DET002** — module-level ``random`` functions (or an unseeded
  ``random.Random()``) bypass the simulator-owned seeded rng.
* **DET003** — iterating sets / ``dict.popitem`` / unsorted
  ``os.listdir`` yields platform- and hash-seed-dependent order, which
  breaks byte-identical sweeps under ``--jobs N``.
* **PICKLE001** — closures, lambdas, and bound methods passed to the
  sweep executor cannot cross a process boundary (the fig17 bug class).
* **SIM001** — sim-process generators must not block the worker
  (``time.sleep``, real I/O) or return before they can ever yield.
* **CACHE001** — dynamic imports inside ``repro.experiments`` are
  invisible to the cache's static import-closure walker, making cache
  keys unsound.
* **SLAB001** — recycling an event onto a slab free list without
  resetting its ``callbacks`` lets the next ``timeout()`` hand a model
  an object that still fires its previous life's callbacks (the PR 5
  injector-idempotence bug class, applied to the simcore slab).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .astutil import dynamic_import_lines, resolve_call_name
from .framework import Finding, ModuleSource, ProjectIndex, Rule, register

__all__ = [
    "BlockingSimProcessRule",
    "DynamicImportRule",
    "SlabRecycleRule",
    "UnorderedIterationRule",
    "UnpicklableSweepTargetRule",
    "UnseededRandomRule",
    "WallClockRule",
]


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


@register
class WallClockRule(Rule):
    """DET001: wall-clock reads outside the allowlisted modules."""

    id = "DET001"
    severity = "error"
    summary = ("wall-clock read (time.time/perf_counter/datetime.now) "
               "outside allowlisted modules")
    fix_hint = ("use sim.now for model time; wall-clock timing belongs in "
                "repro.obs, or suppress with a reason")

    #: Modules whose whole point is measuring wall time: the
    #: observability layer, and the service layer (queue deadlines,
    #: Retry-After arithmetic, and job wall-clock accounting all live
    #: in real time, outside any simulation).
    default_allowlist: Tuple[str, ...] = ("repro.obs", "repro.serve")

    #: Carve-outs *inside* allowlisted packages that must still obey
    #: sim-time discipline. Causal tracing records simulated timestamps
    #: and samples from a derived seeded stream — a wall-clock read
    #: there would silently break byte-identical --jobs sweeps.
    #: ``repro.simcore.agenda`` is pinned here explicitly (it is not
    #: under any allowlist prefix today): the agenda engines order the
    #: entire simulation, so they must stay wall-clock-free even if
    #: ``repro.simcore`` ever earns an allowlist entry.
    default_denylist: Tuple[str, ...] = ("repro.obs.trace",
                                         "repro.simcore.agenda")

    _CALLS = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def __init__(self, allowlist: Optional[Tuple[str, ...]] = None,
                 denylist: Optional[Tuple[str, ...]] = None):
        self.allowlist = self.default_allowlist if allowlist is None \
            else allowlist
        self.denylist = self.default_denylist if denylist is None \
            else denylist

    @staticmethod
    def _matches(module: str, prefixes: Tuple[str, ...]) -> bool:
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in prefixes)

    def _allowlisted(self, module: Optional[str]) -> bool:
        if not module:
            return False
        if self._matches(module, self.denylist):
            return False
        return self._matches(module, self.allowlist)

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None or self._allowlisted(module.module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            if name in self._CALLS:
                yield self.finding(
                    module, node,
                    f"{name}() reads the wall clock; simulation results "
                    f"must depend only on sim.now and the seeded rng")


@register
class UnseededRandomRule(Rule):
    """DET002: global-state or unseeded randomness."""

    id = "DET002"
    severity = "error"
    summary = ("module-level random.* call or unseeded random.Random() "
               "instead of a threaded seeded rng")
    fix_hint = ("draw from the simulator-owned rng (sim.rng / "
                "repro.simcore.rng helpers) or random.Random(seed)")

    #: Functions on the module-level (hidden global) Random instance.
    _MODULE_FNS = frozenset({
        "seed", "random", "uniform", "randint", "randrange", "choice",
        "choices", "shuffle", "sample", "betavariate", "binomialvariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "paretovariate", "triangular", "vonmisesvariate",
        "weibullvariate", "getrandbits", "randbytes",
    })

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, module.aliases)
            if name is None:
                continue
            if name == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "random.Random() without a seed draws entropy "
                        "from the OS; pass an explicit seed")
            elif name == "random.SystemRandom":
                yield self.finding(
                    module, node,
                    "random.SystemRandom is OS entropy and can never be "
                    "seeded; use random.Random(seed)")
            else:
                prefix, _, attr = name.rpartition(".")
                if prefix == "random" and attr in self._MODULE_FNS:
                    yield self.finding(
                        module, node,
                        f"random.{attr}() uses the shared module-level "
                        f"rng; seed state leaks across call sites and "
                        f"processes")


@register
class UnorderedIterationRule(Rule):
    """DET003: iteration order that depends on hashing or the OS."""

    id = "DET003"
    severity = "error"
    summary = ("iteration over a set / dict.popitem / unsorted os.listdir "
               "— unordered under --jobs N")
    fix_hint = "sort the iterable (sorted(...)) or use an ordered container"

    _SET_BUILTINS = frozenset({"set", "frozenset"})
    _LISTING_CALLS = frozenset({"os.listdir", "os.scandir"})

    #: Builtins whose result cannot depend on iteration order: a
    #: comprehension/genexp over a set fed *directly* into one of these
    #: is deterministic and must not be flagged.
    _ORDER_INSENSITIVE = frozenset({"len", "any", "all", "sum", "min",
                                    "max", "sorted", "set", "frozenset"})

    def _order_insensitive_context(self, node: ast.AST,
                                   parents: Dict[ast.AST, ast.AST]) -> bool:
        """True when the comprehension's consumer is order-insensitive.

        A set comprehension is order-insensitive by construction (its
        result is itself unordered); any comprehension or generator
        expression is when it is a direct argument to one of the
        :data:`_ORDER_INSENSITIVE` builtins (``any(f(x) for x in s)``).
        """
        if isinstance(node, ast.SetComp):
            return True
        parent = parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in self._ORDER_INSENSITIVE
                and any(node is arg for arg in parent.args))

    def _local_set_names(self, tree: ast.AST) -> Set[str]:
        """Names assigned a set-typed expression anywhere in the file.

        Deliberately flow-insensitive: if *any* assignment binds the
        name to a set, iterating that name anywhere is flagged. (A name
        that is a set in one function is almost never a list in
        another; suppress the rare false positive.)
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                if ProjectIndex._is_set_annotation(node.annotation):
                    value = ast.Set(elts=[])  # annotation says set
                else:
                    value = node.value
            if value is None:
                continue
            if self._is_set_expr(value, frozenset(), ProjectIndex()):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _is_set_expr(self, node: ast.AST, local_sets: frozenset,
                     project: ProjectIndex) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in self._SET_BUILTINS:
            return True
        if isinstance(node, ast.Name) and node.id in local_sets:
            return True
        if isinstance(node, ast.Attribute) and \
                node.attr in project.set_attributes:
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor,
                                     ast.Sub)):
            # set algebra: a & b, a | b — set if either side clearly is
            return (self._is_set_expr(node.left, local_sets, project) or
                    self._is_set_expr(node.right, local_sets, project))
        return False

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        tree = module.tree
        parents = _parent_map(tree)
        local_sets = frozenset(self._local_set_names(tree))

        def set_iteration(iter_node: ast.AST) -> bool:
            return self._is_set_expr(iter_node, local_sets, project)

        for node in ast.walk(tree):
            if isinstance(node, ast.For) and set_iteration(node.iter):
                yield self.finding(
                    module, node.iter,
                    "for-loop over a set: iteration order is "
                    "hash-dependent and varies across processes")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if self._order_insensitive_context(node, parents):
                    continue
                for comp in node.generators:
                    if set_iteration(comp.iter):
                        yield self.finding(
                            module, comp.iter,
                            "comprehension over a set: iteration order "
                            "is hash-dependent")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and \
                        node.func.id == "iter" and len(node.args) == 1 \
                        and set_iteration(node.args[0]):
                    yield self.finding(
                        module, node,
                        "iter() over a set yields a hash-ordered element")
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "popitem":
                    yield self.finding(
                        module, node,
                        "dict.popitem() removes an arbitrary entry; pop a "
                        "specific key or use an ordered strategy")
                else:
                    name = resolve_call_name(node.func, module.aliases)
                    if name in self._LISTING_CALLS:
                        parent = parents.get(node)
                        sorted_wrapped = (
                            isinstance(parent, ast.Call) and
                            isinstance(parent.func, ast.Name) and
                            parent.func.id == "sorted")
                        if not sorted_wrapped:
                            yield self.finding(
                                module, node,
                                f"{name}() order is filesystem-dependent; "
                                f"wrap in sorted(...)")


@register
class UnpicklableSweepTargetRule(Rule):
    """PICKLE001: sweep targets that cannot cross a process boundary."""

    id = "PICKLE001"
    severity = "error"
    summary = ("lambda / nested function / bound method passed to "
               "sweep_map, sweep_imap, or run_exhibit")
    fix_hint = ("hoist the point function to module level and pass its "
                "inputs through the point spec (the fig17 fix)")

    _SINKS = frozenset({"sweep_map", "sweep_imap", "run_exhibit"})

    def _sink_name(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name) and func.id in self._SINKS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in self._SINKS:
            return func.attr
        return None

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        # Names of functions defined *inside* another function: passing
        # one to a pool sink means pickling a closure cell.
        nested_defs: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in _walk_own(node):
                    if isinstance(inner, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        nested_defs.add(inner.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_name(node.func)
            if sink is None or not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    module, target,
                    f"lambda passed to {sink}() cannot be pickled to a "
                    f"pool worker")
            elif isinstance(target, ast.Name) and target.id in nested_defs:
                yield self.finding(
                    module, target,
                    f"nested function {target.id!r} passed to {sink}() "
                    f"closes over local state and cannot be pickled")
            elif isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id in ("self", "cls"):
                yield self.finding(
                    module, target,
                    f"bound method {target.value.id}.{target.attr} passed "
                    f"to {sink}() drags the whole instance through pickle")


@register
class BlockingSimProcessRule(Rule):
    """SIM001: sim-process generators that block or never suspend."""

    id = "SIM001"
    severity = "error"
    summary = ("sim-process generator blocks the worker (time.sleep / "
               "real I/O) or unconditionally returns before first yield")
    fix_hint = ("model delays with sim.timeout(); do I/O outside the "
                "simulation; keep at least one reachable yield")

    _BLOCKING_CALLS = frozenset({
        "time.sleep", "input", "socket.create_connection",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen", "os.system",
        "urllib.request.urlopen",
    })
    _SIM_ATTRS = frozenset({"timeout", "process", "event", "work",
                            "all_of", "any_of", "wait"})

    def _is_sim_generator(self, fn: ast.AST) -> bool:
        """A generator whose yields interact with a simulator.

        Heuristic: some ``yield``/``yield from`` value mentions a name
        or attribute called ``sim``, or calls one of the simulator verbs
        (``timeout``/``process``/``work``/...).
        """
        for node in _walk_own(fn):
            if not isinstance(node, (ast.Yield, ast.YieldFrom)):
                continue
            value = node.value
            if value is None:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Name) and sub.id == "sim":
                    return True
                if isinstance(sub, ast.Attribute) and (
                        sub.attr == "sim" or
                        sub.attr in self._SIM_ATTRS):
                    return True
        return False

    @staticmethod
    def _contains_yield(node: ast.AST) -> bool:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        for sub in _walk_own(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None:
            return
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom))
                       for n in _walk_own(fn)):
                continue
            if not self._is_sim_generator(fn):
                continue
            # Blocking calls anywhere in the generator body.
            for node in _walk_own(fn):
                if isinstance(node, ast.Call):
                    name = resolve_call_name(node.func, module.aliases)
                    if name in self._BLOCKING_CALLS:
                        yield self.finding(
                            module, node,
                            f"{name}() inside sim process {fn.name!r} "
                            f"blocks the event loop for real wall time")
            # An *unconditional* top-level return-with-value before the
            # first yield: the generator finishes on its very first
            # resume, so every yield below is dead code. (Conditional
            # early returns are fine — Process delivers StopIteration
            # values correctly.)
            for statement in fn.body:
                if self._contains_yield(statement):
                    break
                if isinstance(statement, ast.Return) and \
                        statement.value is not None:
                    yield self.finding(
                        module, statement,
                        f"sim process {fn.name!r} unconditionally returns "
                        f"before its first yield; the yields below are "
                        f"unreachable")
                    break


@register
class DynamicImportRule(Rule):
    """CACHE001: dynamic imports the cache's closure walker cannot see."""

    id = "CACHE001"
    severity = "error"
    summary = ("dynamic import (importlib / __import__) in a "
               "repro.experiments module — cache keys become unsound")
    fix_hint = ("use a static import so the result cache's AST closure "
                "walker can fingerprint the dependency")

    #: Packages whose modules feed the result cache's import closure.
    #: ``repro.faults`` is included because chaos-aware exhibits import
    #: it — a dynamic import there would hide fault-subsystem changes
    #: from every chaos exhibit's cache key. ``repro.obs.trace`` is in
    #: for the same reason: the trace_breakdown exhibit's findings are
    #: a function of the tracer's sampling and analytics code.
    #: ``repro.simcore`` is in because *every* exhibit's cache entry is
    #: a function of the simulation kernel (agenda engines included):
    #: a dynamic import there would hide engine changes from every
    #: cache key in the repository. ``repro.fleet`` is in because the
    #: fleet_* exhibit family's results are a function of the fluid
    #: tier's physics. ``repro.resilience`` is in because installed
    #: policies (breaker trips, retry jitter, shed decisions) steer
    #: every protected exhibit's output the same way the fault plans
    #: do.
    default_packages: Tuple[str, ...] = ("repro.experiments",
                                         "repro.faults",
                                         "repro.fleet",
                                         "repro.obs.trace",
                                         "repro.resilience",
                                         "repro.simcore")

    def __init__(self, packages: Optional[Tuple[str, ...]] = None):
        self.packages = self.default_packages if packages is None \
            else packages

    def _applies(self, module: Optional[str]) -> bool:
        if not module:
            return False
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.packages)

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None or not self._applies(module.module):
            return
        for lineno in dynamic_import_lines(module.tree):
            yield Finding(
                rule=self.id, severity=self.severity, path=module.path,
                line=lineno, col=1,
                message=("dynamic import is invisible to the result "
                         "cache's static import-closure walker; the "
                         "exhibit's cache key will not change when the "
                         "imported module does"),
                fix_hint=self.fix_hint)


@register
class SlabRecycleRule(Rule):
    """SLAB001: slab-recycled objects must have ``callbacks`` reset."""

    id = "SLAB001"
    severity = "error"
    summary = ("object recycled onto a slab free list without its "
               "callbacks being reset in the same function")
    fix_hint = ("assign a cleared callbacks list to the object before "
                "the slab append so the next allocation cannot fire a "
                "previous life's callbacks")

    #: Packages that maintain slab free lists. The simulator recycles
    #: drained Timeout events through ``Simulator._timeout_slab``; an
    #: append that skips the ``callbacks`` reset hands the *next*
    #: ``timeout()`` caller an event that still fires its previous
    #: life's callbacks — the PR 5 injector-idempotence bug class.
    default_packages: Tuple[str, ...] = ("repro.simcore",)

    def __init__(self, packages: Optional[Tuple[str, ...]] = None):
        self.packages = self.default_packages if packages is None \
            else packages

    def _applies(self, module: Optional[str]) -> bool:
        if not module:
            return False
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.packages)

    @staticmethod
    def _is_slab(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id.endswith("slab")
        if isinstance(node, ast.Attribute):
            return node.attr.endswith("slab")
        return False

    @staticmethod
    def _resets_callbacks(scope: ast.AST, name: str) -> bool:
        """True if ``scope`` assigns ``<name>.callbacks`` anywhere."""
        def hits(target: ast.expr) -> bool:
            if isinstance(target, (ast.Tuple, ast.List)):
                return any(hits(element) for element in target.elts)
            return (isinstance(target, ast.Attribute)
                    and target.attr == "callbacks"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name)

        for node in _walk_own(scope):
            if isinstance(node, ast.Assign) and \
                    any(hits(target) for target in node.targets):
                return True
        return False

    def check(self, module: ModuleSource,
              project: ProjectIndex) -> Iterable[Finding]:
        if module.tree is None or not self._applies(module.module):
            return
        parents = _parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and self._is_slab(node.func.value)
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)):
                continue
            recycled = node.args[0].id
            scope: Optional[ast.AST] = node
            while scope is not None and not isinstance(
                    scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = parents.get(scope)
            if scope is None:
                scope = module.tree
            if self._resets_callbacks(scope, recycled):
                continue
            yield self.finding(
                module, node,
                f"{recycled!r} is recycled onto a slab free list but "
                f"{recycled}.callbacks is never reset in this "
                f"function; the next allocation from the slab will "
                f"fire the previous life's callbacks")
