"""Nagle-style small-message aggregation (RFC 896).

The kernel TCP stack enables Nagle by default, coalescing small writes
into MSS-sized segments. The paper found that eBPF sockmap redirection
bypasses the kernel stack and therefore loses this aggregation, blowing
up the context-switch frequency for small messages (Fig 22) — their fix
was to re-implement Nagle in eBPF before redirection (§4.1.2). Both the
kernel's aggregation and the eBPF re-implementation use this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["NagleConfig", "NagleBuffer", "batch_factor"]


@dataclass(frozen=True)
class NagleConfig:
    """Aggregation parameters."""

    mss_bytes: int = 1460
    #: Upper bound on how long a message may sit waiting for company.
    #: Real Nagle is ACK-clocked (one in-flight small segment at a time),
    #: which with delayed ACKs gives an effective ~1 ms window; a fixed
    #: delay is the standard fluid approximation.
    flush_delay_s: float = 1e-3


def batch_factor(message_bytes: int, message_rate_per_s: float,
                 config: NagleConfig) -> float:
    """Average number of messages coalesced per flush.

    Aggregation stops at whichever bound binds first: the MSS (size) or
    the flush delay (time). A factor of 1.0 means no aggregation (large
    messages, or rates too low to accumulate anything within the delay).
    """
    if message_bytes <= 0:
        raise ValueError("message size must be positive")
    if message_rate_per_s < 0:
        raise ValueError("message rate must be non-negative")
    by_size = max(1.0, config.mss_bytes / message_bytes)
    by_time = 1.0 + message_rate_per_s * config.flush_delay_s
    return max(1.0, min(by_size, by_time))


class NagleBuffer:
    """Event-level aggregation buffer for per-message simulations.

    Messages are appended; :meth:`offer` reports whether the buffer
    should flush now (full) — the time-based flush is driven by the
    caller's timer process calling :meth:`flush`.
    """

    def __init__(self, config: NagleConfig):
        self.config = config
        self._pending: List[int] = []
        self._pending_bytes = 0
        self.flushes = 0
        self.messages_flushed = 0

    @property
    def pending_messages(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def offer(self, message_bytes: int) -> bool:
        """Add a message; returns True when the buffer is flush-worthy."""
        if message_bytes < 0:
            raise ValueError("negative message size")
        self._pending.append(message_bytes)
        self._pending_bytes += message_bytes
        return self._pending_bytes >= self.config.mss_bytes

    def flush(self) -> List[int]:
        """Drain the buffer, returning the coalesced message sizes."""
        drained, self._pending = self._pending, []
        self._pending_bytes = 0
        if drained:
            self.flushes += 1
            self.messages_flushed += len(drained)
        return drained

    @property
    def average_batch(self) -> float:
        """Observed mean messages per flush (1.0 before any flush)."""
        if self.flushes == 0:
            return 1.0
        return self.messages_flushed / self.flushes
