"""Host kernel cost constants and the path-cost accounting record.

Absolute values are calibrated (see DESIGN.md §4); what the experiments
rely on is the *structure*: iptables redirection pays extra protocol-
stack passes and context switches per message, eBPF pays per-message
context switches only, and Nagle aggregation divides the per-message
costs by the batch factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCosts", "PathCost"]


@dataclass(frozen=True)
class KernelCosts:
    """Per-operation CPU costs of the simulated host kernel (seconds)."""

    #: One traversal of the kernel protocol stack (TCP/IP processing).
    stack_pass_s: float = 15e-6
    #: One context switch between user tasks (or user/kernel transition
    #: heavy enough to count, e.g. a socket wakeup).
    context_switch_s: float = 4e-6
    #: Copying one byte between buffers (~20 GB/s memcpy).
    copy_per_byte_s: float = 0.05e-9
    #: Fixed cost of a socket send/recv syscall pair.
    socket_op_s: float = 2e-6

    def copy_cost(self, nbytes: int) -> float:
        return nbytes * self.copy_per_byte_s


@dataclass
class PathCost:
    """Accumulated cost of moving messages along a redirection path."""

    cpu_s: float = 0.0
    latency_s: float = 0.0
    context_switches: int = 0
    stack_passes: int = 0
    copies: int = 0

    def __add__(self, other: "PathCost") -> "PathCost":
        return PathCost(
            cpu_s=self.cpu_s + other.cpu_s,
            latency_s=self.latency_s + other.latency_s,
            context_switches=self.context_switches + other.context_switches,
            stack_passes=self.stack_passes + other.stack_passes,
            copies=self.copies + other.copies,
        )

    def scaled(self, factor: float) -> "PathCost":
        """Cost multiplied by a rate/count (counts are rounded)."""
        return PathCost(
            cpu_s=self.cpu_s * factor,
            latency_s=self.latency_s * factor,
            context_switches=round(self.context_switches * factor),
            stack_passes=round(self.stack_passes * factor),
            copies=round(self.copies * factor),
        )
