"""Host dataplane cost models: kernel stack, iptables, eBPF, Nagle.

These models price the traffic-redirection step of each mesh
architecture. They are analytic (per-message costs and aggregation
factors) so they can be used both standalone (Figs 21/22/29/30) and
inside the per-request DES paths (Figs 10–13).
"""

from .costs import KernelCosts, PathCost
from .nagle import NagleBuffer, NagleConfig, batch_factor
from .redirection import EbpfRedirect, IptablesRedirect

__all__ = [
    "EbpfRedirect",
    "IptablesRedirect",
    "KernelCosts",
    "NagleBuffer",
    "NagleConfig",
    "PathCost",
    "batch_factor",
]
