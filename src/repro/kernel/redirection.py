"""Traffic redirection into the local proxy: iptables vs eBPF.

Fig 21 (Appendix): with iptables, every app↔proxy hand-off makes two
extra passes through the kernel protocol stack plus the associated
context switches and memory copies, on *both* the client and server
side. eBPF sockmap redirection moves payloads socket-to-socket, paying
only a copy and a wakeup per (possibly aggregated) message.

Both redirectors expose ``message_cost`` — the CPU and latency cost of
moving one application message into the proxy — and an aggregate
``path_cost`` for a message stream, which applies Nagle where enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.runtime import get_telemetry
from .costs import KernelCosts, PathCost
from .nagle import NagleConfig, batch_factor

__all__ = ["IptablesRedirect", "EbpfRedirect"]


@dataclass(frozen=True)
class IptablesRedirect:
    """Legacy REDIRECT-based interception (Istio's default)."""

    costs: KernelCosts = KernelCosts()
    nagle: NagleConfig = NagleConfig()
    #: Extra protocol-stack traversals per redirected message
    #: (out through the stack, back in to the proxy socket).
    extra_stack_passes: int = 2
    extra_context_switches: int = 2

    def message_cost(self, message_bytes: int) -> PathCost:
        """Cost of redirecting one (possibly coalesced) message."""
        kc = self.costs
        cpu = (self.extra_stack_passes * kc.stack_pass_s
               + self.extra_context_switches * kc.context_switch_s
               + kc.copy_cost(message_bytes)
               + kc.socket_op_s)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("kernel_redirect_messages_total",
                          redirector="iptables")
            telemetry.inc("kernel_stack_passes_total",
                          amount=self.extra_stack_passes,
                          redirector="iptables")
        return PathCost(cpu_s=cpu, latency_s=cpu,
                        context_switches=self.extra_context_switches,
                        stack_passes=self.extra_stack_passes, copies=1)

    def path_cost(self, message_bytes: int, messages_per_s: float,
                  duration_s: float = 1.0) -> PathCost:
        """Aggregate redirection cost of a message stream.

        The kernel stack has Nagle enabled by default, so small messages
        are coalesced before they hit the redirect path.
        """
        factor = batch_factor(message_bytes, messages_per_s, self.nagle)
        flushes = messages_per_s * duration_s / factor
        per_flush = self.message_cost(int(message_bytes * factor))
        return per_flush.scaled(flushes)


@dataclass(frozen=True)
class EbpfRedirect:
    """Sockmap socket-to-socket redirection (Canal's on-node proxy).

    ``nagle_enabled=False`` reproduces the paper's bug: kernel bypass
    loses aggregation, so every small message costs a context switch.
    Canal's fix sets it to True (Nagle re-implemented in eBPF).
    """

    costs: KernelCosts = KernelCosts()
    nagle: NagleConfig = NagleConfig()
    nagle_enabled: bool = True

    def message_cost(self, message_bytes: int) -> PathCost:
        kc = self.costs
        cpu = kc.context_switch_s + kc.copy_cost(message_bytes)
        get_telemetry().inc("kernel_redirect_messages_total",
                            redirector="ebpf")
        return PathCost(cpu_s=cpu, latency_s=cpu,
                        context_switches=1, stack_passes=0, copies=1)

    def path_cost(self, message_bytes: int, messages_per_s: float,
                  duration_s: float = 1.0) -> PathCost:
        if self.nagle_enabled:
            factor = batch_factor(message_bytes, messages_per_s, self.nagle)
        else:
            factor = 1.0
        flushes = messages_per_s * duration_s / factor
        per_flush = self.message_cost(int(message_bytes * factor))
        return per_flush.scaled(flushes)
