"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, run reports.

Three machine-readable views of one run:

* :func:`chrome_trace` — a ``chrome://tracing`` / Perfetto-loadable JSON
  object combining simulated-time spans (from
  :class:`repro.core.observability.TraceCollector` traces, pid
  ``"sim-traces"``) and wall-clock profiler timelines (one pid per
  profiled simulator);
* :func:`prometheus_text` — a text-format snapshot of a
  :class:`~repro.obs.telemetry.Telemetry` registry;
* :func:`run_report` / :func:`write_run_artifacts` — a JSON run report
  bundling an experiment's tables/series/findings with the telemetry
  snapshot and profiler attribution, written next to the other two.

Everything is duck-typed (spans need ``source``/``layer``/``start_s``/
``end_s``; results need ``tables``/``series``/``findings``/``notes``) so
this module imports neither ``repro.core`` nor ``repro.experiments``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "run_report",
    "traces_json",
    "write_run_artifacts",
]


# -- Chrome trace_event JSON -------------------------------------------------
def _span_events(traces: Iterable) -> List[dict]:
    """Complete ("ph": "X") events from assembled request traces.

    Simulated seconds map to microseconds of trace time; each span
    source (onnode@w1, gateway/r1, ...) becomes its own thread row.
    Causal spans additionally carry span/parent ids and annotations so
    Perfetto's args panel shows the tree.
    """
    events: List[dict] = []
    tids: Dict[str, int] = {}
    for trace in traces:
        for span in trace.spans:
            tid = tids.setdefault(span.source, len(tids) + 1)
            args = {"trace_id": trace.trace_id, "pod": span.pod,
                    "bytes_out": span.bytes_out,
                    "bytes_in": span.bytes_in}
            span_id = getattr(span, "span_id", 0)
            if span_id:
                args["span_id"] = span_id
                args["parent_id"] = getattr(span, "parent_id", 0)
            for key, value in getattr(span, "annotations", ()):
                args[f"a.{key}"] = value
            name = getattr(span, "name", "")
            events.append({
                "name": name or f"{span.layer}:{span.service or span.source}",
                "cat": span.layer,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": (span.end_s - span.start_s) * 1e6,
                "pid": "sim-traces",
                "tid": tid,
                "args": args,
            })
    return events


def _fault_events(fault_marks: Iterable) -> List[dict]:
    """Instant ("ph": "i") events for fault injections/recoveries.

    Rendered as global vertical markers on the trace timeline so the
    fault lines up visually with the spans it degraded.
    """
    return [{
        "name": f"{mark['action']}:{mark['kind']}",
        "cat": "fault",
        "ph": "i",
        "s": "g",
        "ts": mark["t"] * 1e6,
        "pid": "sim-traces",
        "tid": 0,
        "args": {"target": mark.get("target", ""),
                 "detail": mark.get("detail", "")},
    } for mark in fault_marks]


def _profiler_events(profilers: Iterable) -> List[dict]:
    """Wall-clock timeline events, one pid per profiled simulator."""
    events: List[dict] = []
    for index, profiler in enumerate(profilers, start=1):
        pid = f"sim-{index}-wall"
        tids: Dict[str, int] = {}
        for start_s, dur_s, key in profiler.timeline:
            tid = tids.setdefault(key, len(tids) + 1)
            events.append({
                "name": key,
                "cat": "profiler",
                "ph": "X",
                "ts": start_s * 1e6,
                "dur": dur_s * 1e6,
                "pid": pid,
                "tid": tid,
            })
        for row in profiler.summary():
            events.append({
                "name": "attribution",
                "cat": "profiler",
                "ph": "C",
                "ts": 0,
                "pid": pid,
                "tid": tids.get(row["key"], 0),
                "args": {row["key"]: row["wall_s"] * 1e3},
            })
    return events


def chrome_trace(traces: Iterable = (), profilers: Iterable = (),
                 fault_marks: Iterable = ()) -> dict:
    """A ``chrome://tracing``-loadable JSON object for one run."""
    return {
        "displayTimeUnit": "ms",
        "traceEvents": (_span_events(traces) + _profiler_events(profilers)
                        + _fault_events(fault_marks)),
    }


def _span_dict(span) -> dict:
    """JSON-friendly view of one span (legacy flat or causal)."""
    record = {
        "trace_id": span.trace_id, "source": span.source,
        "layer": span.layer, "start_s": span.start_s, "end_s": span.end_s,
        "pod": span.pod, "service": span.service,
        "bytes_out": span.bytes_out, "bytes_in": span.bytes_in,
    }
    span_id = getattr(span, "span_id", 0)
    if span_id:
        record["span_id"] = span_id
        record["parent_id"] = getattr(span, "parent_id", 0)
        record["name"] = getattr(span, "name", "")
    annotations = dict(getattr(span, "annotations", ()))
    if annotations:
        record["annotations"] = annotations
    return record


def traces_json(traces: Iterable = (), fault_marks: Iterable = ()) -> dict:
    """The raw-trace JSON export: spans grouped per trace + fault marks.

    This is the machine-readable companion of :func:`chrome_trace` — the
    view ``repro.serve``'s ``GET /jobs/{id}/trace`` returns and the
    ``*.traces.json`` artifact stores.
    """
    return {
        "traces": [{
            "trace_id": trace.trace_id,
            "start_s": trace.start_s,
            "end_s": trace.end_s,
            "coverage": trace.coverage,
            "layers": trace.layers(),
            "spans": [_span_dict(span) for span in trace.spans],
        } for trace in traces],
        "fault_marks": [dict(mark) for mark in fault_marks],
    }


# -- Prometheus text format --------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def _label_str(labels: Sequence, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(str(value))}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(telemetry) -> str:
    """Text-format exposition of every family in ``telemetry``."""
    lines: List[str] = []
    for family in telemetry.families():
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child in family:
            if family.kind == "histogram":
                cumulative = child.cumulative_counts()
                edges = [str(edge) for edge in child.buckets] + ["+Inf"]
                for edge, count in zip(edges, cumulative):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(child.labels, {'le': edge})} {count}")
                lines.append(f"{family.name}_sum{_label_str(child.labels)} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{_label_str(child.labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{family.name}{_label_str(child.labels)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON run report ---------------------------------------------------------
def _result_dict(result) -> dict:
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "tables": [{"title": table.title, "columns": list(table.columns),
                    "rows": [list(row) for row in table.rows]}
                   for table in result.tables],
        "series": [{"name": series.name, "x_label": series.x_label,
                    "y_label": series.y_label,
                    "points": [list(point) for point in series.points]}
                   for series in result.series],
        "findings": dict(result.findings),
        "notes": list(result.notes),
    }


def run_report(result=None, telemetry=None, profilers: Iterable = (),
               meta: Optional[dict] = None,
               faults: Iterable = ()) -> dict:
    """The JSON run report: exhibit + metrics + profiler attribution.

    ``faults`` is the merged fault timeline (entries with ``t`` /
    ``action`` / ``kind`` / ``target`` / ``detail``, as recorded by
    ``repro.faults.FaultEngine``); it only appears in the report when
    the run actually injected something.
    """
    report: dict = {"meta": dict(meta or {})}
    if result is not None:
        report["result"] = _result_dict(result)
    if telemetry is not None:
        report["telemetry"] = telemetry.snapshot()
    faults = [dict(entry) for entry in faults]
    if faults:
        report["faults"] = faults
    report["profilers"] = [
        {"steps": profiler.steps,
         "sim_total_s": profiler.sim_total_s(),
         "wall_total_s": profiler.wall_total_s(),
         "dropped_timeline_events": profiler.dropped_timeline_events,
         "attribution": profiler.summary()}
        for profiler in profilers
    ]
    return report


def write_run_artifacts(directory: str, exp_id: str, result=None,
                        telemetry=None, profilers: Iterable = (),
                        traces: Iterable = (),
                        meta: Optional[dict] = None,
                        faults: Iterable = (),
                        fault_marks: Iterable = ()) -> Dict[str, str]:
    """Write the artifacts for one run; returns name -> path.

    ``traces`` additionally produces a raw ``*.traces.json`` export next
    to the Chrome ``*.trace.json`` (the latter always exists because it
    also carries profiler timelines).
    """
    os.makedirs(directory, exist_ok=True)
    profilers = list(profilers)
    traces = list(traces)
    fault_marks = list(fault_marks)
    paths = {
        "report": os.path.join(directory, f"{exp_id}.report.json"),
        "metrics": os.path.join(directory, f"{exp_id}.prom"),
        "trace": os.path.join(directory, f"{exp_id}.trace.json"),
    }
    with open(paths["report"], "w") as handle:
        json.dump(run_report(result, telemetry, profilers, meta,
                             faults=faults), handle,
                  indent=2, default=str)
    with open(paths["metrics"], "w") as handle:
        handle.write(prometheus_text(telemetry)
                     if telemetry is not None else "")
    with open(paths["trace"], "w") as handle:
        json.dump(chrome_trace(traces, profilers, fault_marks), handle)
    if traces:
        paths["traces"] = os.path.join(directory, f"{exp_id}.traces.json")
        with open(paths["traces"], "w") as handle:
            json.dump(traces_json(traces, fault_marks), handle, indent=2)
    return paths
