"""Unified telemetry: metrics registry, simulator profiler, exporters.

The observability backbone of the reproduction (§4.1.1, Appendix A of
the paper argue a sidecar-free mesh can keep sidecar-grade telemetry;
this package is where our own run telemetry lives):

* :class:`Telemetry` — labeled counters/gauges/histograms that every
  mesh layer emits into (disabled, and nearly free, by default);
* :class:`SimProfiler` — opt-in ``Simulator.step`` attribution of
  simulated and wall-clock time per process/event type;
* exporters — Chrome ``trace_event`` JSON, Prometheus text snapshots,
  and JSON run reports (``python -m repro.experiments --report <dir>``).
"""

from .export import (
    chrome_trace,
    prometheus_text,
    run_report,
    write_run_artifacts,
)
from .profiler import SimProfiler
from .runtime import (
    disable_profiling,
    enable_profiling,
    get_telemetry,
    new_profiler,
    profiling_enabled,
    set_telemetry,
    take_profilers,
    use_telemetry,
)
from .telemetry import DEFAULT_BUCKETS, MetricFamily, Telemetry

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "SimProfiler",
    "Telemetry",
    "chrome_trace",
    "disable_profiling",
    "enable_profiling",
    "get_telemetry",
    "new_profiler",
    "profiling_enabled",
    "prometheus_text",
    "run_report",
    "set_telemetry",
    "take_profilers",
    "use_telemetry",
    "write_run_artifacts",
]
