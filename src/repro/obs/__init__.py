"""Unified telemetry: metrics registry, simulator profiler, exporters.

The observability backbone of the reproduction (§4.1.1, Appendix A of
the paper argue a sidecar-free mesh can keep sidecar-grade telemetry;
this package is where our own run telemetry lives):

* :class:`Telemetry` — labeled counters/gauges/histograms that every
  mesh layer emits into (disabled, and nearly free, by default);
* :class:`SimProfiler` — opt-in ``Simulator.step`` attribution of
  simulated and wall-clock time per process/event type;
* :mod:`repro.obs.trace` — deterministic, disabled-by-default causal
  tracing: :class:`Span` trees assembled by a ring-buffered
  :class:`TraceCollector`, head-sampled by an ambient :class:`Tracer`;
* exporters — Chrome ``trace_event`` JSON, Prometheus text snapshots,
  and JSON run reports (``python -m repro.experiments --report <dir>``).
"""

from .export import (
    chrome_trace,
    prometheus_text,
    run_report,
    traces_json,
    write_run_artifacts,
)
from .profiler import SimProfiler
from .runtime import (
    disable_profiling,
    enable_profiling,
    get_telemetry,
    new_profiler,
    profiling_enabled,
    set_telemetry,
    take_profilers,
    use_telemetry,
)
from .telemetry import DEFAULT_BUCKETS, MetricFamily, Telemetry
from .trace import (
    Span,
    Trace,
    TraceCollector,
    Tracer,
    critical_path,
    fault_detection_latency,
    get_tracer,
    layer_attribution,
    register_collector,
    set_tracer,
    span_from_dict,
    span_to_dict,
    take_collectors,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "SimProfiler",
    "Span",
    "Telemetry",
    "Trace",
    "TraceCollector",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "disable_profiling",
    "enable_profiling",
    "fault_detection_latency",
    "get_telemetry",
    "get_tracer",
    "layer_attribution",
    "new_profiler",
    "profiling_enabled",
    "prometheus_text",
    "register_collector",
    "run_report",
    "set_telemetry",
    "set_tracer",
    "span_from_dict",
    "span_to_dict",
    "take_collectors",
    "take_profilers",
    "traces_json",
    "use_telemetry",
    "use_tracer",
    "write_run_artifacts",
]
