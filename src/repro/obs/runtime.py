"""Ambient telemetry/profiling state shared by every layer.

Instrumentation points in the mesh stack cannot thread a registry
through every constructor (proxies, gateways, and control planes are
built deep inside experiments), so they emit into the *ambient*
:class:`~repro.obs.telemetry.Telemetry` held here. The default registry
is **disabled** — emissions cost one early-returning method call — and
runs that want measurements install an enabled one::

    with use_telemetry(Telemetry(enabled=True)) as t:
        run("fig11")
    print(t.total("mesh_requests_total"))

Profiling works the same way: while enabled, every freshly constructed
:class:`~repro.simcore.Simulator` gets its own
:class:`~repro.obs.profiler.SimProfiler`, all of which are collected
here for the report exporters to drain.

The simulator does **not** import this module (the layer DAG forbids
an upward simcore → obs edge); instead this module registers
:func:`new_profiler` into ``repro.simcore.hooks`` at import time, and
``Simulator.__init__`` calls through that hook.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from ..simcore.hooks import set_profiler_factory
from .profiler import SimProfiler
from .telemetry import Telemetry

__all__ = [
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "new_profiler",
    "take_profilers",
]

_telemetry = Telemetry(enabled=False)
_profiling: bool = False
_profiler_kwargs: dict = {}
_profilers: List[SimProfiler] = []


# -- telemetry --------------------------------------------------------------
def get_telemetry() -> Telemetry:
    """The ambient registry every instrumentation point emits into."""
    return _telemetry


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as ambient; returns the previous registry."""
    global _telemetry
    previous, _telemetry = _telemetry, telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Scope an (enabled, by default) registry over a ``with`` block."""
    installed = telemetry if telemetry is not None else Telemetry(enabled=True)
    previous = set_telemetry(installed)
    try:
        yield installed
    finally:
        set_telemetry(previous)


# -- profiling --------------------------------------------------------------
def enable_profiling(keep_timeline: bool = False, **kwargs) -> None:
    """Attach a profiler to every Simulator constructed from now on."""
    global _profiling, _profiler_kwargs
    _profiling = True
    _profiler_kwargs = dict(keep_timeline=keep_timeline, **kwargs)


def disable_profiling() -> None:
    global _profiling
    _profiling = False


def profiling_enabled() -> bool:
    return _profiling


def new_profiler() -> Optional[SimProfiler]:
    """Called by ``Simulator.__init__``; ``None`` unless profiling is on."""
    if not _profiling:
        return None
    profiler = SimProfiler(**_profiler_kwargs)
    _profilers.append(profiler)
    return profiler


def take_profilers() -> List[SimProfiler]:
    """Drain (return and forget) every profiler created while enabled."""
    global _profilers
    drained, _profilers = _profilers, []
    return drained


# Dependency inversion: the kernel calls simcore.hooks.new_profiler();
# importing the observability layer is what arms it.
set_profiler_factory(new_profiler)
