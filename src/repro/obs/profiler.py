"""Simulator profiler: who burns the event loop, in sim- and wall-time.

The Canal reproduction's cost is dominated by the DES event loop, so the
first question before any performance work is *which subsystem the loop
spends its time driving*. :class:`SimProfiler` hooks
:meth:`repro.simcore.Simulator.step` (opt-in; a ``None`` check is the
only cost when off) and attributes, per event pop:

* **simulated time** — the clock advance the popped event caused, and
* **wall-clock time** — ``perf_counter`` around each callback,

to a *key*: the owning process's (normalized) name when the callback
belongs to a :class:`~repro.simcore.Process`, otherwise the event's
type. Process names like ``cfg-sidecar-pod-17`` are normalized by
stripping trailing digits so ten thousand pods fold into one row.

This module must not import :mod:`repro.simcore` (the simulator imports
us); ownership is detected by duck typing on ``callback.__self__``.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["SimProfiler"]

#: Trailing instance numbering (``-17``, ``@3``, ``.2``) on process names.
_TRAILING_ID = re.compile(r"[-@./]?\d+$")


class SimProfiler:
    """Accumulates per-key event counts, simulated time, and wall time."""

    def __init__(self, keep_timeline: bool = False,
                 max_timeline_events: int = 200_000,
                 max_keys: int = 512):
        self.keep_timeline = keep_timeline
        self.max_timeline_events = max_timeline_events
        self.max_keys = max_keys
        #: key -> [event count, simulated seconds, wall seconds]
        self.records: Dict[str, List[float]] = {}
        #: (wall offset s, wall duration s, key) — only when keep_timeline.
        self.timeline: List[Tuple[float, float, str]] = []
        self.steps = 0
        self.dropped_timeline_events = 0
        self._origin = time.perf_counter()

    # -- the Simulator.step hook -------------------------------------------
    def record_step(self, sim, when: float, event) -> None:
        """Advance ``sim`` through one popped ``event``, attributing time.

        Mirrors the un-profiled body of ``Simulator.step`` (clock
        advance, callback handoff) with timing wrapped around each
        callback. The caller still owns the failed-event raise.
        """
        advance = when - sim.now
        sim.now = when
        self.steps += 1
        callbacks, event.callbacks = event.callbacks, None
        if not callbacks:
            self._add(type(event).__name__, advance, 0.0, None)
            return
        for callback in callbacks:
            start = time.perf_counter()
            callback(event)
            wall = time.perf_counter() - start
            self._add(self._key(callback, event), advance, wall, start)
            advance = 0.0  # the clock advance belongs to the first callback

    def record_call(self, sim, when: float, call, payload) -> None:
        """Advance ``sim`` through one direct-call agenda entry.

        Direct calls (process bootstraps, late callbacks, interrupts —
        see ``simcore.events``) carry a bare callable instead of an
        Event; timing is attributed exactly like a callback would be.
        """
        advance = when - sim.now
        sim.now = when
        self.steps += 1
        start = time.perf_counter()
        call(payload)
        wall = time.perf_counter() - start
        self._add(self._key(call, payload), advance, wall, start)

    def _key(self, callback, event) -> str:
        owner = getattr(callback, "__self__", None)
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            return "process:" + (_TRAILING_ID.sub("", name) or name)
        return type(event).__name__.lstrip("_")

    def _add(self, key: str, sim_s: float, wall_s: float,
             wall_start: Optional[float]) -> None:
        record = self.records.get(key)
        if record is None:
            if len(self.records) >= self.max_keys:
                key = "(other)"
                record = self.records.get(key)
            if record is None:
                record = self.records[key] = [0, 0.0, 0.0]
        record[0] += 1
        record[1] += sim_s
        record[2] += wall_s
        if self.keep_timeline and wall_start is not None:
            if len(self.timeline) < self.max_timeline_events:
                self.timeline.append(
                    (wall_start - self._origin, wall_s, key))
            else:
                self.dropped_timeline_events += 1

    # -- reporting ----------------------------------------------------------
    def wall_total_s(self) -> float:
        return sum(record[2] for record in self.records.values())

    def sim_total_s(self) -> float:
        return sum(record[1] for record in self.records.values())

    def summary(self) -> List[Dict[str, object]]:
        """Per-key attribution rows, hottest wall-clock first."""
        rows = [{"key": key, "events": int(record[0]),
                 "sim_s": record[1], "wall_s": record[2]}
                for key, record in self.records.items()]
        rows.sort(key=lambda row: row["wall_s"], reverse=True)
        return rows

    def formatted(self, top: int = 15) -> str:
        lines = [f"{'events':>8}  {'sim s':>10}  {'wall ms':>9}  key"]
        for row in self.summary()[:top]:
            lines.append(f"{row['events']:>8}  {row['sim_s']:>10.4f}  "
                         f"{row['wall_s'] * 1e3:>9.2f}  {row['key']}")
        return "\n".join(lines)
