"""Deterministic causal tracing: spans, traces, sampling, analytics.

§4.1.1's functional-equivalence argument says a sidecar-free mesh can
still instrument "critical points in the traffic path". This module is
that backbone: every layer of the reproduction (gateway L7 routing,
on-node L4 segments, app execution, TLS handshakes, control-plane
pushes, fault injections) emits :class:`Span` records that assemble
into causal :class:`Trace` trees.

Design rules, in order of importance:

* **Disabled by default.** The ambient tracer is ``None`` until a run
  installs one (:func:`use_tracer`); the hot-path cost while disabled
  is one module-global read and a ``None`` check.
* **Deterministic.** Head-based sampling draws from a *dedicated*
  ``random.Random`` derived from the run's seed — never from the live
  ``sim.rng`` — so toggling tracing cannot perturb simulation results,
  and trace sets are byte-identical at any ``--jobs`` level (sweeps
  parallelize whole simulations, so per-sim tracer state never races).
* **Bounded.** The collector is a ring buffer: beyond ``max_traces``
  assembled traces the oldest is evicted, while aggregate statistics
  (per-pod bytes, coverage counts) are preserved.
* **Import-light.** Nothing here imports simcore or mesh code — the
  simulator's own observability hooks sit below this module.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Trace",
    "TraceCollector",
    "TraceHandle",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "register_collector",
    "take_collectors",
    "critical_path",
    "layer_attribution",
    "fault_detection_latency",
    "span_to_dict",
    "span_from_dict",
]

#: Default ring-buffer capacity of a collector (assembled traces kept).
DEFAULT_MAX_TRACES = 4096

#: The reserved span id of a trace's root span. Span id 0 means "flat"
#: (a legacy span recorded outside any causal tree); parent id 0 means
#: "no parent".
ROOT_SPAN_ID = 1


@dataclass(frozen=True)
class Span:
    """One instrumented segment of a request's path.

    The first nine fields are the original flat span model; ``span_id``
    / ``parent_id`` / ``name`` / ``annotations`` add causality. Legacy
    producers that only fill the flat fields still work everywhere.
    """

    trace_id: int
    source: str            # entity: "onnode@worker1", "gateway/replica-3"
    layer: str             # "l4" | "l7" | "app" | "tls" | "controlplane" | ...
    start_s: float
    end_s: float
    pod: str = ""
    service: str = ""
    bytes_out: int = 0
    bytes_in: int = 0
    span_id: int = 0
    parent_id: int = 0
    name: str = ""
    #: Typed key/value annotations, sorted for frozen hashability.
    annotations: Tuple[Tuple[str, str], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def annotation(self, key: str, default: Optional[str] = None
                   ) -> Optional[str]:
        for name, value in self.annotations:
            if name == key:
                return value
        return default


def _freeze_annotations(annotations: Dict[str, object]
                        ) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value))
                        for key, value in annotations.items()))


@dataclass
class Trace:
    """All spans of one request, ordered by start time.

    Every derived property is defined (as zero / ``"none"``) for an
    empty span list — a sampled-out or evicted trace must never crash
    the analytics that iterate over collectors.
    """

    trace_id: int
    spans: List[Span] = field(default_factory=list)

    @property
    def start_s(self) -> float:
        if not self.spans:
            return 0.0
        return min(span.start_s for span in self.spans)

    @property
    def end_s(self) -> float:
        if not self.spans:
            return 0.0
        return max(span.end_s for span in self.spans)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def layers(self) -> List[str]:
        return sorted({span.layer for span in self.spans})

    @property
    def coverage(self) -> str:
        """"full" when both node-side L4 and gateway L7 views exist."""
        has_l4 = any(span.layer == "l4" for span in self.spans)
        has_l7 = any(span.layer == "l7" for span in self.spans)
        if has_l4 and has_l7:
            return "full"
        if has_l7:
            return "partial"
        return "none"

    def root(self) -> Optional[Span]:
        """The causal root span, or ``None`` for flat/empty traces."""
        roots = [span for span in self.spans
                 if span.span_id and span.parent_id == 0]
        if not roots:
            return None
        return min(roots, key=lambda span: (span.start_s, span.span_id))

    def span(self, span_id: int) -> Optional[Span]:
        for candidate in self.spans:
            if candidate.span_id == span_id:
                return candidate
        return None

    def children(self, span_id: int) -> List[Span]:
        return sorted((span for span in self.spans
                       if span.parent_id == span_id and span.span_id),
                      key=lambda span: (span.start_s, span.span_id))

    def depth(self, span: Span) -> int:
        """Ancestor count via ``parent_id`` (root = 0, flat spans = 0)."""
        depth, current = 0, span
        while current is not None and current.parent_id:
            current = self.span(current.parent_id)
            if current is None:
                break
            depth += 1
        return depth

    def critical_path_gap_s(self) -> float:
        """Unattributed time: end-to-end minus instrumented coverage.

        Large gaps mean a fault can't be pinpointed — exactly the §3.2
        Issue #1 worry about losing node-side collection. Spans overlap
        (the gateway L7 span can enclose node L4 spans), so coverage is
        the *union* of span intervals, not the sum of durations.
        """
        if not self.spans:
            return 0.0
        intervals = sorted((span.start_s, span.end_s) for span in self.spans)
        covered = 0.0
        current_start, current_end = intervals[0]
        for start, end in intervals[1:]:
            if start > current_end:
                covered += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        covered += current_end - current_start
        # The union lies within [start_s, end_s]; the clamp only guards
        # floating-point residue.
        return max(0.0, self.duration_s - covered)


# -- trace analytics ---------------------------------------------------------
def critical_path(trace: Trace) -> List[Tuple[float, float, str, str]]:
    """Critical-path decomposition: ``(start_s, end_s, layer, source)``
    segments covering the trace end to end.

    A sequential request's critical path is its own timeline; each
    elementary interval is attributed to the *deepest* covering span
    (ties: the shortest, then latest-allocated — the most specific
    view), or ``("unattributed", "")`` where no span covers it.
    """
    spans = [span for span in trace.spans if span.end_s > span.start_s]
    if not spans:
        return []
    boundaries = sorted({t for span in spans
                         for t in (span.start_s, span.end_s)})
    segments: List[Tuple[float, float, str, str]] = []
    for left, right in zip(boundaries, boundaries[1:]):
        covering = [span for span in spans
                    if span.start_s <= left and span.end_s >= right]
        if covering:
            best = max(covering,
                       key=lambda span: (trace.depth(span),
                                         -span.duration_s, span.span_id))
            layer, source = best.layer, best.source
        else:
            layer, source = "unattributed", ""
        if segments and segments[-1][2] == layer and segments[-1][3] == source \
                and segments[-1][1] == left:
            previous = segments.pop()
            segments.append((previous[0], right, layer, source))
        else:
            segments.append((left, right, layer, source))
    return segments


def layer_attribution(trace: Trace) -> Dict[str, float]:
    """Per-layer exclusive latency over the trace's end-to-end window.

    Sums the critical-path segments by layer, so enclosing spans (root,
    gateway L7 around replica execution) only account for the time not
    claimed by a deeper span.
    """
    attribution: Dict[str, float] = {}
    for start, end, layer, _source in critical_path(trace):
        attribution[layer] = attribution.get(layer, 0.0) + (end - start)
    return attribution


def _default_degraded(trace: Trace) -> bool:
    root = trace.root()
    if root is None:
        return False
    status = root.annotation("status")
    return status is not None and status not in ("200", "ok")


def fault_detection_latency(traces: Sequence[Trace],
                            fault_marks: Sequence[Dict[str, object]],
                            degraded=None) -> List[Dict[str, object]]:
    """Per injection: when did the first degraded trace surface it?

    ``degraded`` is a predicate over :class:`Trace` (default: root span
    status annotation is neither ``200`` nor ``ok``). Detection happens
    when a degraded trace *completes* at or after the injection time,
    so the latency includes the in-flight request's tail. Entries with
    no detection carry ``detected_at``/``latency_s`` of ``None``.
    """
    degraded = degraded or _default_degraded
    completed = sorted(traces, key=lambda trace: (trace.end_s,
                                                  trace.trace_id))
    report: List[Dict[str, object]] = []
    for mark in fault_marks:
        if mark.get("action") != "inject":
            continue
        injected_at = float(mark.get("t", 0.0))
        hit = next((trace for trace in completed
                    if trace.end_s >= injected_at and degraded(trace)), None)
        report.append({
            "kind": mark.get("kind", ""),
            "target": mark.get("target", ""),
            "t": injected_at,
            "detected_at": None if hit is None else hit.end_s,
            "latency_s": None if hit is None else hit.end_s - injected_at,
            "trace_id": None if hit is None else hit.trace_id,
        })
    return report


# -- serialization (picklable sweep transport) -------------------------------
def span_to_dict(span: Span) -> Dict[str, object]:
    """A plain-dict view of one span (JSON- and pickle-friendly)."""
    return {
        "trace_id": span.trace_id, "source": span.source,
        "layer": span.layer, "start_s": span.start_s, "end_s": span.end_s,
        "pod": span.pod, "service": span.service,
        "bytes_out": span.bytes_out, "bytes_in": span.bytes_in,
        "span_id": span.span_id, "parent_id": span.parent_id,
        "name": span.name,
        "annotations": [list(pair) for pair in span.annotations],
    }


def span_from_dict(data: Dict[str, object]) -> Span:
    return Span(
        trace_id=int(data["trace_id"]), source=str(data["source"]),
        layer=str(data["layer"]), start_s=float(data["start_s"]),
        end_s=float(data["end_s"]), pod=str(data.get("pod", "")),
        service=str(data.get("service", "")),
        bytes_out=int(data.get("bytes_out", 0)),
        bytes_in=int(data.get("bytes_in", 0)),
        span_id=int(data.get("span_id", 0)),
        parent_id=int(data.get("parent_id", 0)),
        name=str(data.get("name", "")),
        annotations=tuple((str(key), str(value)) for key, value
                          in data.get("annotations", ())),
    )


class TraceCollector:
    """Receives spans from every layer and assembles bounded traces.

    A ring buffer over assembled traces: recording a span for a new
    trace id beyond ``max_traces`` evicts the oldest trace, folding its
    coverage level into the aggregate counts first (per-pod byte totals
    are aggregated at record time and never lost to eviction).
    """

    def __init__(self, max_traces: Optional[int] = DEFAULT_MAX_TRACES):
        self._spans: "OrderedDict[int, List[Span]]" = OrderedDict()
        self._next_trace_id = 1
        self.max_traces = max_traces
        self.pod_bytes: Dict[str, int] = {}
        #: Fault inject/recover events overlapping the collected traces
        #: (annotated by repro.faults.FaultEngine while tracing is on).
        self.fault_marks: List[Dict[str, object]] = []
        self.spans_recorded = 0
        self.traces_evicted = 0
        self._evicted_coverage: Dict[str, int] = {
            "full": 0, "partial": 0, "none": 0}

    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def record(self, span: Span) -> None:
        spans = self._spans.get(span.trace_id)
        if spans is None:
            spans = self._spans[span.trace_id] = []
            if self.max_traces is not None \
                    and len(self._spans) > self.max_traces:
                self._evict_oldest()
        spans.append(span)
        self.spans_recorded += 1
        if span.pod:
            self.pod_bytes[span.pod] = (self.pod_bytes.get(span.pod, 0)
                                        + span.bytes_out + span.bytes_in)

    def _evict_oldest(self) -> None:
        oldest_id = next(iter(self._spans))
        spans = self._spans.pop(oldest_id)
        coverage = Trace(trace_id=oldest_id, spans=spans).coverage
        self._evicted_coverage[coverage] += 1
        self.traces_evicted += 1

    def mark_fault(self, t: float, action: str, kind: str, target: str,
                   detail: str = "") -> None:
        """Annotate a fault inject/recover event onto the trace stream."""
        self.fault_marks.append({"t": t, "action": action, "kind": kind,
                                 "target": target, "detail": detail})

    def trace(self, trace_id: int) -> Trace:
        spans = self._spans.get(trace_id)
        if not spans:
            raise KeyError(f"no spans recorded for trace {trace_id}")
        return Trace(trace_id=trace_id,
                     spans=sorted(spans,
                                  key=lambda s: (s.start_s, s.span_id)))

    def traces(self) -> List[Trace]:
        return [self.trace(trace_id) for trace_id in sorted(self._spans)]

    def coverage_report(self) -> Dict[str, int]:
        """How many traces achieved each coverage level (evicted ones
        included, at the level they held when they aged out)."""
        report = dict(self._evicted_coverage)
        for trace in self.traces():
            report[trace.coverage] += 1
        return report

    def pod_traffic_report(self) -> Dict[str, int]:
        """Per-pod byte totals — the sidecar-equivalent statistic that
        the on-node proxy reconstructs by labeling traffic."""
        return dict(self.pod_bytes)


class TraceHandle:
    """Builder for one sampled trace: allocates span ids, records spans.

    The root span (id ``1``) is reserved at start and recorded by
    :meth:`finish`; children allocated via :meth:`add` reference it (or
    each other) through ``parent_id``, giving real causality without
    mutating frozen spans.
    """

    __slots__ = ("collector", "trace_id", "name", "layer", "source",
                 "service", "start_s", "_annotations", "_next_span_id",
                 "finished")

    def __init__(self, collector: TraceCollector, trace_id: int, name: str,
                 layer: str, source: str, service: str, start_s: float,
                 annotations: Dict[str, object]):
        self.collector = collector
        self.trace_id = trace_id
        self.name = name
        self.layer = layer
        self.source = source or name
        self.service = service
        self.start_s = start_s
        self._annotations = dict(annotations)
        self._next_span_id = ROOT_SPAN_ID + 1
        self.finished = False

    @property
    def root_id(self) -> int:
        return ROOT_SPAN_ID

    def reserve_id(self) -> int:
        """Allocate a span id to record later (parents whose children
        must reference them before the parent's interval closes)."""
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def add(self, name: str, layer: str, start_s: float, end_s: float,
            parent_id: int = ROOT_SPAN_ID, source: str = "",
            service: str = "", pod: str = "", bytes_out: int = 0,
            bytes_in: int = 0, span_id: Optional[int] = None,
            **annotations) -> int:
        """Record one child span; returns its id for further nesting."""
        if span_id is None:
            span_id = self.reserve_id()
        self.collector.record(Span(
            trace_id=self.trace_id, source=source or name, layer=layer,
            start_s=start_s, end_s=end_s, pod=pod,
            service=service or self.service, bytes_out=bytes_out,
            bytes_in=bytes_in, span_id=span_id, parent_id=parent_id,
            name=name, annotations=_freeze_annotations(annotations)))
        return span_id

    def add_tree(self, spec: Dict[str, object],
                 parent_id: int = ROOT_SPAN_ID) -> int:
        """Record a nested span spec (dicts with a ``children`` list).

        Used for *deferred* spans: connection setup (TLS handshakes)
        happens before any request trace exists, so producers stash
        span specs and the first request's trace adopts them.
        """
        spec = dict(spec)
        children = spec.pop("children", ())
        annotations = dict(spec.pop("annotations", {}))
        span_id = self.add(parent_id=parent_id, **spec, **annotations)
        for child in children:
            self.add_tree(child, parent_id=span_id)
        return span_id

    def annotate(self, key: str, value: object) -> None:
        """Attach a root-span annotation (applied at finish)."""
        self._annotations[key] = value

    def finish(self, end_s: float, **annotations) -> None:
        """Close the trace: record the root span. Idempotent."""
        if self.finished:
            return
        self.finished = True
        merged = dict(self._annotations)
        merged.update(annotations)
        self.collector.record(Span(
            trace_id=self.trace_id, source=self.source, layer=self.layer,
            start_s=self.start_s, end_s=end_s, service=self.service,
            span_id=ROOT_SPAN_ID, parent_id=0, name=self.name,
            annotations=_freeze_annotations(merged)))


class Tracer:
    """Head-sampled trace production over one collector.

    The sampling decision is made once per trace at :meth:`start` from
    a dedicated ``random.Random`` seeded by ``seed`` (derive it from
    the simulator's seed — *never* pass ``sim.rng`` itself: consuming
    the simulation's stream here would change model behavior whenever
    tracing toggles). One draw is consumed per started trace regardless
    of the decision, so downstream draws stay aligned.
    """

    def __init__(self, collector: Optional[TraceCollector] = None,
                 enabled: bool = True, sample_rate: float = 1.0,
                 seed: int = 0, sampler: Optional[random.Random] = None,
                 max_traces: Optional[int] = DEFAULT_MAX_TRACES):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], "
                             f"got {sample_rate}")
        self.enabled = enabled
        self.collector = (collector if collector is not None
                          else TraceCollector(max_traces=max_traces))
        self.sample_rate = sample_rate
        self._sampler = (sampler if sampler is not None
                         else random.Random(f"repro.obs.trace:{seed!r}"))
        self.traces_started = 0
        self.traces_sampled = 0

    def start(self, name: str, layer: str = "request", source: str = "",
              service: str = "", start_s: float = 0.0,
              **annotations) -> Optional[TraceHandle]:
        """Begin a trace, or return ``None`` (disabled / sampled out)."""
        if not self.enabled:
            return None
        self.traces_started += 1
        trace_id = self.collector.new_trace_id()
        if self.sample_rate < 1.0 \
                and self._sampler.random() >= self.sample_rate:
            return None
        self.traces_sampled += 1
        return TraceHandle(self.collector, trace_id, name, layer, source,
                           service, start_s, annotations)


# -- ambient tracer (the disabled-by-default hot-path hook) ------------------
_tracer: Optional[Tracer] = None
_collectors: List[TraceCollector] = []


def get_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` while tracing is disabled.

    This is the hot-path check: instrumentation points read it once per
    request and skip all trace work on ``None``.
    """
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as ambient; returns the previous one.

    The tracer's collector is registered for the report exporters to
    drain (:func:`take_collectors`), mirroring the profiler flow.
    """
    global _tracer
    previous, _tracer = _tracer, tracer
    if tracer is not None:
        register_collector(tracer.collector)
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope an (enabled, full-sampling by default) tracer."""
    installed = tracer if tracer is not None else Tracer(enabled=True)
    previous = set_tracer(installed)
    try:
        yield installed
    finally:
        set_tracer(previous)


def register_collector(collector: TraceCollector) -> TraceCollector:
    """Queue a collector for the run-report exporters to drain."""
    if collector not in _collectors:
        _collectors.append(collector)
    return collector


def take_collectors() -> List[TraceCollector]:
    """Drain (return and forget) every registered collector."""
    global _collectors
    drained, _collectors = _collectors, []
    return drained
