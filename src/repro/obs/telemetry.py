"""The labeled-metric registry at the center of ``repro.obs``.

A :class:`Telemetry` instance holds counter, gauge, and histogram
*families* addressed by name, each fanning out to children addressed by
label sets — the classic Prometheus data model::

    telemetry.inc("requests_total", mesh="canal", result="ok")
    telemetry.observe("latency_seconds", 0.004, mesh="canal")
    telemetry.set("water_level", 0.62, backend="backend-1")

Instrumentation points all over the mesh stack emit into the *ambient*
registry (see :mod:`repro.obs.runtime`), which is **disabled** by
default: every mutator checks ``self.enabled`` first and returns, so the
datapath pays one method call per emission when telemetry is off.
Experiments that want measurements install an enabled registry for the
duration of a run.

Nothing here touches the simulator; values are plain floats and the
caller supplies any timestamps it cares about.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Telemetry",
    "MetricFamily",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
]

#: Default histogram buckets, tuned for request latencies / CPU costs in
#: seconds (100 µs .. 10 s, roughly log-spaced like Prometheus defaults).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A label set frozen into a canonical, hashable key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class CounterMetric:
    """One monotonically increasing child of a counter family."""

    __slots__ = ("labels", "value")
    kind = "counter"

    def __init__(self, labels: LabelKey):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class GaugeMetric:
    """One set-to-current-value child of a gauge family."""

    __slots__ = ("labels", "value")
    kind = "gauge"

    def __init__(self, labels: LabelKey):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class HistogramMetric:
    """One bucketed-distribution child of a histogram family."""

    __slots__ = ("labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, labels: LabelKey,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.labels = labels
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        #: counts[i] = observations <= buckets[i]; the final slot is +Inf.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (ends at +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricFamily:
    """All children of one metric name, sharing a kind (and buckets)."""

    def __init__(self, name: str, kind: str,
                 buckets: Optional[Sequence[float]] = None):
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[LabelKey, object] = {}

    def child(self, labels: Dict[str, object]):
        key = _label_key(labels)
        metric = self.children.get(key)
        if metric is None:
            if self.kind == "counter":
                metric = CounterMetric(key)
            elif self.kind == "gauge":
                metric = GaugeMetric(key)
            else:
                metric = HistogramMetric(key, self.buckets or DEFAULT_BUCKETS)
            self.children[key] = metric
        return metric

    def __iter__(self) -> Iterator:
        for key in sorted(self.children):
            yield self.children[key]


class Telemetry:
    """A registry of labeled metric families with cheap disabled mode."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}

    # -- family access -----------------------------------------------------
    def _family(self, name: str, kind: str,
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot reuse as {kind}")
        return family

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    # -- emission ----------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the counter ``name{labels}``."""
        if not self.enabled:
            return
        self._family(name, "counter").child(labels).inc(amount)

    def set(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        if not self.enabled:
            return
        self._family(name, "gauge").child(labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None, **labels) -> None:
        """Record one sample into the histogram ``name{labels}``.

        ``buckets`` only matters on the family's first use; later calls
        inherit the family's bucket layout.
        """
        if not self.enabled:
            return
        self._family(name, "histogram", buckets=buckets) \
            .child(labels).observe(value)

    # -- queries -----------------------------------------------------------
    def get(self, name: str, **labels):
        """The child metric object for ``name{labels}``, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def value(self, name: str, **labels) -> float:
        """Current scalar of a counter/gauge (0.0 when never emitted)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, HistogramMetric):
            raise ValueError(f"{name!r} is a histogram; query .sum/.count "
                             f"via get()")
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        if family.kind == "histogram":
            raise ValueError(f"{name!r} is a histogram")
        return sum(child.value for child in family)

    def scalar_totals(self) -> Dict[str, float]:
        """Compact ``{family: total}`` view across all label sets.

        Counters and gauges sum their children's values; histograms
        report total observation count. This is the payload progress
        streams want — one number per family, cheap to serialize —
        where :meth:`snapshot` is the full-fidelity dump.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            if family.kind == "histogram":
                out[family.name] = float(sum(
                    child.count for child in family))
            else:
                out[family.name] = float(sum(
                    child.value for child in family))
        return out

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready dump of every family and child."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for child in family:
                labels = dict(child.labels)
                if isinstance(child, HistogramMetric):
                    samples.append({
                        "labels": labels,
                        "buckets": list(child.buckets),
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {"kind": family.kind, "samples": samples}
        return out

    def clear(self) -> None:
        self._families.clear()

    def __len__(self) -> int:
        return len(self._families)
