"""Content-addressed on-disk cache for experiment results.

Re-running ``python -m repro.experiments all`` after touching one module
should only recompute the exhibits that can *see* that module. The
cache key for an exhibit is therefore::

    sha256(exp_id, cache format, python major.minor,
           cost-model fingerprint,
           source hash of every repro module the exhibit's module
           transitively imports)

The import closure comes from a static :mod:`ast` parse of every file in
the ``repro`` package (intra-package ``import``/``from`` statements,
including relative ones), not from ``sys.modules`` — so the fingerprint
is stable, cheap (~one parse per file, computed once per process), and
conservative: editing ``mesh/proxy.py`` invalidates the testbed
exhibits that reach it but leaves, say, ``fig3``'s pure-workload cache
entry warm.

Entries are pickled :class:`~repro.experiments.base.ExperimentResult`
objects named ``<exp_id>.<digest>.pkl``; a stale digest simply never
matches again (old entries are inert files, prunable with
:meth:`ResultCache.prune`). Writes are atomic (tmp + rename) so
parallel exhibit workers can share a cache directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import warnings
from typing import Dict, List, Optional, Set, Tuple

from ..lint.astutil import (
    dynamic_import_lines,
    iter_module_files,
    module_imports,
    parse_file,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "cached_run",
    "closure_dynamic_imports",
    "exhibit_fingerprint",
    "module_closure",
]

#: Bump when the pickle payload or key recipe changes shape.
_CACHE_FORMAT = 2

#: Default cache location; overridable per call or via the environment.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


# -- static import graph over the repro package -----------------------------

def _package_root() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


_graph_cache: Optional[Tuple[Dict[str, str], Dict[str, Set[str]],
                             Dict[str, List[int]]]] = None


def _module_graph() -> Tuple[Dict[str, str], Dict[str, Set[str]],
                             Dict[str, List[int]]]:
    """(module -> file, module -> imports, module -> dynamic-import
    lines), memoized. The AST walking lives in :mod:`repro.lint.astutil`
    (shared with the simlint analyzer)."""
    global _graph_cache
    if _graph_cache is None:
        files = dict(iter_module_files(_package_root()))
        known = set(files)
        graph: Dict[str, Set[str]] = {}
        dynamic: Dict[str, List[int]] = {}
        for module, path in files.items():
            _source, tree = parse_file(path)
            if tree is None:  # pragma: no cover - repo code always parses
                graph[module] = set()
                continue
            graph[module] = module_imports(
                tree, module, path.endswith("__init__.py"), known)
            lines = dynamic_import_lines(tree)
            if lines:
                dynamic[module] = lines
        # A package module stands for its __init__; importing it sees
        # everything the __init__ re-exports (already in its edges).
        _graph_cache = (files, graph, dynamic)
    return _graph_cache


def module_closure(module: str) -> List[str]:
    """``module`` plus every repro module it transitively imports."""
    files, graph, _dynamic = _module_graph()
    if module not in files:
        raise KeyError(f"unknown repro module {module!r}")
    seen: Set[str] = set()
    stack = [module]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.get(current, ()))
        # Importing repro.foo.bar implicitly executes repro.foo/__init__.
        parent = current.rpartition(".")[0]
        if parent and parent in files:
            stack.append(parent)
    return sorted(seen)


def closure_dynamic_imports(module: str) -> Dict[str, List[int]]:
    """Dynamic imports reachable from ``module``'s import closure.

    Maps each offending module in the closure to the line numbers of its
    ``importlib``/``__import__`` usage. A non-empty result means the
    static closure under-approximates the exhibit's real dependencies,
    so its fingerprint — and any cache entry keyed on it — is unsound
    (simlint rule CACHE001 flags the same sites at lint time).
    """
    _files, _graph, dynamic = _module_graph()
    return {m: dynamic[m] for m in module_closure(module) if m in dynamic}


_source_hashes: Dict[str, str] = {}


def _source_hash(module: str) -> str:
    digest = _source_hashes.get(module)
    if digest is None:
        files, _graph, _dynamic = _module_graph()
        with open(files[module], "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        _source_hashes[module] = digest
    return digest


# -- fingerprints -----------------------------------------------------------

def _cost_fingerprint() -> str:
    """The default cost model, pinned into every key.

    Exhibits close over ``DEFAULT_COSTS``; its repr (a frozen dataclass
    of floats) is deterministic. Source hashes already cover the
    defaults, but the explicit repr also catches monkey-patched costs
    in calibration sessions.
    """
    from ..mesh import DEFAULT_COSTS
    return repr(DEFAULT_COSTS)


def exhibit_fingerprint(exp_id: str, extra: str = "") -> str:
    """Digest identifying one exhibit's inputs: id + code + config."""
    from ..experiments import EXPERIMENTS
    function = EXPERIMENTS[exp_id]
    hasher = hashlib.sha256()
    hasher.update(f"format={_CACHE_FORMAT}\n".encode())
    hasher.update(f"python={sys.version_info[0]}.{sys.version_info[1]}\n"
                  .encode())
    hasher.update(f"exp_id={exp_id}\n".encode())
    hasher.update(f"costs={_cost_fingerprint()}\n".encode())
    hasher.update(f"extra={extra}\n".encode())
    for module in module_closure(function.__module__):
        hasher.update(f"{module}={_source_hash(module)}\n".encode())
    return hasher.hexdigest()


# -- the cache itself -------------------------------------------------------

class ResultCache:
    """Pickle store of :class:`ExperimentResult`s keyed by fingerprint."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir or DEFAULT_CACHE_DIR

    def _path(self, exp_id: str, digest: str) -> str:
        return os.path.join(self.cache_dir, f"{exp_id}.{digest[:24]}.pkl")

    def load(self, exp_id: str, extra: str = ""):
        """The cached result for the exhibit's current inputs, or None."""
        path = self._path(exp_id, exhibit_fingerprint(exp_id, extra))
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None  # miss — including unreadable/stale payloads

    def store(self, exp_id: str, result, extra: str = "") -> str:
        """Atomically persist ``result``; returns the entry path."""
        path = self._path(exp_id, exhibit_fingerprint(exp_id, extra))
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def prune(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        try:
            entries = sorted(os.listdir(self.cache_dir))
        except OSError:
            return 0
        for name in entries:
            if name.endswith(".pkl") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def cached_run(exp_id: str, cache_dir: Optional[str] = None,
               refresh: bool = False, variant: str = ""):
    """Run one exhibit through the cache.

    Returns ``(result, hit)``. ``refresh`` skips the read (but still
    stores), for runs that must actually execute — e.g. ``--report``.
    ``variant`` distinguishes alternate run modes of the same exhibit
    in the cache key (it feeds ``exhibit_fingerprint``'s ``extra``) —
    notably warm-started sweeps (``WarmStart.variant``), whose results
    must never satisfy a cold run or vice versa.

    Exhibits whose import closure contains dynamic imports (CACHE001)
    bypass the cache entirely: the fingerprint cannot see what they
    load, so an entry could go stale without its key changing. An
    ambient fault plan (``repro.faults.use_fault_plan``) bypasses it
    too — a chaos run must neither satisfy nor poison the clean cache,
    and the plan is not part of the key.
    """
    from ..experiments import EXPERIMENTS, run
    from ..faults.runtime import get_fault_plan
    if get_fault_plan() is not None:
        warnings.warn(
            f"result cache bypassed for {exp_id!r}: an ambient fault "
            f"plan is installed, so this run's result is not the "
            f"exhibit's clean result", RuntimeWarning, stacklevel=2)
        return run(exp_id), False
    dynamic = closure_dynamic_imports(EXPERIMENTS[exp_id].__module__)
    if dynamic:
        sites = "; ".join(
            f"{module}:{','.join(map(str, lines))}"
            for module, lines in sorted(dynamic.items()))
        warnings.warn(
            f"result cache disabled for {exp_id!r}: dynamic imports in "
            f"its import closure make the cache key unsound ({sites})",
            RuntimeWarning, stacklevel=2)
        return run(exp_id), False
    cache = ResultCache(cache_dir)
    if not refresh:
        hit = cache.load(exp_id, extra=variant)
        if hit is not None:
            return hit, True
    result = run(exp_id)
    cache.store(exp_id, result, extra=variant)
    return result, False
