"""Execution layer: parallel sweeps, result caching, exhibit drivers.

``repro.runtime`` is how exhibits get cheap: independent simulator runs
(RPS grids, seeds, mesh variants) fan out over a ``multiprocessing``
pool with deterministic, point-ordered results (:mod:`.sweep`);
finished exhibits land in a content-addressed on-disk cache keyed by
exhibit id + config fingerprint + the source hash of the exhibit's
import closure (:mod:`.cache`); and the CLI drives both through one
picklable entry point (:mod:`.driver`).

This package sits *above* ``repro.simcore`` and ``repro.experiments``
in spirit but below them in imports: nothing here is imported by model
code, so the simulator's hot loop never pays for it.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cached_run,
    exhibit_fingerprint,
    module_closure,
)
from .driver import ExhibitRun, RunSpec, run_exhibit
from .warmstart import WarmStart, warm_start
from .sweep import (
    SweepExecutor,
    SweepPointError,
    default_jobs,
    get_executor,
    set_executor,
    sweep_imap,
    sweep_map,
    use_executor,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExhibitRun",
    "ResultCache",
    "RunSpec",
    "SweepExecutor",
    "SweepPointError",
    "WarmStart",
    "cached_run",
    "default_jobs",
    "exhibit_fingerprint",
    "get_executor",
    "module_closure",
    "run_exhibit",
    "set_executor",
    "sweep_imap",
    "sweep_map",
    "use_executor",
    "warm_start",
]
