"""Parallel sweep executor: map independent experiment points over cores.

Every paper exhibit is a sweep of independent :class:`Simulator` runs
(RPS grids, seed sweeps, mesh variants). Each point builds its own
seeded simulator, so points are embarrassingly parallel *and* fully
deterministic: the executor only changes **where** a point runs, never
its inputs, and results always come back in point order. Same seed and
grid therefore produce byte-identical results at ``jobs=1`` and
``jobs=N``.

Exhibit code does not thread an executor through every call — it maps
through the *ambient* executor::

    from repro.runtime import sweep_imap
    for rps, p99 in zip(grid, sweep_imap(_knee_point, specs)):
        ...

The default ambient executor is serial (zero overhead, lazy ``imap`` so
early-exit sweeps stop computing). ``python -m repro.experiments
--jobs N`` installs a pooled one around the run.

Point functions must be module-level (picklable) and point specs must be
picklable values; both travel to ``multiprocessing`` workers.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional

__all__ = [
    "SweepExecutor",
    "SweepPointError",
    "default_jobs",
    "get_executor",
    "set_executor",
    "sweep_imap",
    "sweep_map",
    "use_executor",
]


class SweepPointError(RuntimeError):
    """A sweep point raised in a pool worker.

    ``multiprocessing`` re-raises worker exceptions in the parent with
    the worker-side traceback rendered as text but with no indication of
    *which* point failed — for a 200-point grid that makes "crash in
    point 37" undebuggable. The pooled path therefore wraps the point
    function and re-raises failures as this type, whose message carries
    the point's index and ``repr`` (the original exception is chained as
    ``__cause__`` worker-side and echoed in the message, which survives
    pickling even when the cause does not).
    """


class _PointCall:
    """Picklable wrapper running one ``(index, point)`` pair in a worker."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, indexed_point):
        index, point = indexed_point
        try:
            return self.fn(point)
        except Exception as exc:
            name = getattr(self.fn, "__name__", None) or repr(self.fn)
            raise SweepPointError(
                f"sweep point {index} ({point!r}) failed in {name}: "
                f"{exc!r}") from exc


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "use every core" requests."""
    return os.cpu_count() or 1


def _worker_init() -> None:
    """Reset ambient observability state inherited by a forked worker.

    Workers return plain picklable values; profilers or telemetry they
    would accumulate can never reach the parent, so keep their event
    loops on the unprofiled fast path. (Per-simulator profiler
    attribution under ``--report`` covers parent-process simulators.)
    """
    from ..obs.runtime import disable_profiling, take_profilers
    disable_profiling()
    take_profilers()


class SweepExecutor:
    """Maps a point function over a sweep grid, serially or on a pool.

    ``jobs=1`` (the default) runs inline and lazily. ``jobs>1`` runs on
    a lazily created ``multiprocessing`` pool (``fork`` start method
    where available — workers inherit the imported package) and keeps
    result order identical to point order. Use as a context manager or
    call :meth:`close` to reap the pool.
    """

    def __init__(self, jobs: int = 1, chunksize: int = 1):
        if jobs == 0:
            jobs = default_jobs()
        self.jobs = max(1, int(jobs))
        self.chunksize = max(1, int(chunksize))
        self._pool = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = context.Pool(self.jobs, initializer=_worker_init)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping -----------------------------------------------------------
    def imap(self, fn: Callable[[Any], Any],
             points: Iterable[Any]) -> Iterator[Any]:
        """Yield ``fn(point)`` for each point, **in point order**.

        Serial executors evaluate lazily, so consumers may stop early
        (e.g. a knee search past the latency spike) without paying for
        the rest of the grid. Pooled executors evaluate eagerly in the
        background; abandoning the iterator abandons the extra results,
        not the determinism of the ones consumed.
        """
        points = list(points)
        if self.jobs == 1 or len(points) <= 1:
            return (fn(point) for point in points)
        return self._ensure_pool().imap(_PointCall(fn), list(enumerate(points)),
                                        chunksize=self.chunksize)

    def map(self, fn: Callable[[Any], Any],
            points: Iterable[Any]) -> List[Any]:
        """``list(imap(...))`` — the whole sweep, in point order."""
        return list(self.imap(fn, points))


#: The ambient executor exhibit code maps through (serial by default).
_executor = SweepExecutor(jobs=1)


def get_executor() -> SweepExecutor:
    """The ambient executor all ``sweep_map``/``sweep_imap`` calls use."""
    return _executor


def set_executor(executor: SweepExecutor) -> SweepExecutor:
    """Install ``executor`` as ambient; returns the previous one."""
    global _executor
    previous, _executor = _executor, executor
    return previous


@contextmanager
def use_executor(jobs: int = 1,
                 executor: Optional[SweepExecutor] = None
                 ) -> Iterator[SweepExecutor]:
    """Scope an executor over a ``with`` block (and reap its pool)."""
    owned = executor is None
    installed = SweepExecutor(jobs=jobs) if owned else executor
    previous = set_executor(installed)
    try:
        yield installed
    finally:
        set_executor(previous)
        if owned:
            installed.close()


def sweep_map(fn: Callable[[Any], Any], points: Iterable[Any]) -> List[Any]:
    """Map ``fn`` over ``points`` on the ambient executor, in order."""
    return _executor.map(fn, points)


def sweep_imap(fn: Callable[[Any], Any],
               points: Iterable[Any]) -> Iterator[Any]:
    """Ordered, possibly lazy iterator form of :func:`sweep_map`."""
    return _executor.imap(fn, points)
