"""Warm-start sweeps: snapshot a warmed-up simulator, fork per point.

Many exhibits sweep a parameter whose effect only matters *after* the
mesh has reached steady state (connection pools filled, sessions
established, health state converged). Re-simulating that warm-up for
every sweep point is pure waste: the warm-up is identical across points
by construction. A :class:`WarmStart` runs the warm-up **once**, pickles
the whole simulator (clock + rng + agenda + world — see
``Simulator.snapshot``), and restores an independent copy per point::

    ws = warm_start(build_world, until=WARMUP_S)     # simulate once
    results = ws.map(measure_point, rps_grid)        # fork per point

``map``/``imap`` go through the ambient sweep executor
(:mod:`repro.runtime.sweep`), so warm-started sweeps parallelize across
cores exactly like cold ones and return results in point order. The
point function receives a **fresh restored simulator** plus the point
value; mutations never leak between points because every restore is an
independent deep copy.

Cache-key interaction
---------------------
A warm-started run of an exhibit is *not* the same computation as a
cold run: results may differ in rng draw order relative to a cold
simulation of the same horizon. Exhibits that adopt warm starts must
therefore carry the snapshot identity into the result-cache key:
:attr:`WarmStart.variant` is a stable digest string
(``"warm:<sha256 prefix>"``) meant to be passed as ``RunSpec.variant``
/ ``cached_run(variant=...)``, which lands in
``exhibit_fingerprint(extra=...)``. Forked and cold results then cache
under distinct keys and can never satisfy each other.

The warm-up factory must build a *snapshot-eligible* world: everything
scheduled through callbacks and direct calls, no generator-driven
processes (``Simulator.snapshot`` raises ``SimulationError``
otherwise).
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..simcore import Simulator
from .sweep import sweep_imap, sweep_map

__all__ = ["WarmStart", "warm_start"]


class _WarmPoint:
    """Picklable wrapper: restore the snapshot, run one sweep point.

    Travels to pool workers like ``sweep._PointCall``; the payload rides
    along so workers restore locally instead of re-simulating warm-up.
    """

    __slots__ = ("payload", "fn")

    def __init__(self, payload: bytes, fn: Callable[[Simulator, Any], Any]):
        self.payload = payload
        self.fn = fn

    def __call__(self, point: Any) -> Any:
        return self.fn(pickle.loads(self.payload), point)


class WarmStart:
    """A reusable snapshot of a warmed-up :class:`Simulator`.

    Construct via :func:`warm_start` (factory + horizon) or directly
    from an already-warm simulator. The snapshot is taken eagerly at
    construction; the source simulator may be discarded or mutated
    afterwards without affecting forks.
    """

    def __init__(self, sim: Simulator):
        self._payload = sim.snapshot()
        #: sha256 of the snapshot payload: two warm starts with the
        #: same digest restore byte-identical simulators.
        self.digest = hashlib.sha256(self._payload).hexdigest()

    @property
    def variant(self) -> str:
        """Cache-key variant tag for runs built on this snapshot."""
        return f"warm:{self.digest[:16]}"

    @property
    def payload_size(self) -> int:
        """Snapshot size in bytes (each pooled point ships one copy)."""
        return len(self._payload)

    def fork(self) -> Simulator:
        """An independent simulator restored from the snapshot."""
        return pickle.loads(self._payload)

    def map(self, fn: Callable[[Simulator, Any], Any],
            points: Iterable[Any]) -> List[Any]:
        """``[fn(fork(), p) for p in points]`` on the ambient executor."""
        return sweep_map(_WarmPoint(self._payload, fn), points)

    def imap(self, fn: Callable[[Simulator, Any], Any],
             points: Iterable[Any]) -> Iterator[Any]:
        """Ordered, possibly lazy iterator form of :meth:`map`."""
        return sweep_imap(_WarmPoint(self._payload, fn), points)


def warm_start(factory: Callable[[], Simulator],
               until: Optional[float] = None) -> WarmStart:
    """Build a world, simulate its warm-up once, and snapshot it.

    ``factory`` returns a fresh simulator with the world attached;
    ``until`` (if given) is the warm-up horizon it is run to before the
    snapshot is taken.
    """
    sim = factory()
    if until is not None:
        sim.run(until=until)
    return WarmStart(sim)
