"""Exhibit-level run drivers: one picklable entry point per exhibit run.

``python -m repro.experiments all --jobs N`` fans whole exhibits out to
pool workers; the worker-side body must be a module-level function, so
it lives here rather than in ``__main__``. The same function serves the
serial path (``jobs=1`` or a single target), keeping one code path for
cache, report artifacts, and timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .cache import cached_run

__all__ = ["ExhibitRun", "RunSpec", "run_exhibit"]


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to run one exhibit.

    ``variant`` tags alternate run modes of the same exhibit in the
    result-cache key (e.g. ``WarmStart.variant`` for warm-started
    sweeps); cold runs leave it empty.
    """

    exp_id: str
    report_dir: Optional[str] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    variant: str = ""


@dataclass
class ExhibitRun:
    """What came back: the result plus run metadata for the CLI."""

    exp_id: str
    result: object
    elapsed_s: float
    cache_hit: bool = False
    artifact_paths: Dict[str, str] = field(default_factory=dict)


def run_exhibit(spec: RunSpec) -> ExhibitRun:
    """Run one exhibit per ``spec``; picklable both ways.

    With a ``report_dir``, the run executes under an enabled telemetry
    registry + step profiling and drops the report artifacts (see
    ``repro.obs``) — artifacts require a real execution, so the cache is
    only written, never read. Without one, the cache may satisfy the
    run outright.
    """
    # simlint: ignore[DET001] CLI wall-clock metadata, not a sim input
    started = time.perf_counter()
    if spec.report_dir is None:
        if spec.use_cache:
            result, hit = cached_run(spec.exp_id, cache_dir=spec.cache_dir,
                                     variant=spec.variant)
        else:
            from ..experiments import run
            result, hit = run(spec.exp_id), False
        return ExhibitRun(spec.exp_id, result,
                          # simlint: ignore[DET001] CLI wall-clock metadata
                          time.perf_counter() - started, cache_hit=hit)

    from ..obs import (
        Telemetry,
        disable_profiling,
        enable_profiling,
        set_telemetry,
        take_collectors,
        take_profilers,
        write_run_artifacts,
    )
    from ..faults import take_timelines
    telemetry = Telemetry(enabled=True)
    previous = set_telemetry(telemetry)
    enable_profiling(keep_timeline=True)
    take_profilers()  # drop any profilers a previous exhibit leaked
    take_timelines()  # likewise for leaked fault timelines
    take_collectors()  # and leaked trace collectors
    try:
        if spec.use_cache:
            result, _hit = cached_run(spec.exp_id, cache_dir=spec.cache_dir,
                                      refresh=True, variant=spec.variant)
        else:
            from ..experiments import run
            result = run(spec.exp_id)
    finally:
        disable_profiling()
        set_telemetry(previous)
    elapsed = time.perf_counter() - started  # simlint: ignore[DET001] CLI timing
    profilers = take_profilers()
    # Fault timelines from in-process engines, merged in virtual-time
    # order (pool-worker engines return their timelines inside results
    # instead; forked registries never reach this process).
    faults = sorted((entry for timeline in take_timelines()
                     for entry in timeline),
                    key=lambda entry: entry.get("t", 0.0))
    # Trace collectors registered during the run (exhibits that trace
    # re-record pool-worker spans into a collector they register here).
    collectors = take_collectors()
    traces = [trace for collector in collectors
              for trace in collector.traces()]
    fault_marks = sorted((mark for collector in collectors
                          for mark in collector.fault_marks),
                         key=lambda mark: mark.get("t", 0.0))
    paths = write_run_artifacts(
        spec.report_dir, spec.exp_id, result=result, telemetry=telemetry,
        profilers=profilers, faults=faults, traces=traces,
        fault_marks=fault_marks,
        meta={"exp_id": spec.exp_id, "wall_clock_s": elapsed,
              "simulators_profiled": len(profilers),
              "faults_recorded": len(faults),
              "traces_recorded": len(traces)})
    return ExhibitRun(spec.exp_id, result, elapsed, cache_hit=False,
                      artifact_paths=paths)
