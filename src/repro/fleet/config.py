"""Fleet-tier configuration: topology shape, demand curves, rates.

The fluid tier must never silently drift from the per-session tier, so
a :class:`FleetConfig` does not redeclare any cost constant: it embeds
the same :class:`~repro.core.gateway.GatewayConfig` (and through it the
same :class:`~repro.core.replica.ReplicaConfig`) the testbed-scale
exhibits build gateways from, and every fluid rate — per-replica
capacity, per-request CPU cost, HTTPS request weight, the safety
threshold that trips scaling — is *derived* from those shared constants
at run time. Change ``ReplicaConfig.request_cost_s`` and both tiers
move together; the validation harness (``fleet/validate.py``) would
catch any formula drift between them.

:class:`FleetDemand` describes workload analytically (diurnal cosine
over a base concurrent-session population) so demand at any virtual
time is a pure function of the clock — no per-session trace is ever
materialized, which is what lets the tier reach O(1M) sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from ..core.gateway import GatewayConfig

__all__ = ["FleetConfig", "FleetDemand"]


@dataclass(frozen=True)
class FleetDemand:
    """Analytic session demand for one region's services.

    Concurrent-session *target* per service at virtual time ``t``::

        target(t) = mean_sessions * (1 + amplitude * cos(2*pi*(t/period - phase)))

    Session arrivals are Poisson (or their fluid limit) at the rate
    that sustains ``target(t)`` given the mean session duration
    ``theta``: ``lambda(t) = target(t) / theta``. A service's offered
    RPS is ``sessions * session_rps`` (weighted by the service's
    HTTPS request weight, exactly like the per-session gateway).
    """

    #: Steady-state concurrent sessions per service (the M/M/inf mean).
    mean_sessions: float = 1000.0
    #: Diurnal swing as a fraction of the mean (0 = flat load).
    amplitude: float = 0.0
    #: Fraction of ``period_s`` by which the peak is shifted.
    phase: float = 0.58
    period_s: float = 86_400.0
    #: Mean session lifetime (exponential), seconds.
    session_duration_s: float = 600.0
    #: Requests per second one active session generates.
    session_rps: float = 2.0

    def __post_init__(self):
        if self.mean_sessions < 0:
            raise ValueError(f"negative mean_sessions {self.mean_sessions}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), "
                             f"got {self.amplitude}")
        if self.period_s <= 0 or self.session_duration_s <= 0:
            raise ValueError("period_s and session_duration_s must be > 0")
        if self.session_rps <= 0:
            raise ValueError(f"session_rps must be > 0, "
                             f"got {self.session_rps}")

    def target_sessions(self, t: float) -> float:
        """Equilibrium concurrent sessions per service at time ``t``."""
        if self.amplitude == 0.0:
            return self.mean_sessions
        swing = math.cos(2.0 * math.pi * (t / self.period_s - self.phase))
        return self.mean_sessions * (1.0 + self.amplitude * swing)

    def arrival_rate(self, t: float) -> float:
        """Session arrivals per second per service at time ``t``."""
        return self.target_sessions(t) / self.session_duration_s


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one region's fleet (the fluid tier's world).

    ``replicas_per_backend``, shard width, request weights, and all CPU
    cost rates come from the embedded :class:`GatewayConfig` — the same
    object :func:`repro.experiments.cloud_ops.build_production_gateway`
    consumes — so the two tiers share one source of truth.
    """

    azs: int = 3
    backends_per_az: int = 8
    services: int = 16
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: Fixed flow-update step of the fluid ODE integrator, seconds.
    dt_s: float = 1.0
    #: Record metric samples every N flow steps (1 = every step).
    sample_every: int = 1
    #: HTTPS cadence mirroring ``build_production_gateway``: every
    #: third service is HTTPS and carries the 3x request weight that
    #: ``TenantService.request_weight`` assigns in the per-session tier.
    https_every: int = 3

    def __post_init__(self):
        if self.azs < 1 or self.backends_per_az < 1 or self.services < 1:
            raise ValueError("azs, backends_per_az and services "
                             "must all be >= 1")
        if self.dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {self.dt_s}")
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, "
                             f"got {self.sample_every}")
        if self.azs < self.gateway.azs_per_service:
            raise ValueError(
                f"{self.azs} AZs cannot satisfy azs_per_service="
                f"{self.gateway.azs_per_service}")
        if self.backends_per_az < self.gateway.backends_per_service_per_az:
            raise ValueError(
                f"{self.backends_per_az} backends/AZ cannot satisfy "
                f"backends_per_service_per_az="
                f"{self.gateway.backends_per_service_per_az}")

    # -- derived rates (single source of truth: GatewayConfig) -------------
    @property
    def replicas_per_backend(self) -> int:
        return self.gateway.replicas_per_backend

    @property
    def replica_capacity_rps(self) -> float:
        """Unweighted requests/s one healthy replica sustains at 100%.

        The same formula as ``Replica.capacity_rps`` in the per-session
        tier: cores / per-request CPU seconds.
        """
        replica = self.gateway.replica
        return replica.cores / replica.request_cost_s

    @property
    def request_cost_s(self) -> float:
        return self.gateway.replica.request_cost_s

    @property
    def cores_per_replica(self) -> int:
        return self.gateway.replica.cores

    @property
    def safety_threshold(self) -> float:
        return self.gateway.safety_threshold

    def service_weight(self, service_index: int) -> float:
        """HTTPS request weight, mirroring the per-session registry."""
        return 3.0 if service_index % self.https_every == 0 else 1.0

    @property
    def total_replicas(self) -> int:
        return self.azs * self.backends_per_az * self.replicas_per_backend

    def shard_slots(self) -> int:
        """Backends in one service's shuffle-shard combination."""
        return (self.gateway.azs_per_service
                * self.gateway.backends_per_service_per_az)

    def describe(self) -> Tuple[int, int, int]:
        """(azs, backends, replicas) — the fleet's headline shape."""
        backends = self.azs * self.backends_per_az
        return (self.azs, backends, backends * self.replicas_per_backend)
