"""Compiling fault plans onto the fluid fleet.

The same :class:`~repro.faults.plan.FaultPlan` documents that drive
the per-session :class:`~repro.faults.engine.FaultEngine` also drive
the fleet tier — same JSON schema, same virtual-time semantics, same
timeline/telemetry/trace side channels — but injections resolve to
entity-array mutations (decrement a replica column, zero a backend's
session slots) instead of per-object state flips. Only the four
topology fault kinds have a fleet-scale analogue; :meth:`arm` rejects
a plan needing the control-plane/CA/redirector components at arm time,
mirroring the per-session engine's fail-fast wiring checks.

Targets accept the symbolic forms the per-session engine defines
(``service:i/backend:j``, ``service:i/backend:j/replica:k``,
``service:i``) plus fleet-native absolute indices (``backend:k``,
``az:k`` or the literal AZ name ``az1``...). After every injection and
recovery the model's conservation invariants are re-checked, so a
fault that leaks sessions fails at the exact step that introduced it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults.plan import Fault, FaultPlan, FaultPlanError
from ..faults.engine import FaultTargetError
from ..faults.runtime import register_timeline
from ..obs.runtime import get_telemetry
from ..obs.trace import get_tracer
from ..simcore import Simulator
from .model import FleetModel

__all__ = ["FleetFaultEngine"]

#: Fault kinds with a fleet-tier analogue (the topology faults).
FLEET_FAULT_KINDS = (
    "replica_crash",
    "backend_crash",
    "az_crash",
    "query_of_death",
)

#: Default request-weight multiplier for an aggregate query-of-death
#: (``Fault.param`` overrides): poison queries that triple a service's
#: per-request cost, the magnitude the Fig 16 testbed exhibit uses.
_QOD_DEFAULT_FACTOR = 3.0


class FleetFaultEngine:
    """Executes the topology slice of a fault plan against a FleetModel."""

    def __init__(self, sim: Simulator, model: FleetModel,
                 audit: bool = True):
        self.sim = sim
        self.model = model
        self.audit = audit
        self.timeline: List[Dict[str, object]] = []
        register_timeline(self.timeline)

    # -- compilation -------------------------------------------------------
    def arm(self, plan: FaultPlan) -> int:
        """Schedule every fault (and recovery); returns entries armed."""
        faults = plan.sim_faults()
        for fault in faults:
            if fault.kind not in FLEET_FAULT_KINDS:
                raise FaultPlanError(
                    f"{fault.kind} has no fleet-tier analogue; the fluid "
                    "model only compiles topology faults "
                    f"({', '.join(FLEET_FAULT_KINDS)})")
            self._resolve(fault)          # fail fast on bad targets
            if fault.at < self.sim.now:
                raise FaultPlanError(
                    f"{fault.kind} at t={fault.at} is in the past "
                    f"(now={self.sim.now})")
        armed = 0
        for fault in faults:
            self.sim.call_later(fault.at - self.sim.now, self._fire, fault)
            armed += 1
            if fault.duration_s is not None:
                self.sim.call_later(
                    fault.at + fault.duration_s - self.sim.now,
                    self._heal, fault)
                armed += 1
        return armed

    # -- target resolution -------------------------------------------------
    def _resolve(self, fault: Fault) -> int:
        kind = fault.kind
        if kind == "az_crash":
            return self._resolve_az(fault.target)
        if kind == "backend_crash":
            return self._resolve_backend(fault.target)
        if kind == "replica_crash":
            return self._resolve_replica(fault)
        if kind == "query_of_death":
            return self._resolve_service(fault.target)
        raise FaultPlanError(f"unhandled fault kind {kind!r}")

    def _resolve_az(self, target: str) -> int:
        names = self.model.topology.az_names
        if target in names:
            return names.index(target)
        index = _index(target, "az")
        if index >= len(names):
            raise FaultTargetError(
                f"{target}: fleet has only {len(names)} AZs")
        return index

    def _resolve_backend(self, target: str) -> int:
        topology = self.model.topology
        if "/" in target:
            service_token, backend_token = target.split("/", 1)
            service = self._resolve_service(service_token)
            shard = topology.shards[service]
            index = _index(backend_token, "backend")
            if index >= len(shard):
                raise FaultTargetError(
                    f"{target}: service {service} has only "
                    f"{len(shard)} backends")
            return shard[index]
        index = _index(target, "backend")
        if index >= topology.n_backends:
            raise FaultTargetError(
                f"{target}: fleet has only {topology.n_backends} backends")
        return index

    def _resolve_replica(self, fault: Fault) -> int:
        """The owning backend index; replicas are fungible in aggregate."""
        target = fault.target
        if "/" in target:
            prefix, replica_token = target.rsplit("/", 1)
            backend = self._resolve_backend(prefix)
            index = _index(replica_token, "replica")
            per_backend = self.model.topology.total_replicas[backend]
            if index >= per_backend:
                raise FaultTargetError(
                    f"{target}: backend {backend} has only "
                    f"{per_backend} replicas")
            return backend
        if not fault.backend:
            raise FaultTargetError(
                f"replica_crash {target!r} needs a symbolic "
                "service:i/backend:j/replica:k target or an explicit "
                "backend")
        return self._resolve_backend(fault.backend)

    def _resolve_service(self, target: str) -> int:
        index = _index(target, "service")
        if index >= self.model.config.services:
            raise FaultTargetError(
                f"{target}: fleet has only "
                f"{self.model.config.services} services")
        return index

    # -- execution ---------------------------------------------------------
    def _fire(self, fault: Fault) -> None:
        model = self.model
        kind = fault.kind
        if kind == "az_crash":
            az = self._resolve_az(fault.target)
            dropped = model.crash_az(az)
            detail = (f"{model.topology.az_names[az]} down "
                      f"({dropped:.1f} sessions dropped)")
        elif kind == "backend_crash":
            backend = self._resolve_backend(fault.target)
            dropped = model.crash_backend(backend)
            detail = (f"backend {backend} down "
                      f"({dropped:.1f} sessions dropped)")
        elif kind == "replica_crash":
            backend = self._resolve_replica(fault)
            dropped = model.crash_replica(backend)
            detail = (f"replica down on backend {backend} "
                      f"({model.topology.healthy_replicas[backend]} left, "
                      f"{dropped:.1f} sessions dropped)")
        else:  # query_of_death
            service = self._resolve_service(fault.target)
            factor = fault.param if fault.param > 0 else _QOD_DEFAULT_FACTOR
            model.set_qod(service, factor)
            detail = f"service {service} request weight x{factor:g}"
        self._note("inject", fault, detail)

    def _heal(self, fault: Fault) -> None:
        model = self.model
        kind = fault.kind
        if kind == "az_crash":
            az = self._resolve_az(fault.target)
            model.recover_az(az)
            detail = f"{model.topology.az_names[az]} restored"
        elif kind == "backend_crash":
            backend = self._resolve_backend(fault.target)
            model.recover_backend(backend)
            detail = f"backend {backend} restored"
        elif kind == "replica_crash":
            backend = self._resolve_replica(fault)
            model.recover_replica(backend)
            detail = (f"replica restarted on backend {backend} "
                      f"({model.topology.healthy_replicas[backend]} healthy)")
        else:  # query_of_death
            service = self._resolve_service(fault.target)
            model.clear_qod(service)
            detail = f"service {service} request weight restored"
        self._note("recover", fault, detail)

    def _note(self, action: str, fault: Fault, detail: str) -> None:
        entry = {"t": self.sim.now, "action": action, "kind": fault.kind,
                 "target": fault.target, "detail": detail}
        self.timeline.append(entry)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc(f"faults_{action}ed_total", kind=fault.kind)
        tracer = get_tracer()
        if tracer is not None and tracer.collector is not None:
            tracer.collector.mark_fault(self.sim.now, action, fault.kind,
                                        fault.target, detail)
        if self.audit:
            self.model.check_invariants(
                context=f"{action}:{fault.kind}:{fault.target or '-'}")


def _index(token: str, label: str) -> int:
    prefix = f"{label}:"
    if not token.startswith(prefix):
        raise FaultTargetError(
            f"expected '{label}:<index>' in target, got {token!r}")
    try:
        value = int(token[len(prefix):])
    except ValueError:
        raise FaultTargetError(f"non-integer index in {token!r}") from None
    if value < 0:
        raise FaultTargetError(f"negative index in {token!r}")
    return value
