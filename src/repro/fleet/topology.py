"""Entity-array fleet topology: backends, AZs, shuffle shards.

Instead of one Python object per replica/backend (the per-session
tier), the fleet tier keeps parallel ``array``/list columns indexed by
a dense backend id. Shuffle sharding mirrors the semantics of
:class:`repro.core.sharding.ShuffleSharder` — least-loaded AZ pick,
``rng.sample`` of distinct backends per AZ, uniqueness of the full
combination — but operates on indices, so building a 10k-replica
region costs milliseconds.

Isolation statistics (the Fig 19 guarantees) are computed by backend
co-occurrence counting rather than all-pairs set intersection:
O(backends x services_per_backend^2) instead of O(services^2), which
is what makes the 2000-service blast-radius exhibit run in seconds.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, List, Tuple

from .config import FleetConfig

__all__ = ["FleetTopology", "ShardStats"]


class ShardStats:
    """Aggregate isolation properties of a shard assignment."""

    def __init__(self, fully_overlapping_pairs: int, max_pairwise_overlap: int,
                 min_survivor_backends: int, multi_az_services: int):
        self.fully_overlapping_pairs = fully_overlapping_pairs
        self.max_pairwise_overlap = max_pairwise_overlap
        #: min over services of (shard size - worst overlap with any
        #: other service): backends a service keeps if the most-
        #: overlapping peer's entire combination fails.
        self.min_survivor_backends = min_survivor_backends
        self.multi_az_services = multi_az_services


class FleetTopology:
    """One region's backends and shard assignments, as index arrays."""

    def __init__(self, config: FleetConfig, rng: random.Random):
        self.config = config
        backends = config.azs * config.backends_per_az
        #: AZ index of each backend (backend b lives in az_of[b]).
        self.az_of = array("i", [b % config.azs for b in range(backends)])
        #: Healthy replica count per backend (faults decrement).
        self.healthy_replicas = array(
            "i", [config.replicas_per_backend] * backends)
        #: Replica slots provisioned per backend (grows with "New").
        self.total_replicas = array(
            "i", [config.replicas_per_backend] * backends)
        #: Backend health flag (0 after backend/AZ crash).
        self.backend_up = array("b", [1] * backends)
        self.az_names = [f"az{i + 1}" for i in range(config.azs)]
        #: Cached backend indices per AZ (hot path for the scaler's
        #: reuse search; rebuilt incrementally by :meth:`add_backend`).
        self._az_backends: List[List[int]] = [
            [b for b in range(backends) if self.az_of[b] == az]
            for az in range(config.azs)]
        #: Per-service shard: list of backend indices (grows on Reuse/New).
        self.shards: List[List[int]] = []
        self._combinations: Dict[Tuple[int, ...], int] = {}
        self._assign_all(rng)

    # -- construction ------------------------------------------------------
    def _assign_all(self, rng: random.Random) -> None:
        config = self.config
        per_az = config.gateway.backends_per_service_per_az
        az_pools = self._az_backends
        #: Services configured per AZ, for the least-loaded AZ pick.
        az_load = [0] * config.azs
        for _service in range(config.services):
            ranked = sorted(range(config.azs), key=lambda az: (az_load[az], az))
            azs = ranked[:config.gateway.azs_per_service]
            for _attempt in range(200):
                chosen: List[int] = []
                for az in azs:
                    chosen.extend(rng.sample(az_pools[az], per_az))
                key = tuple(sorted(chosen))
                if key not in self._combinations:
                    break
            else:
                raise ValueError(
                    "could not find a unique shuffle-shard combination "
                    f"after 200 attempts for service {_service} — "
                    "add backends")
            self._combinations[key] = _service
            self.shards.append(chosen)
            for az in azs:
                az_load[az] += per_az

    # -- growth (the "New" strategy deploys fresh backends) ----------------
    def add_backend(self, az: int) -> int:
        """Provision one more backend in ``az``; returns its index."""
        index = len(self.az_of)
        self.az_of.append(az)
        self.healthy_replicas.append(self.config.replicas_per_backend)
        self.total_replicas.append(self.config.replicas_per_backend)
        self.backend_up.append(1)
        self._az_backends[az].append(index)
        return index

    def extend_shard(self, service: int, backend: int) -> None:
        if backend in self.shards[service]:
            raise ValueError(
                f"service {service} already on backend {backend}")
        self.shards[service].append(backend)

    # -- views -------------------------------------------------------------
    @property
    def n_backends(self) -> int:
        return len(self.az_of)

    def replicas_provisioned(self) -> int:
        return sum(self.total_replicas)

    def backend_capacity_rps(self, backend: int) -> float:
        """Unweighted RPS capacity of a backend's healthy replicas."""
        return (self.healthy_replicas[backend]
                * self.config.replica_capacity_rps)

    def healthy_backends_of(self, service: int) -> List[int]:
        return [b for b in self.shards[service]
                if self.backend_up[b] and self.healthy_replicas[b] > 0]

    def backends_in_az(self, az: int) -> List[int]:
        return self._az_backends[az]

    # -- isolation statistics (Fig 19 at scale) ----------------------------
    def shard_stats(self) -> ShardStats:
        services_on: Dict[int, List[int]] = {}
        for service, shard in enumerate(self.shards):
            for backend in shard:
                services_on.setdefault(backend, []).append(service)
        pair_overlap: Dict[Tuple[int, int], int] = {}
        for members in services_on.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    key = (a, b)
                    pair_overlap[key] = pair_overlap.get(key, 0) + 1
        max_overlap = max(pair_overlap.values(), default=0)
        worst_of: Dict[int, int] = {}
        for (a, b), overlap in pair_overlap.items():
            if overlap > worst_of.get(a, 0):
                worst_of[a] = overlap
            if overlap > worst_of.get(b, 0):
                worst_of[b] = overlap
        full_pairs = sum(
            1 for (a, b), overlap in pair_overlap.items()
            if overlap == len(self.shards[a]) == len(self.shards[b]))
        survivors = [len(self.shards[s]) - worst_of.get(s, 0)
                     for s in range(len(self.shards))]
        multi_az = sum(
            1 for shard in self.shards
            if len({self.az_of[b] for b in shard}) > 1)
        return ShardStats(
            fully_overlapping_pairs=full_pairs,
            max_pairwise_overlap=max_overlap,
            min_survivor_backends=min(survivors, default=0),
            multi_az_services=multi_az)
