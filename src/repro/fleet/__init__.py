"""repro.fleet — the fluid-flow scale tier.

The per-session tier (``repro.core`` + ``repro.mesh``) walks one
object per replica and one event per request; it tops out around a
few hundred replicas per affordable run. This package re-renders the
paper's production-scale claims — 10k+ replicas, millions of
concurrent sessions, multi-region — by modeling the mesh as aggregate
flows:

* :mod:`.config` — topology shape + analytic demand, with every cost
  rate derived from the same ``GatewayConfig``/``ReplicaConfig`` the
  testbed tier uses (one source of truth, no constant drift);
* :mod:`.topology` — entity-array backends/AZs and shuffle-shard
  assignment mirroring ``repro.core.sharding`` semantics;
* :mod:`.queueing` — O(1) mean-field M/M/c latency proxies shared by
  both tiers;
* :mod:`.model` — the fluid session-flow integrator, stepped as
  direct calls on the ordinary :class:`~repro.simcore.Simulator`
  agenda (the calendar queue carries it);
* :mod:`.scaling` — aggregate Reuse-vs-New shard growth with the
  paper's Table 4 timing distributions;
* :mod:`.faults` — the topology slice of :class:`~repro.faults.plan.
  FaultPlan` compiled onto entity-array mutations;
* :mod:`.reference` — the discrete per-session twin (Poisson arrivals,
  one departure event per session) that anchors the tier;
* :mod:`.validate` — the harness that makes the fluid tier *earn*
  its speed: both models run identical mid-scale scenarios and must
  agree within declared tolerances, or CI fails.
"""

from .config import FleetConfig, FleetDemand
from .faults import FLEET_FAULT_KINDS, FleetFaultEngine
from .model import FleetCounters, FleetMetrics, FleetModel
from .queueing import (mm_c_wait_s, sojourn_mean_s, sojourn_p99_s,
                       weighted_percentile)
from .reference import SessionDES, poisson
from .scaling import FleetScaler, FleetScalingEvent
from .topology import FleetTopology, ShardStats
from .validate import (DEFAULT_SCENARIOS, Tolerances, ValidationReport,
                       ValidationScenario, compare_tiers, run_validation)

__all__ = [
    "FLEET_FAULT_KINDS",
    "DEFAULT_SCENARIOS",
    "FleetConfig",
    "FleetCounters",
    "FleetDemand",
    "FleetFaultEngine",
    "FleetMetrics",
    "FleetModel",
    "FleetScaler",
    "FleetScalingEvent",
    "FleetTopology",
    "SessionDES",
    "ShardStats",
    "Tolerances",
    "ValidationReport",
    "ValidationScenario",
    "compare_tiers",
    "mm_c_wait_s",
    "poisson",
    "run_validation",
    "sojourn_mean_s",
    "sojourn_p99_s",
    "weighted_percentile",
]
