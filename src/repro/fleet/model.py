"""Fluid-flow fleet model: the mesh as aggregate session flows.

Where the per-session tier walks one object per replica and one event
per request, :class:`FleetModel` keeps a *single float per (service,
shard-slot)* — the expected number of concurrent sessions routed to
that backend — and advances all of them with a fixed-step flow update
scheduled on the ordinary :class:`~repro.simcore.Simulator` agenda via
``call_later``. Session populations follow the M/M/inf fluid limit,
integrated **exactly** over each step (no Euler error)::

    n(t + dt) = n(t) * e^(-dt/theta) + lambda_slot * theta * (1 - e^(-dt/theta))

with ``theta`` the mean session lifetime and ``lambda_slot`` the
per-slot arrival rate over the step. Departures are computed as the
residual ``admitted + n(t) - n(t+dt)``, so the conservation law

    admitted == active + departed + disrupted

holds *by construction* to float round-off — it is asserted after
every fault step (:meth:`check_invariants`) and compared against the
discrete per-session reference in ``fleet/validate.py``.

Everything observable — CPU water levels, the scaling trigger, the
HTTPS request weight, latency proxies — derives from the same
``GatewayConfig``/``ReplicaConfig`` constants as the testbed tier (see
``fleet/config.py``), and every source of randomness is the owning
simulator's seeded RNG, so a fleet run is a pure function of
(config, demand, plan, seed).
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, List, Optional

from ..faults.audit import InvariantViolation
from ..obs.runtime import get_telemetry
from ..simcore import Simulator, TimeSeries
from .config import FleetConfig, FleetDemand
from .queueing import sojourn_mean_s, sojourn_p99_s, weighted_percentile
from .topology import FleetTopology

__all__ = ["FleetCounters", "FleetMetrics", "FleetModel"]

#: Water level reported for a backend with demand but zero capacity.
_WATER_SATURATED = 10.0


class FleetCounters:
    """Session-conservation ledger (floats; the DES tier uses ints)."""

    def __init__(self):
        self.attempted = 0.0    # admitted + rejected
        self.admitted = 0.0     # == active + departed + disrupted
        self.rejected = 0.0     # no healthy backend in the shard
        self.departed = 0.0     # natural session completion
        self.disrupted = 0.0    # dropped by a fault
        self.config_pushes = 0.0  # control-plane fan-out (config recipients)


class FleetMetrics:
    """Sampled trajectories of one region (the exhibit raw material)."""

    def __init__(self):
        self.availability = TimeSeries("availability")
        self.active_sessions = TimeSeries("active_sessions")
        self.offered_rps = TimeSeries("offered_rps")
        self.mean_water = TimeSeries("mean_water")
        self.max_water = TimeSeries("max_water")
        self.latency_mean_ms = TimeSeries("latency_mean_ms")
        self.latency_p99_ms = TimeSeries("latency_p99_ms")
        self.provisioned_replicas = TimeSeries("provisioned_replicas")

    def all_series(self) -> List[TimeSeries]:
        return [self.availability, self.active_sessions, self.offered_rps,
                self.mean_water, self.max_water, self.latency_mean_ms,
                self.latency_p99_ms, self.provisioned_replicas]


class FleetModel:
    """One region's mesh as session flows over a shuffle-sharded fleet.

    The crash/recover/QoD surface (``crash_backend`` ...) is the common
    interface :class:`~repro.fleet.faults.FleetFaultEngine` drives; the
    per-session reference model subclasses this and overrides only the
    arrival/departure mechanics, so faults and aggregation stay
    literally shared between the tiers being compared.
    """

    def __init__(self, sim: Simulator, config: FleetConfig,
                 demand: FleetDemand, region: str = "region-1",
                 warm_start: bool = True):
        self.sim = sim
        self.config = config
        self.demand = demand
        self.region = region
        self.warm_start = warm_start
        self.topology = FleetTopology(config, sim.rng)
        n_backends = self.topology.n_backends
        #: Expected concurrent sessions per (service, shard slot).
        self.slot_sessions: List[array] = [
            array("d", [0.0] * len(shard)) for shard in self.topology.shards]
        #: Reverse index: backend -> [(service, slot), ...].
        self._services_on: List[List] = [[] for _ in range(n_backends)]
        for service, shard in enumerate(self.topology.shards):
            for slot, backend in enumerate(shard):
                self._services_on[backend].append((service, slot))
        #: Query-of-death multiplier on a service's request weight.
        self.qod_factor = [1.0] * config.services
        #: Global capacity multiplier (rolling upgrades shrink it).
        self.capacity_factor = 1.0
        #: Optional demand modulation hook ``fn(service, t) -> factor``.
        self.demand_scale: Optional[Callable[[int, float], float]] = None
        self._weights = [config.service_weight(s)
                         for s in range(config.services)]
        self.counters = FleetCounters()
        self.metrics = FleetMetrics()
        self.scaler = None          # a FleetScaler attaches itself
        self.backend_water = [0.0] * n_backends
        self.backend_sessions = [0.0] * n_backends
        #: Effective mean session lifetime; kept as an attribute (not
        #: read from demand each step) so the validation harness can
        #: mis-parameterize the fluid tier alone to prove its gate trips.
        self._theta = demand.session_duration_s
        self._decay = math.exp(-config.dt_s / self._theta)
        self._tick_index = 0
        self._horizon_s = 0.0
        #: Availability accumulated between metric samples.
        self._window_attempted = 0.0
        self._window_admitted = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self, horizon_s: float) -> None:
        """Schedule flow updates up to ``horizon_s`` on the agenda."""
        if horizon_s < self.config.dt_s:
            raise ValueError(
                f"horizon {horizon_s}s is shorter than one flow step "
                f"({self.config.dt_s}s)")
        self._horizon_s = horizon_s
        if self.warm_start:
            self._seed_equilibrium()
        self._aggregate()
        self._sample(self.sim.now)
        self.sim.call_later(self.config.dt_s, self._tick, None)

    def _seed_equilibrium(self) -> None:
        """Start at the demand's equilibrium instead of an empty fleet."""
        target = self.demand.target_sessions(self.sim.now)
        for service, sessions in enumerate(self.slot_sessions):
            scaled = target
            if self.demand_scale is not None:
                scaled = target * self.demand_scale(service, self.sim.now)
            healthy = self._healthy_slots(service)
            if not healthy:
                continue
            share = scaled / len(healthy)
            for slot in healthy:
                sessions[slot] = share
            self.counters.attempted += scaled
            self.counters.admitted += scaled

    def _healthy_slots(self, service: int) -> List[int]:
        topology = self.topology
        up = topology.backend_up
        replicas = topology.healthy_replicas
        return [slot for slot, b in enumerate(topology.shards[service])
                if up[b] and replicas[b] > 0]

    #: Floor on a slot's arrival share so a saturated backend still
    #: receives a trickle (the LB never blacklists a healthy backend).
    _MIN_HEADROOM = 0.02

    def _slot_weights(self, service: int,
                      healthy: List[int]) -> List[float]:
        """Arrival split across healthy slots: the fluid analogue of
        DNS/LB weight shifts. New sessions land proportionally to each
        backend's CPU headroom (1 - water, floored), which is the
        mean-field limit of the gateway's least-loaded routing — a hot
        backend's share shrinks, so load drains through session
        turnover exactly like an LB weight shift at the testbed tier.
        Water is the previous flow step's aggregate, mirroring the LB's
        one-monitor-interval convergence lag."""
        water = self.backend_water
        shard = self.topology.shards[service]
        floor = self._MIN_HEADROOM
        return [max(floor, 1.0 - water[shard[slot]]) for slot in healthy]

    # -- the flow step -----------------------------------------------------
    def _tick(self, _arg) -> None:
        now = self.sim.now
        dt = self.config.dt_s
        self._advance_flows(now - dt, dt)
        self._aggregate()
        self._tick_index += 1
        if self._tick_index % self.config.sample_every == 0:
            self._sample(now)
        if self.scaler is not None:
            self.scaler.on_tick()
        if now + dt <= self._horizon_s + 1e-9:
            self.sim.call_later(dt, self._tick, None)

    def _advance_flows(self, t0: float, dt: float) -> None:
        demand = self.demand
        decay = self._decay
        theta = self._theta
        base_rate = demand.arrival_rate(t0)
        scale_fn = self.demand_scale
        counters = self.counters
        inflow_unit = theta * (1.0 - decay)
        for service, sessions in enumerate(self.slot_sessions):
            rate = base_rate
            if scale_fn is not None:
                rate = base_rate * scale_fn(service, t0)
            offered = rate * dt
            counters.attempted += offered
            self._window_attempted += offered
            healthy = self._healthy_slots(service)
            before = 0.0
            for slot in range(len(sessions)):
                before += sessions[slot]
                sessions[slot] *= decay
            if not healthy:
                counters.rejected += offered
                counters.departed += before - _total(sessions)
                continue
            counters.admitted += offered
            self._window_admitted += offered
            weights = self._slot_weights(service, healthy)
            share = rate * inflow_unit / sum(weights)
            for slot, weight in zip(healthy, weights):
                sessions[slot] += share * weight
            counters.departed += before + offered - _total(sessions)

    def _aggregate(self) -> None:
        """Fold slot populations into per-backend water levels."""
        config = self.config
        water = self.backend_water
        loads = self.backend_sessions
        for b in range(len(water)):
            water[b] = 0.0
            loads[b] = 0.0
        cost = config.request_cost_s * self.demand.session_rps
        for service, sessions in enumerate(self.slot_sessions):
            shard = self.topology.shards[service]
            weight = self._weights[service] * self.qod_factor[service]
            for slot, backend in enumerate(shard):
                n = sessions[slot]
                if n <= 0.0:
                    continue
                loads[backend] += n
                water[backend] += n * weight * cost
        cores = config.cores_per_replica * self.capacity_factor
        replicas = self.topology.healthy_replicas
        up = self.topology.backend_up
        for b in range(len(water)):
            capacity = replicas[b] * cores if up[b] else 0.0
            if capacity > 0.0:
                water[b] /= capacity
            elif water[b] > 0.0:
                water[b] = _WATER_SATURATED

    # -- sampling ----------------------------------------------------------
    def _sample(self, now: float) -> None:
        metrics = self.metrics
        if self._window_attempted > 0.0:
            availability = self._window_admitted / self._window_attempted
        else:
            availability = 1.0
        self._window_attempted = 0.0
        self._window_admitted = 0.0
        metrics.availability.record(now, availability)
        active = self.active_sessions()
        metrics.active_sessions.record(now, active)
        metrics.offered_rps.record(now, active * self.demand.session_rps)
        waters = [w for b, w in enumerate(self.backend_water)
                  if self.topology.backend_up[b]]
        metrics.mean_water.record(
            now, sum(waters) / len(waters) if waters else 0.0)
        metrics.max_water.record(now, max(waters, default=0.0))
        mean_ms, p99_ms = self._latency_proxy()
        metrics.latency_mean_ms.record(now, mean_ms)
        metrics.latency_p99_ms.record(now, p99_ms)
        metrics.provisioned_replicas.record(
            now, float(self.topology.replicas_provisioned()))

    def _latency_proxy(self):
        """Session-weighted mean and p99 sojourn across backends, ms."""
        config = self.config
        service_s = config.request_cost_s
        cores = config.cores_per_replica
        replicas = self.topology.healthy_replicas
        total_weight = 0.0
        mean_acc = 0.0
        p99s: List[float] = []
        weights: List[float] = []
        for b, sessions in enumerate(self.backend_sessions):
            if sessions <= 1e-9:
                continue
            c = replicas[b] * cores
            if c < 1:
                continue
            rho = self.backend_water[b]
            mean_acc += sessions * sojourn_mean_s(rho, c, service_s)
            total_weight += sessions
            p99s.append(sojourn_p99_s(rho, c, service_s))
            weights.append(sessions)
        if total_weight <= 0.0:
            return (service_s * 1e3, service_s * 1e3)
        mean_s = mean_acc / total_weight
        p99_s = weighted_percentile(p99s, weights, 99.0)
        return (mean_s * 1e3, p99_s * 1e3)

    # -- fault interface (shared with the per-session reference) -----------
    def crash_backend(self, backend: int) -> float:
        """Take a backend down, dropping its sessions; returns dropped."""
        topology = self.topology
        if not topology.backend_up[backend]:
            return 0.0
        topology.backend_up[backend] = 0
        dropped = self._drop_backend_sessions(backend)
        self._aggregate()
        return dropped

    def recover_backend(self, backend: int) -> None:
        topology = self.topology
        topology.backend_up[backend] = 1
        topology.healthy_replicas[backend] = topology.total_replicas[backend]
        self._aggregate()

    def crash_az(self, az: int) -> float:
        dropped = 0.0
        for backend in self.topology.backends_in_az(az):
            dropped += self.crash_backend(backend)
        return dropped

    def recover_az(self, az: int) -> None:
        for backend in self.topology.backends_in_az(az):
            self.recover_backend(backend)

    def crash_replica(self, backend: int) -> float:
        """Kill one replica; a backend at zero replicas drops sessions."""
        topology = self.topology
        if topology.healthy_replicas[backend] <= 0:
            return 0.0
        topology.healthy_replicas[backend] -= 1
        dropped = 0.0
        if topology.healthy_replicas[backend] == 0:
            dropped = self._drop_backend_sessions(backend)
        self._aggregate()
        return dropped

    def recover_replica(self, backend: int) -> None:
        topology = self.topology
        if topology.healthy_replicas[backend] < topology.total_replicas[backend]:
            topology.healthy_replicas[backend] += 1
        self._aggregate()

    def set_qod(self, service: int, factor: float) -> None:
        """Query-of-death: multiply the service's request weight."""
        if factor <= 0:
            raise ValueError(f"qod factor must be > 0, got {factor}")
        self.qod_factor[service] = factor
        self._aggregate()

    def clear_qod(self, service: int) -> None:
        self.qod_factor[service] = 1.0
        self._aggregate()

    def _drop_backend_sessions(self, backend: int) -> float:
        dropped = 0.0
        for service, slot in self._services_on[backend]:
            dropped += self._clear_slot(service, slot)
        self.counters.disrupted += dropped
        return dropped

    def _clear_slot(self, service: int, slot: int) -> float:
        sessions = self.slot_sessions[service]
        dropped = sessions[slot]
        sessions[slot] = 0.0
        return dropped

    # -- growth (the scaler extends shards through these) ------------------
    def on_backend_added(self, backend: int) -> None:
        self.backend_water.append(0.0)
        self.backend_sessions.append(0.0)
        self._services_on.append([])

    def extend_service(self, service: int, backend: int) -> None:
        """Add a shard slot on ``backend`` and count the config fan-out."""
        self.topology.extend_shard(service, backend)
        self._append_slot(service)
        self._services_on[backend].append(
            (service, len(self.topology.shards[service]) - 1))
        # Extending a combination re-pushes the service's route config
        # to every replica of every member backend (the control-plane
        # fan-out the paper's push pipeline absorbs).
        pushes = sum(self.topology.total_replicas[b]
                     for b in self.topology.shards[service])
        self.counters.config_pushes += pushes

    def _append_slot(self, service: int) -> None:
        self.slot_sessions[service].append(0.0)

    # -- views & invariants ------------------------------------------------
    def active_sessions(self) -> float:
        return sum(_total(sessions) for sessions in self.slot_sessions)

    def overall_availability(self) -> float:
        counters = self.counters
        if counters.attempted <= 0:
            return 1.0
        return counters.admitted / counters.attempted

    def hottest_water(self, service: int) -> float:
        return max((self.backend_water[b]
                    for b in self.topology.shards[service]), default=0.0)

    def check_invariants(self, context: str = "") -> None:
        counters = self.counters
        active = self.active_sessions()
        residual = counters.admitted - (
            active + counters.departed + counters.disrupted)
        tolerance = 1e-6 * max(1.0, counters.admitted)
        if abs(residual) > tolerance:
            raise InvariantViolation(
                "fleet_session_conservation",
                f"admitted {counters.admitted:.6f} != active {active:.6f} "
                f"+ departed {counters.departed:.6f} "
                f"+ disrupted {counters.disrupted:.6f} "
                f"(residual {residual:.3e})", context)
        flows = counters.attempted - (counters.admitted + counters.rejected)
        if abs(flows) > tolerance:
            raise InvariantViolation(
                "fleet_admission_split",
                f"attempted {counters.attempted:.6f} != admitted "
                f"{counters.admitted:.6f} + rejected "
                f"{counters.rejected:.6f}", context)
        topology = self.topology
        for b in range(topology.n_backends):
            if not 0 <= topology.healthy_replicas[b] <= topology.total_replicas[b]:
                raise InvariantViolation(
                    "fleet_replica_bounds",
                    f"backend {b} has {topology.healthy_replicas[b]} healthy "
                    f"of {topology.total_replicas[b]} replicas", context)
        for sessions in self.slot_sessions:
            for value in sessions:
                if value < -1e-9:
                    raise InvariantViolation(
                        "fleet_nonnegative_sessions",
                        f"negative slot population {value}", context)

    def publish_telemetry(self) -> None:
        """Push run totals into the ambient telemetry registry."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        counters = self.counters
        labels = {"region": self.region}
        telemetry.inc("fleet_sessions_attempted_total",
                      counters.attempted, **labels)
        telemetry.inc("fleet_sessions_admitted_total",
                      counters.admitted, **labels)
        telemetry.inc("fleet_sessions_rejected_total",
                      counters.rejected, **labels)
        telemetry.inc("fleet_sessions_departed_total",
                      counters.departed, **labels)
        telemetry.inc("fleet_sessions_disrupted_total",
                      counters.disrupted, **labels)
        telemetry.inc("fleet_config_pushes_total",
                      counters.config_pushes, **labels)
        telemetry.set("fleet_active_sessions",
                      self.active_sessions(), **labels)
        telemetry.set("fleet_replicas_provisioned",
                      float(self.topology.replicas_provisioned()), **labels)


def _total(values) -> float:
    total = 0.0
    for value in values:
        total += value
    return total
