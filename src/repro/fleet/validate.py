"""Validation harness: the fluid tier against its per-session twin.

The fleet tier earns the right to claim O(1M)-session results by
agreeing with the discrete per-session reference at scales where both
are affordable (~200 replicas / ~20k concurrent sessions). Each
:class:`ValidationScenario` runs **both** models on identical topology,
demand, fault plan, and seed, then compares trajectory summaries —
overall availability, steady-window session population, the latency
proxies, fault-disrupted totals — against declared tolerances. The
tolerances are not hand-waves: the reference is stochastic, so each
bound is set a few multiples above the Poisson noise floor at the
scenario's population (sqrt(20k)/20k ~ 0.7% relative), and the suite
includes a deliberately mis-parameterized fluid model test proving the
gate actually trips (``tests/test_fleet_validate.py``).

``python -m repro.fleet.validate`` runs the default scenario set and
exits nonzero on any tolerance violation — the CI ``fleet-smoke`` job
runs exactly this.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults.plan import Fault, FaultPlan
from ..simcore import Simulator
from .config import FleetConfig, FleetDemand
from .faults import FleetFaultEngine
from .model import FleetModel
from .reference import SessionDES

__all__ = [
    "Tolerances",
    "ValidationScenario",
    "MetricCheck",
    "ValidationReport",
    "compare_tiers",
    "run_validation",
    "DEFAULT_SCENARIOS",
]


@dataclass(frozen=True)
class Tolerances:
    """Acceptable fluid-vs-reference disagreement per metric.

    Relative bounds are set ~5x the reference's own Poisson noise
    floor at 20k sessions (0.7%), so they fail on modeling errors, not
    on unlucky seeds; absolute availability allows one lost percentage
    point, far above the noise of ~1M admission events per scenario.
    The p99 bound is wider than the mean's: the fluid tier has *zero*
    cross-backend dispersion by construction, so it systematically
    underestimates the finite-N reference's queueing tail near the
    M/M/c knee — ~11x the reference's per-backend occupancy CV
    propagates into the tail via the Sakasegawa exponent.
    """

    availability_abs: float = 0.01
    sessions_rel: float = 0.05
    latency_mean_rel: float = 0.10
    latency_p99_rel: float = 0.35
    disrupted_rel: float = 0.15
    conservation_rel: float = 1e-6


@dataclass(frozen=True)
class ValidationScenario:
    """One overlapping-scale workload both tiers can afford."""

    name: str
    azs: int = 3
    backends_per_az: int = 34
    services: int = 25
    mean_sessions: float = 3200.0
    amplitude: float = 0.0
    period_s: float = 3600.0
    session_duration_s: float = 600.0
    #: Heavy sessions so the mid-scale fleet runs at meaningful water
    #: (~0.35 mean): an idle fleet would make the latency-agreement
    #: checks vacuously true at the pure-service-time floor. The split
    #: (many light sessions rather than few heavy ones) keeps the
    #: reference's per-backend occupancy CV under ~4%, which the tail
    #: tolerance budget above assumes.
    session_rps: float = 37.5
    horizon_s: float = 1800.0
    dt_s: float = 1.0
    sample_every: int = 10
    seed: int = 7
    plan: Optional[FaultPlan] = None
    tolerances: Tolerances = field(default_factory=Tolerances)

    def config(self) -> FleetConfig:
        return FleetConfig(azs=self.azs, backends_per_az=self.backends_per_az,
                           services=self.services, dt_s=self.dt_s,
                           sample_every=self.sample_every)

    def demand(self) -> FleetDemand:
        return FleetDemand(mean_sessions=self.mean_sessions,
                           amplitude=self.amplitude, period_s=self.period_s,
                           session_duration_s=self.session_duration_s,
                           session_rps=self.session_rps)


@dataclass
class MetricCheck:
    """One compared metric and its verdict."""

    metric: str
    fluid: float
    reference: float
    delta: float          # abs or relative, per `mode`
    tolerance: float
    mode: str             # "abs" | "rel"
    ok: bool


@dataclass
class ValidationReport:
    scenario: str
    checks: List[MetricCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_json(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "checks": [vars(check) for check in self.checks],
        }


#: Overrides that deliberately mis-parameterize the *fluid* model only
#: (the reference stays truthful). Used by tests to prove the gate has
#: teeth: a fluid model whose arrival rate or session lifetime is off
#: by 2x must fail validation.
_FLUID_OVERRIDE_KEYS = ("arrival_rate_factor", "session_duration_factor")


def _run_tier(scenario: ValidationScenario, tier: str,
              fluid_overrides: Optional[Dict[str, float]] = None
              ) -> Dict[str, float]:
    sim = Simulator(seed=scenario.seed)
    config = scenario.config()
    demand = scenario.demand()
    if tier == "fluid":
        model: FleetModel = FleetModel(sim, config, demand)
        if fluid_overrides:
            _apply_overrides(model, fluid_overrides)
    elif tier == "sessions":
        model = SessionDES(sim, config, demand)
    else:
        raise ValueError(f"unknown tier {tier!r}")
    if scenario.plan is not None:
        FleetFaultEngine(sim, model).arm(scenario.plan)
    model.start(scenario.horizon_s)
    sim.run(until=scenario.horizon_s)
    return _summarize(model, scenario)


def _apply_overrides(model: FleetModel,
                     overrides: Dict[str, float]) -> None:
    for key in overrides:
        if key not in _FLUID_OVERRIDE_KEYS:
            raise ValueError(f"unknown fluid override {key!r}; known: "
                             + ", ".join(_FLUID_OVERRIDE_KEYS))
    factor = overrides.get("arrival_rate_factor")
    if factor is not None:
        model.demand_scale = _ConstantScale(factor)
    duration_factor = overrides.get("session_duration_factor")
    if duration_factor is not None:
        model._theta = model.demand.session_duration_s * duration_factor
        model._decay = math.exp(-model.config.dt_s / model._theta)


class _ConstantScale:
    """Picklable constant demand multiplier (a lambda would not be)."""

    def __init__(self, factor: float):
        self.factor = factor

    def __call__(self, service: int, t: float) -> float:
        return self.factor


def _summarize(model: FleetModel,
               scenario: ValidationScenario) -> Dict[str, float]:
    metrics = model.metrics
    counters = model.counters
    half = scenario.horizon_s / 2.0
    steady = [v for t, v in zip(metrics.active_sessions.times,
                                metrics.active_sessions.values) if t >= half]
    lat_mean = [v for t, v in zip(metrics.latency_mean_ms.times,
                                  metrics.latency_mean_ms.values) if t >= half]
    lat_p99 = [v for t, v in zip(metrics.latency_p99_ms.times,
                                 metrics.latency_p99_ms.values) if t >= half]
    active = model.active_sessions()
    residual = counters.admitted - (
        active + counters.departed + counters.disrupted)
    return {
        "availability": model.overall_availability(),
        "steady_sessions": _mean(steady),
        "latency_mean_ms": _mean(lat_mean),
        "latency_p99_ms": _mean(lat_p99),
        "disrupted": counters.disrupted,
        "admitted": counters.admitted,
        "conservation_residual_rel": (
            abs(residual) / max(1.0, counters.admitted)),
    }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def compare_tiers(scenario: ValidationScenario,
                  fluid_overrides: Optional[Dict[str, float]] = None
                  ) -> ValidationReport:
    """Run both tiers on one scenario and check every tolerance."""
    fluid = _run_tier(scenario, "fluid", fluid_overrides)
    reference = _run_tier(scenario, "sessions")
    tol = scenario.tolerances
    checks = [
        _abs_check("availability", fluid, reference, tol.availability_abs),
        _rel_check("steady_sessions", fluid, reference, tol.sessions_rel),
        _rel_check("latency_mean_ms", fluid, reference, tol.latency_mean_rel),
        _rel_check("latency_p99_ms", fluid, reference, tol.latency_p99_rel),
    ]
    if scenario.plan is not None:
        checks.append(_rel_check("disrupted", fluid, reference,
                                 tol.disrupted_rel))
    for tier_name, summary in (("fluid", fluid), ("reference", reference)):
        residual = summary["conservation_residual_rel"]
        checks.append(MetricCheck(
            metric=f"conservation_{tier_name}", fluid=residual,
            reference=0.0, delta=residual, tolerance=tol.conservation_rel,
            mode="abs", ok=residual <= tol.conservation_rel))
    return ValidationReport(scenario=scenario.name, checks=checks)


def _abs_check(metric: str, fluid: Dict[str, float],
               reference: Dict[str, float], tolerance: float) -> MetricCheck:
    delta = abs(fluid[metric] - reference[metric])
    return MetricCheck(metric=metric, fluid=fluid[metric],
                       reference=reference[metric], delta=delta,
                       tolerance=tolerance, mode="abs",
                       ok=delta <= tolerance)


def _rel_check(metric: str, fluid: Dict[str, float],
               reference: Dict[str, float], tolerance: float) -> MetricCheck:
    base = max(abs(reference[metric]), 1e-9)
    delta = abs(fluid[metric] - reference[metric]) / base
    return MetricCheck(metric=metric, fluid=fluid[metric],
                       reference=reference[metric], delta=delta,
                       tolerance=tolerance, mode="rel",
                       ok=delta <= tolerance)


def _chaos_plan() -> FaultPlan:
    """AZ loss + backend crash + query-of-death, all with recoveries."""
    return FaultPlan.of(
        Fault(kind="az_crash", at=600.0, target="az:1", duration_s=300.0),
        Fault(kind="backend_crash", at=1200.0, target="backend:3",
              duration_s=200.0),
        Fault(kind="query_of_death", at=1500.0, target="service:2",
              duration_s=150.0, param=3.0),
    )


#: >= 3 overlapping-scale scenarios, one of them chaos (issue floor).
DEFAULT_SCENARIOS: Tuple[ValidationScenario, ...] = (
    # 3 AZ x 34 backends x 2 replicas = 204 replicas; 25 x 3200 = 80k
    # concurrent sessions — affordable for the per-session twin.
    ValidationScenario(name="steady_midscale"),
    ValidationScenario(name="diurnal_midscale", amplitude=0.3,
                       period_s=3600.0, horizon_s=3600.0, seed=11),
    ValidationScenario(name="chaos_az", horizon_s=2400.0, seed=13,
                       plan=_chaos_plan()),
)


def run_validation(scenarios: Optional[List[ValidationScenario]] = None,
                   fluid_overrides: Optional[Dict[str, float]] = None
                   ) -> Tuple[bool, List[ValidationReport]]:
    reports = [compare_tiers(scenario, fluid_overrides)
               for scenario in (scenarios or list(DEFAULT_SCENARIOS))]
    return all(report.ok for report in reports), reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.validate",
        description="Validate the fluid fleet tier against the "
                    "per-session reference model.")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only the named scenario (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write reports as JSON")
    options = parser.parse_args(argv)
    scenarios = list(DEFAULT_SCENARIOS)
    if options.list:
        for scenario in scenarios:
            chaos = " [chaos]" if scenario.plan is not None else ""
            print(f"{scenario.name}{chaos}: {scenario.azs} AZ x "
                  f"{scenario.backends_per_az} backends, "
                  f"{scenario.services} services x "
                  f"{scenario.mean_sessions:g} sessions, "
                  f"{scenario.horizon_s:g}s horizon")
        return 0
    if options.scenario:
        by_name = {scenario.name: scenario for scenario in scenarios}
        unknown = [name for name in options.scenario if name not in by_name]
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(unknown)}; "
                         f"known: {', '.join(by_name)}")
        scenarios = [by_name[name] for name in options.scenario]
    ok, reports = run_validation(scenarios)
    for report in reports:
        status = "PASS" if report.ok else "FAIL"
        print(f"[{status}] {report.scenario}")
        for check in report.checks:
            mark = "ok " if check.ok else "BAD"
            print(f"  {mark} {check.metric:<24} fluid={check.fluid:.4f} "
                  f"ref={check.reference:.4f} delta={check.delta:.4f} "
                  f"({check.mode} tol {check.tolerance:g})")
    if options.json:
        with open(options.json, "w", encoding="utf-8") as handle:
            json.dump([report.to_json() for report in reports], handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
