"""Per-session discrete reference model for validating the fluid tier.

:class:`SessionDES` subclasses :class:`~repro.fleet.model.FleetModel`
and overrides *only* the arrival/departure mechanics: sessions are
integer-counted, arrivals are Poisson draws per flow step, and every
admitted session schedules its own exponential departure event on the
simulator agenda. Topology, shuffle sharding, water-level aggregation,
the latency proxy, the fault surface, and the conservation ledger are
all inherited **unchanged** — so when ``fleet/validate.py`` compares
the two models on the same scenario and seed, any disagreement beyond
stochastic noise is a defect in the fluid approximation itself, not in
shared plumbing.

Disrupted-session bookkeeping uses per-slot generation counters
instead of event cancellation: a backend crash bumps the slot's
generation, and a departure event that arrives carrying a stale
generation is a no-op (its session was already counted as disrupted).
This keeps the agenda append-only — the same discipline the timeout
slab uses — and costs O(1) per fault regardless of session count.
"""

from __future__ import annotations

import math
import random
from array import array
from typing import List

from ..simcore import Simulator
from .config import FleetConfig, FleetDemand
from .model import FleetModel

__all__ = ["SessionDES", "poisson"]

#: Above this mean, per-unit Knuth sampling costs more than the normal
#: approximation's bias (O(1/sqrt(lam)) relative) is worth.
_POISSON_NORMAL_CUTOVER = 30.0


def poisson(rng: random.Random, lam: float) -> int:
    """Poisson draw without numpy: Knuth for small means, normal above."""
    if lam <= 0.0:
        return 0
    if lam < _POISSON_NORMAL_CUTOVER:
        limit = math.exp(-lam)
        k = 0
        product = rng.random()
        while product > limit:
            k += 1
            product *= rng.random()
        return k
    return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))


class SessionDES(FleetModel):
    """The fluid model's discrete twin: one event per session."""

    def __init__(self, sim: Simulator, config: FleetConfig,
                 demand: FleetDemand, region: str = "region-1",
                 warm_start: bool = True):
        super().__init__(sim, config, demand, region=region,
                         warm_start=warm_start)
        #: Generation per (service, slot): stale departures no-op.
        self._slot_gen: List[array] = [
            array("i", [0] * len(shard)) for shard in self.topology.shards]

    # -- session mechanics (the only overridden physics) -------------------
    def _seed_equilibrium(self) -> None:
        target = self.demand.target_sessions(self.sim.now)
        for service in range(self.config.services):
            scaled = target
            if self.demand_scale is not None:
                scaled = target * self.demand_scale(service, self.sim.now)
            count = poisson(self.sim.rng, scaled)
            self.counters.attempted += count
            healthy = self._healthy_slots(service)
            if not healthy:
                self.counters.rejected += count
                continue
            self.counters.admitted += count
            for _ in range(count):
                self._admit(service, healthy)

    def _advance_flows(self, t0: float, dt: float) -> None:
        rng = self.sim.rng
        base_rate = self.demand.arrival_rate(t0)
        scale_fn = self.demand_scale
        counters = self.counters
        for service in range(self.config.services):
            rate = base_rate
            if scale_fn is not None:
                rate = base_rate * scale_fn(service, t0)
            arrivals = poisson(rng, rate * dt)
            if arrivals == 0:
                continue
            counters.attempted += arrivals
            self._window_attempted += arrivals
            healthy = self._healthy_slots(service)
            if not healthy:
                counters.rejected += arrivals
                continue
            counters.admitted += arrivals
            self._window_admitted += arrivals
            for _ in range(arrivals):
                self._admit(service, healthy)

    def _admit(self, service: int, healthy: List[int]) -> None:
        """Place one session by the same headroom-weighted LB split the
        fluid tier integrates (``FleetModel._slot_weights``), drawn
        discretely from the shared seeded RNG."""
        rng = self.sim.rng
        if len(healthy) == 1:
            slot = healthy[0]
        else:
            weights = self._slot_weights(service, healthy)
            slot = rng.choices(healthy, weights=weights)[0]
        self.slot_sessions[service][slot] += 1.0
        lifetime = rng.expovariate(1.0 / self.demand.session_duration_s)
        self.sim.call_later(
            lifetime, self._depart,
            (service, slot, self._slot_gen[service][slot]))

    def _depart(self, token) -> None:
        service, slot, generation = token
        if generation != self._slot_gen[service][slot]:
            return      # session was disrupted by a fault; already counted
        self.slot_sessions[service][slot] -= 1.0
        self.counters.departed += 1.0

    # -- fault/growth hooks that must keep generations in sync -------------
    def _clear_slot(self, service: int, slot: int) -> float:
        dropped = super()._clear_slot(service, slot)
        self._slot_gen[service][slot] += 1
        return dropped

    def _append_slot(self, service: int) -> None:
        super()._append_slot(service)
        self._slot_gen[service].append(0)
