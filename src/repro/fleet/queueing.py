"""Mean-field M/M/c queueing approximations shared by both tiers.

The fleet tier never simulates individual requests, so request latency
is a *proxy*: a closed-form function of each backend's utilization,
healthy core count, and per-request service time. The per-session
reference model in ``fleet/reference.py`` computes the **same
functions** over its discrete session counts — the validation harness
then compares trajectories, so what is being validated is the session/
utilization dynamics, not two different latency formulas.

Mean waiting time uses Sakasegawa's G/G/c approximation specialized to
M/M/c::

    Wq(rho, c) = (S / c) * rho^(sqrt(2 (c + 1)) - 1) / (1 - rho)

which is exact for c = 1, asymptotically exact as rho -> 1, and O(1)
to evaluate — the Erlang-C recurrence would cost O(c) per backend per
flow step, which at 10k replicas dominates the whole tier ("Dissecting
Service Mesh Overheads" motivates keeping per-hop cost terms, not
per-hop queues). The tail proxy inverts the M/M/c waiting-time tail
``P(Wq > t) = Pw * exp(-(c/S)(1 - rho) t)`` at the 99th percentile,
with ``Pw`` implied by Sakasegawa's Wq.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "mm_c_wait_s",
    "sojourn_mean_s",
    "sojourn_p99_s",
    "weighted_percentile",
]

#: Utilization ceiling for the closed forms: an overloaded backend's
#: latency proxy saturates here instead of diverging (the paper's
#: water-level controller never lets steady state reach this anyway).
RHO_CAP = 0.995


def mm_c_wait_s(rho: float, c: int, service_s: float) -> float:
    """Mean queueing delay (seconds) of an M/M/c at utilization rho."""
    if c < 1 or service_s <= 0:
        raise ValueError(f"need c >= 1 and service_s > 0, "
                         f"got c={c}, service_s={service_s}")
    if rho <= 0:
        return 0.0
    rho = min(rho, RHO_CAP)
    exponent = math.sqrt(2.0 * (c + 1)) - 1.0
    return (service_s / c) * (rho ** exponent) / (1.0 - rho)


def sojourn_mean_s(rho: float, c: int, service_s: float) -> float:
    """Mean request sojourn (service + queueing), seconds."""
    return service_s + mm_c_wait_s(rho, c, service_s)


def sojourn_p99_s(rho: float, c: int, service_s: float) -> float:
    """99th-percentile sojourn proxy, seconds.

    From the M/M/c tail ``P(Wq > t) = Pw e^{-(c/S)(1-rho) t}`` with the
    delay probability ``Pw`` implied by the Sakasegawa mean:
    ``Wq = Pw S / (c (1 - rho))``. When ``Pw <= 0.01`` fewer than 1%%
    of requests queue at all and the p99 is pure service time.
    """
    wait = mm_c_wait_s(rho, c, service_s)
    if wait <= 0.0:
        return service_s
    rho = min(rho, RHO_CAP)
    scale = service_s / (c * (1.0 - rho))      # mean of the exp tail
    p_wait = wait / scale                      # implied P(Wq > 0)
    if p_wait <= 0.01:
        return service_s
    return service_s + scale * math.log(100.0 * p_wait)


def weighted_percentile(values: Sequence[float], weights: Sequence[float],
                        p: float) -> float:
    """Weighted percentile by cumulative weight (p in [0, 100])."""
    if not 0.0 <= p <= 100.0:
        # NaN fails both comparisons and lands here too.
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    pairs: List[Tuple[float, float]] = sorted(
        (v, w) for v, w in zip(values, weights) if w > 0)
    if not pairs:
        return 0.0
    total = sum(w for _v, w in pairs)
    threshold = total * p / 100.0
    running = 0.0
    for value, weight in pairs:
        running += weight
        if running >= threshold:
            return value
    return pairs[-1][0]
