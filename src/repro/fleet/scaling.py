"""Aggregate Reuse-vs-New scaling on the fluid fleet.

Mirrors :class:`repro.core.scaling.ScalingEngine` semantics — trip on
water above the safety threshold, prefer *reusing* a cold backend
already deployed in the hot AZ, fall back to deploying a *new* one,
with lognormal execution times anchored on the paper's Table 4 — but
drives the fluid model's entity arrays instead of per-replica objects,
and uses ``Simulator.call_later`` instead of a generator process so a
10k-replica region never materializes a scaling coroutine.

Completion extends the service's shuffle-shard combination, which the
model translates into (a) a new zero-population slot that the next
flow step starts filling (the fluid analogue of LB weight shift /
session turnover draining the hot backend) and (b) a control-plane
config push to every replica of the grown combination, accumulated in
``counters.config_pushes`` — the aggregate push fan-out the paper's
control plane absorbs during daily operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core.scaling import ScalingTimings
from ..simcore import Simulator
from ..simcore.rng import lognormal_from_median
from .model import FleetModel

__all__ = ["FleetScaler", "FleetScalingEvent"]


@dataclass
class FleetScalingEvent:
    """One aggregate scaling operation (the Fig 17/18 unit, at scale)."""

    service_id: int
    kind: str                 # "reuse" | "new"
    triggered_at: float
    finished_at: float = 0.0
    below_threshold_at: float = 0.0
    backend: int = -1

    @property
    def execution_s(self) -> float:
        return self.finished_at - self.triggered_at

    @property
    def settle_s(self) -> float:
        return self.below_threshold_at - self.triggered_at


class FleetScaler:
    """Watches fluid water levels and grows shards Reuse-first."""

    def __init__(self, sim: Simulator, model: FleetModel,
                 timings: Optional[ScalingTimings] = None,
                 reuse_water_threshold: float = 0.2,
                 target_water: Optional[float] = None,
                 cooldown_s: float = 300.0):
        self.sim = sim
        self.model = model
        self.timings = timings or ScalingTimings()
        self.reuse_water_threshold = reuse_water_threshold
        #: Water level at which an operation counts as settled
        #: (Table 4's "below threshold"); default: the safety threshold
        #: that triggered it. The testbed engine drains to 0.35, but a
        #: fleet surge can outlast the drain — measuring against the
        #: trigger threshold keeps settle times comparable to Table 4.
        self.target_water = target_water
        #: Minimum gap between scaling operations on one service: a
        #: completed grow needs session turnover (theta = minutes) to
        #: shift load onto the new slot, so immediately re-triggering
        #: on the still-hot water would thrash (the paper's monitor
        #: evaluates on a minutes-scale window for the same reason).
        self.cooldown_s = cooldown_s
        self.events: List[FleetScalingEvent] = []
        self._in_flight: Set[int] = set()
        self._settling: List[FleetScalingEvent] = []
        self._cooldown_until: Dict[int, float] = {}
        model.scaler = self

    # -- per-flow-step hook (called by FleetModel._tick) -------------------
    def on_tick(self) -> None:
        self._check_settled()
        model = self.model
        threshold = model.config.safety_threshold
        water = model.backend_water
        up = model.topology.backend_up
        now = self.sim.now
        for backend in range(len(water)):
            if not up[backend] or water[backend] <= threshold:
                continue
            service = self._hottest_service_on(backend)
            if service is None or service in self._in_flight:
                continue
            if now < self._cooldown_until.get(service, 0.0):
                continue
            self._trigger(service, backend)

    def _check_settled(self) -> None:
        if not self._settling:
            return
        target = self.target_water
        if target is None:
            target = self.model.config.safety_threshold
        # One hottest-water evaluation per distinct service, not per
        # pending event — settle checks run every flow step.
        hottest: Dict[int, float] = {}
        for event in self._settling:
            service = event.service_id
            if service not in hottest:
                hottest[service] = self.model.hottest_water(service)
        still: List[FleetScalingEvent] = []
        for event in self._settling:
            if hottest[event.service_id] <= target:
                event.below_threshold_at = self.sim.now
            else:
                still.append(event)
        self._settling = still

    def _hottest_service_on(self, backend: int) -> Optional[int]:
        best: Optional[int] = None
        best_load = 0.0
        for service, slot in self.model._services_on[backend]:
            load = (self.model.slot_sessions[service][slot]
                    * self.model._weights[service]
                    * self.model.qod_factor[service])
            if load > best_load:
                best_load = load
                best = service
        return best

    # -- strategy selection (Reuse over New, like the paper) ---------------
    def _trigger(self, service: int, hot_backend: int) -> None:
        rng = self.sim.rng
        timings = self.timings
        reusable = self._find_reusable(service, hot_backend)
        if reusable is not None:
            kind, backend = "reuse", reusable
            delay = lognormal_from_median(
                rng, timings.reuse_median_s, timings.reuse_sigma)
        else:
            kind, backend = "new", -1
            delay = lognormal_from_median(
                rng, timings.new_median_s, timings.new_sigma)
        event = FleetScalingEvent(service_id=service, kind=kind,
                                  triggered_at=self.sim.now, backend=backend)
        self.events.append(event)
        self._in_flight.add(service)
        self.sim.call_later(delay, self._complete, event)

    def _find_reusable(self, service: int,
                       hot_backend: int) -> Optional[int]:
        """Coldest healthy backend in the hot AZ not already in the shard."""
        model = self.model
        topology = model.topology
        az = topology.az_of[hot_backend]
        shard = set(topology.shards[service])
        best: Optional[int] = None
        best_water = self.reuse_water_threshold
        for backend in topology.backends_in_az(az):
            if backend in shard or not topology.backend_up[backend]:
                continue
            if topology.healthy_replicas[backend] < 1:
                continue
            water = model.backend_water[backend]
            if water < best_water:
                best_water = water
                best = backend
        return best

    # -- completion --------------------------------------------------------
    def _complete(self, event: FleetScalingEvent) -> None:
        model = self.model
        topology = model.topology
        backend = event.backend
        if event.kind == "new":
            az = topology.az_of[self._hot_backend_of(event.service_id)]
            backend = topology.add_backend(az)
            model.on_backend_added(backend)
            event.backend = backend
        if backend in topology.shards[event.service_id]:
            # A concurrent grow already added it; record completion only.
            event.finished_at = self.sim.now
        else:
            model.extend_service(event.service_id, backend)
            event.finished_at = self.sim.now
        self._in_flight.discard(event.service_id)
        self._cooldown_until[event.service_id] = (
            self.sim.now + self.cooldown_s)
        self._settling.append(event)

    def _hot_backend_of(self, service: int) -> int:
        shard = self.model.topology.shards[service]
        return max(shard, key=lambda b: self.model.backend_water[b])

    # -- reporting ---------------------------------------------------------
    def summary(self) -> dict:
        reuse = [e for e in self.events if e.kind == "reuse"]
        new = [e for e in self.events if e.kind == "new"]
        return {
            "total": len(self.events),
            "reuse": len(reuse),
            "new": len(new),
            "reuse_fraction": (len(reuse) / len(self.events)
                               if self.events else 0.0),
        }
