"""Rapid intervention: sandbox migration and throttling (§6.2).

* **Lossy migration** (gateway protection, Case #1): reset every session
  of the anomalous service and rebuild it inside a sandbox backend —
  completes within seconds, with a visible session reset.
* **Lossless migration** (Case #2): steer *new* sessions to the sandbox
  while existing sessions drain naturally; completion tracks the flow
  timeout, median ≈ 20 minutes.
* **Throttling** (user-app protection, Case #3): rate limit at the
  redirector, then relax gradually as the customer's cluster scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simcore import Simulator
from ..simcore.rng import lognormal_from_median
from .backend import Backend
from .gateway import MeshGateway

__all__ = ["MigrationRecord", "SandboxManager"]


@dataclass
class MigrationRecord:
    """One sandbox migration (lossy or lossless)."""

    service_id: int
    mode: str                  # "lossy" | "lossless"
    started_at: float
    completed_at: float = 0.0
    sessions_reset: int = 0
    sandbox_backend: str = ""

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at


class SandboxManager:
    """Quarantine backends + the two migration modes + throttling."""

    #: Lossy migration rebuilds sessions in the sandbox "within seconds".
    LOSSY_MEDIAN_S = 3.0
    #: Lossless completion is bounded by flow timeout, median ≈ 20 min.
    LOSSLESS_MEDIAN_S = 20.0 * 60.0

    def __init__(self, sim: Simulator, gateway: MeshGateway):
        self.sim = sim
        self.gateway = gateway
        self._sandboxes: Dict[str, Backend] = {}
        self._in_flight: set = set()
        self.records: List[MigrationRecord] = []

    def _claim(self, service_id: int) -> bool:
        """One migration per service: duplicates (several backends
        alerting on the same flood) coalesce into the first."""
        if (service_id in self.gateway.sandboxed
                or service_id in self._in_flight):
            return False
        self._in_flight.add(service_id)
        return True

    def _sandbox_for_az(self, az: str) -> Backend:
        """One dedicated sandbox backend per AZ, created on demand."""
        sandbox = self._sandboxes.get(az)
        if sandbox is None:
            sandbox = self.gateway.deploy_backend(az)
            # Keep sandboxes out of the shuffle-shard pool: they exist
            # only to absorb quarantined traffic.
            self.gateway.backends_by_az[az].remove(sandbox)
            self._sandboxes[az] = sandbox
        return sandbox

    def _service_az(self, service_id: int) -> str:
        backends = self.gateway.service_backends.get(service_id)
        if not backends:
            raise KeyError(f"service {service_id} has no backends")
        return backends[0].az

    def _current_sessions(self, service_id: int) -> int:
        total = 0
        for backend in self.gateway.service_backends.get(service_id, ()):
            for replica in backend.healthy_replicas():
                if service_id in replica.assigned_rps:
                    total += replica.sessions_used
        return total

    # -- migrations --------------------------------------------------------------
    def migrate_lossy(self, service_id: int):
        """Process generator: reset-and-rebuild into the sandbox."""
        if not self._claim(service_id):
            return None
        record = MigrationRecord(service_id=service_id, mode="lossy",
                                 started_at=self.sim.now,
                                 sessions_reset=self._current_sessions(
                                     service_id))
        sandbox = self._sandbox_for_az(self._service_az(service_id))
        sandbox.install_service(service_id)
        self.gateway.sandboxed[service_id] = sandbox
        self.gateway.refresh_loads()
        yield self.sim.timeout(lognormal_from_median(
            self.sim.rng, self.LOSSY_MEDIAN_S, 0.4))
        record.completed_at = self.sim.now
        record.sandbox_backend = sandbox.name
        self.records.append(record)
        self._in_flight.discard(service_id)
        return record

    def migrate_lossless(self, service_id: int):
        """Process generator: steer new sessions away, drain the old."""
        if not self._claim(service_id):
            return None
        record = MigrationRecord(service_id=service_id, mode="lossless",
                                 started_at=self.sim.now, sessions_reset=0)
        sandbox = self._sandbox_for_az(self._service_az(service_id))
        sandbox.install_service(service_id)
        # New sessions (and their load, as flows turn over) shift to the
        # sandbox immediately; completion waits for old flows to age out.
        self.gateway.sandboxed[service_id] = sandbox
        self.gateway.refresh_loads()
        yield self.sim.timeout(lognormal_from_median(
            self.sim.rng, self.LOSSLESS_MEDIAN_S, 0.5))
        record.completed_at = self.sim.now
        record.sandbox_backend = sandbox.name
        self.records.append(record)
        self._in_flight.discard(service_id)
        return record

    def release(self, service_id: int) -> None:
        """Return a quarantined service to its shuffle-shard backends."""
        sandbox = self.gateway.sandboxed.pop(service_id, None)
        if sandbox is not None:
            sandbox.remove_service(service_id)
        self.gateway.refresh_loads()

    # -- throttling ------------------------------------------------------------------
    def throttle(self, service_id: int, rate_per_s: float) -> None:
        self.gateway.throttle_service(service_id, rate_per_s)

    def relax_throttle(self, service_id: int, target_rate_per_s: float,
                       steps: int = 4, interval_s: float = 60.0):
        """Process generator: gradually raise the limit (§6.2 Case #3)."""
        throttle = self.gateway.throttles.get(service_id)
        if throttle is None:
            raise KeyError(f"service {service_id} is not throttled")
        start = throttle.rate_per_s
        if target_rate_per_s < start:
            raise ValueError("relaxation target below the current limit")
        for step in range(1, steps + 1):
            yield self.sim.timeout(interval_s)
            rate = start + (target_rate_per_s - start) * step / steps
            throttle.set_rate(rate)
            self.gateway.set_service_load(
                service_id, self.gateway.service_rps.get(service_id, 0.0))
        self.gateway.unthrottle_service(service_id)
