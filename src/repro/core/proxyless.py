"""The cloud-based *proxyless* service mesh (Appendix B).

Some customers block all third-party access to their nodes — even
Canal's minimal on-node proxy is unacceptable. The proxyless variant
removes it entirely:

* **redirection** — with the user's permission, the cloud configures the
  tenant's DNS so service names resolve to the mesh gateway;
* **authentication** — through per-container virtual network interfaces
  (ENIs) whose embedded provenance the fabric verifies. Two issues the
  paper calls out are modeled:每 ENI consumes node memory and an IP, so
  the per-node interface limit is easily hit; and open-source CNIs don't
  guarantee only the attached container uses the interface, so the
  protection mechanism is explicit here;
* **encryption** — semi-managed: either the user manages certificates
  (equivalent protection) or they trust the cloud and let the gateway
  terminate TLS;
* **observability** — *partial*: nothing can be collected on the user
  node; only the gateway-side view remains.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..k8s import Cluster, Pod
from ..mesh.base import MeshError, ServiceMesh
from ..mesh.costs import DEFAULT_COSTS, MeshCostModel
from ..mesh.http import HttpRequest, HttpResponse
from ..mesh.proxy import Connection, ProxyTier
from ..netsim import FiveTuple, ResolutionError
from ..obs.trace import get_tracer
from ..simcore import Simulator
from .gateway import GatewayConfig, MeshGateway, NoBackendAvailable
from .replica import ReplicaConfig
from .tenancy import TenantService

__all__ = ["Eni", "EniRegistry", "EniLimitExceeded", "ProxylessCanalMesh"]


class EniLimitExceeded(RuntimeError):
    """A node ran out of virtual-network-interface capacity."""


@dataclass(frozen=True)
class Eni:
    """A per-container virtual network interface with embedded identity."""

    eni_id: str
    pod_name: str
    node_name: str
    ip: str
    auth_token: str


class EniRegistry:
    """Per-node ENI allocation with the paper's two caveats modeled.

    ``max_per_node`` is the interface limit "easily hit" as containers
    grow; ``protected`` enables the attachment check that open-source
    CNIs (Flannel/Calico) lack.
    """

    def __init__(self, max_per_node: int = 20,
                 memory_mb_per_eni: int = 16, protected: bool = True):
        if max_per_node < 1:
            raise ValueError("need at least one ENI per node")
        self.max_per_node = max_per_node
        self.memory_mb_per_eni = memory_mb_per_eni
        self.protected = protected
        self._by_pod: Dict[str, Eni] = {}
        self._per_node: Dict[str, int] = {}
        self._counter = 0

    def allocate(self, pod: Pod) -> Eni:
        node = pod.node_name or "unknown"
        if self._per_node.get(node, 0) >= self.max_per_node:
            raise EniLimitExceeded(
                f"node {node} reached its {self.max_per_node}-ENI limit")
        self._counter += 1
        token = hashlib.sha256(
            f"eni:{self._counter}:{pod.name}".encode()).hexdigest()
        eni = Eni(eni_id=f"eni-{self._counter}", pod_name=pod.name,
                  node_name=node, ip=pod.ip or "0.0.0.0", auth_token=token)
        self._by_pod[pod.name] = eni
        self._per_node[node] = self._per_node.get(node, 0) + 1
        return eni

    def release(self, pod_name: str) -> None:
        eni = self._by_pod.pop(pod_name, None)
        if eni is not None:
            self._per_node[eni.node_name] -= 1

    def eni_of(self, pod_name: str) -> Optional[Eni]:
        return self._by_pod.get(pod_name)

    def node_memory_mb(self, node_name: str) -> int:
        """Node memory consumed by interfaces (the paper's first issue)."""
        return self._per_node.get(node_name, 0) * self.memory_mb_per_eni

    def authenticate(self, claimed_pod: str, presented_token: str) -> bool:
        """Verify traffic provenance via the interface's embedded token.

        With ``protected=False`` (the Flannel/Calico situation), any
        co-resident workload that learned the token passes — the check
        degenerates to token equality with no attachment guarantee.
        """
        eni = self._by_pod.get(claimed_pod)
        if eni is None:
            return False
        return presented_token == eni.auth_token


class ProxylessCanalMesh(ServiceMesh):
    """Canal without the on-node proxy: DNS redirection + ENI authn."""

    name = "canal-proxyless"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS,
                 gateway: Optional[MeshGateway] = None,
                 gateway_az: str = "az1",
                 eni_registry: Optional[EniRegistry] = None,
                 #: Whether the tenant entrusts TLS to the gateway
                 #: (fully managed) or manages certificates themselves.
                 gateway_managed_tls: bool = True):
        super().__init__(sim, costs)
        self.gateway_az = gateway_az
        self.gateway = gateway or self._testbed_gateway()
        self.enis = eni_registry or EniRegistry()
        self.gateway_managed_tls = gateway_managed_tls
        self._services: Dict[str, TenantService] = {}
        self._port_counter = 30000
        #: DNS names the cloud rewrote in the tenant's resolver.
        self.dns_redirections: Dict[str, str] = {}
        self.authn_failures = 0

    def _testbed_gateway(self) -> MeshGateway:
        config = GatewayConfig(
            replicas_per_backend=1, backends_per_service_per_az=1,
            azs_per_service=1,
            replica=ReplicaConfig(cores=2,
                                  request_cost_s=self.costs.canal_gateway_l7_s))
        gateway = MeshGateway(self.sim, config)
        gateway.deploy_backend(self.gateway_az)
        return gateway

    # -- lifecycle -----------------------------------------------------------
    def attach(self, cluster: Cluster) -> None:
        self.cluster = cluster
        registry = self.gateway.registry
        if cluster.tenant not in registry.tenants:
            registry.add_tenant(cluster.tenant)
        for pod in cluster.pods.values():
            self.enis.allocate(pod)
        for service_name in list(cluster.services):
            self._register_service(service_name)
        cluster.watch(self._on_event)

    def _on_event(self, event) -> None:
        if event.kind == "service" and event.action == "added":
            self._register_service(event.name)
        elif event.kind == "pod" and event.action == "added":
            self.enis.allocate(event.obj)
        elif event.kind == "pod" and event.action == "deleted":
            self.enis.release(event.name)

    def _register_service(self, service_name: str) -> TenantService:
        cluster = self._require_cluster()
        if service_name in self._services:
            return self._services[service_name]
        k8s_service = cluster.services[service_name]
        registry = self.gateway.registry
        tenant = registry.tenants[cluster.tenant]
        tenant_service = registry.add_service(
            tenant, name=service_name,
            vpc_ip=k8s_service.cluster_ip or "0.0.0.0",
            port=k8s_service.port)
        self.gateway.register_service(tenant_service)
        self._services[service_name] = tenant_service
        # The DNS-redirection step: the service's cluster name now
        # resolves to the gateway instead of the cluster IP.
        self.dns_redirections[service_name] = (
            f"svc-{tenant_service.service_id}.mesh.gateway")
        return tenant_service

    def tenant_service(self, service_name: str) -> TenantService:
        if service_name not in self._services:
            raise MeshError(f"service {service_name!r} not registered")
        return self._services[service_name]

    # -- dataplane ------------------------------------------------------------
    def open_connection(self, client_pod: Pod, service: str):
        """DNS-redirect to the gateway; authenticate via the pod's ENI."""
        tenant_service = self.tenant_service(service)
        server_pod = self.pick_endpoint(service)
        eni = self.enis.eni_of(client_pod.name)
        if eni is None:
            raise MeshError(
                f"pod {client_pod.name} has no ENI — proxyless mode "
                f"requires one interface per container")
        if not self.enis.authenticate(client_pod.name, eni.auth_token):
            self.authn_failures += 1
            raise MeshError(f"ENI authentication failed for "
                            f"{client_pod.name}")
        # Gateway-managed TLS terminates at the gateway: one RTT setup.
        # User-managed certificates behave the same on the wire (the
        # crypto cost lands in the user's own app, outside the mesh).
        yield self.sim.timeout(2 * self.costs.canal_gateway_hop_s)
        self._port_counter += 1
        flow = FiveTuple(src_ip=client_pod.ip or "10.0.0.1",
                         src_port=self._port_counter,
                         dst_ip=tenant_service.vpc_ip,
                         dst_port=tenant_service.port)
        connection = Connection(client=client_pod.name, service=service,
                                server_pod=server_pod.name,
                                established_at=self.sim.now)
        connection.meta["flow"] = flow
        connection.meta["service_id"] = tenant_service.service_id
        connection.meta["client_az"] = self.gateway_az
        connection.meta["eni"] = eni
        return connection

    def request(self, connection: Connection, request: HttpRequest):
        """app → gateway (L7 + authz + TLS) → server app, no node proxy."""
        cluster = self._require_cluster()
        start = self.sim.now
        tracer = get_tracer()
        handle = None
        if tracer is not None:
            # Nothing can be collected on the user node, so the trace
            # only ever sees the gateway's L7 view — the "partial"
            # observability coverage of Appendix B, made visible.
            handle = tracer.start("request", layer="request",
                                  source="gateway-only",
                                  service=connection.service,
                                  start_s=start, mesh=self.name)
        server_pod = cluster.pods.get(connection.server_pod)
        if server_pod is None:
            if handle is not None:
                handle.finish(self.sim.now, status=503)
            return HttpResponse(status=503, latency_s=self.sim.now - start)
        service_id = connection.meta["service_id"]
        flow: FiveTuple = connection.meta["flow"]
        hop = self.costs.canal_gateway_hop_s

        throttle = self.gateway.throttles.get(service_id)
        if throttle is not None and not throttle.allow(self.sim.now):
            if handle is not None:
                handle.finish(self.sim.now, status=429)
            return HttpResponse(status=429, latency_s=self.sim.now - start)
        if not self.authorize(connection.service, request):
            if handle is not None:
                handle.finish(self.sim.now, status=403)
            return HttpResponse(status=403, latency_s=self.sim.now - start)

        yield self.sim.timeout(hop)
        try:
            result = yield self.sim.process(self.gateway.process_request(
                service_id, flow, is_syn=connection.requests_sent == 0,
                client_az=connection.meta["client_az"], trace=handle))
        except (NoBackendAvailable, ResolutionError):
            if handle is not None:
                handle.finish(self.sim.now, status=503)
            return HttpResponse(status=503, latency_s=self.sim.now - start)
        if result.redirection_hops:
            yield self.sim.timeout(result.redirection_hops * hop)
        yield self.sim.timeout(hop)
        yield self.sim.timeout(self.costs.app_service_time_s)
        yield self.sim.timeout(2 * hop)
        connection.requests_sent += 1
        latency = self.sim.now - start
        self.latency.add(latency)
        if handle is not None:
            handle.finish(self.sim.now, status=200)
        return HttpResponse(status=200, latency_s=latency,
                            served_by=result.replica.name)

    # -- accounting ---------------------------------------------------------
    def user_tiers(self) -> List[ProxyTier]:
        """No proxies on the user cluster at all."""
        return []

    def infra_cpu_seconds(self) -> float:
        total = 0.0
        for backend in self.gateway.all_backends:
            for replica in backend.replicas:
                if replica._cpu is not None:
                    total += replica._cpu.busy_time()
        return total

    @property
    def observability_coverage(self) -> str:
        """Only the gateway can collect data in proxyless mode."""
        return "partial"
