"""Failure injection and the hierarchical-recovery audit (§4.2, Fig 8).

The recovery hierarchy under test:

1. replica failure → surviving replicas of the backend absorb the load
   (sessions re-established after a brief disruption);
2. whole-backend failure → the service's other shuffle-shard backends
   (same AZ first) keep serving;
3. AZ failure → DNS steers to the service's backends in other AZs.

:class:`FailureInjector` drives the scenarios; ``availability_report``
asserts who is up after each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simcore import Simulator
from .gateway import MeshGateway

__all__ = ["FailureEvent", "FailureInjector", "availability_report"]


@dataclass
class FailureEvent:
    """Record of one injected failure (and optional recovery)."""

    scope: str               # "replica" | "backend" | "az"
    target: str
    failed_at: float
    recovered_at: Optional[float] = None
    #: Sessions disrupted when the failure hit.
    sessions_disrupted: int = 0


class FailureInjector:
    """Injects failures at the three hierarchy levels."""

    #: Re-established sessions come back after a short disruption.
    REPLICA_RECONNECT_S = 2.0

    def __init__(self, sim: Simulator, gateway: MeshGateway):
        self.sim = sim
        self.gateway = gateway
        self.events: List[FailureEvent] = []

    # -- replica level -------------------------------------------------------
    def fail_replica(self, backend_name: str, replica_name: str) -> FailureEvent:
        backend = self.gateway.backend_by_name(backend_name)
        replica = backend.fail_replica(replica_name)
        event = FailureEvent(scope="replica", target=replica_name,
                             failed_at=self.sim.now,
                             sessions_disrupted=replica.sessions_used)
        replica.remove_sessions(replica.sessions_used)
        self.gateway.refresh_loads()
        self.events.append(event)
        return event

    def recover_replica(self, backend_name: str, replica_name: str) -> None:
        backend = self.gateway.backend_by_name(backend_name)
        backend.recover_replica(replica_name)
        self.gateway.refresh_loads()
        self._mark_recovered("replica", replica_name)

    # -- backend level ----------------------------------------------------------
    def fail_backend(self, backend_name: str) -> FailureEvent:
        backend = self.gateway.backend_by_name(backend_name)
        disrupted = sum(r.sessions_used for r in backend.replicas)
        self.gateway.fail_backend(backend_name)
        event = FailureEvent(scope="backend", target=backend_name,
                             failed_at=self.sim.now,
                             sessions_disrupted=disrupted)
        self.events.append(event)
        return event

    def recover_backend(self, backend_name: str) -> None:
        self.gateway.recover_backend(backend_name)
        self._mark_recovered("backend", backend_name)

    # -- AZ level ------------------------------------------------------------------
    def fail_az(self, az: str) -> FailureEvent:
        disrupted = sum(r.sessions_used
                        for b in self.gateway.backends_by_az.get(az, ())
                        for r in b.replicas)
        self.gateway.fail_az(az)
        event = FailureEvent(scope="az", target=az, failed_at=self.sim.now,
                             sessions_disrupted=disrupted)
        self.events.append(event)
        return event

    def recover_az(self, az: str) -> None:
        self.gateway.recover_az(az)
        self._mark_recovered("az", az)

    # -- query-of-death cascade (§4.2's shuffle-sharding motivator) ---------------
    def query_of_death(self, service_id: int) -> List[FailureEvent]:
        """Take down every backend of one service, one by one."""
        events = []
        for backend in list(self.gateway.service_backends.get(service_id, ())):
            events.append(self.fail_backend(backend.name))
        return events

    def _mark_recovered(self, scope: str, target: str) -> None:
        for event in reversed(self.events):
            if (event.scope == scope and event.target == target
                    and event.recovered_at is None):
                event.recovered_at = self.sim.now
                return


def availability_report(gateway: MeshGateway) -> Dict[int, bool]:
    """service_id → is the service currently reachable."""
    return {service_id: not gateway.service_outage(service_id)
            for service_id in gateway.service_backends}
