"""Failure injection and the hierarchical-recovery audit (§4.2, Fig 8).

The recovery hierarchy under test:

1. replica failure → surviving replicas of the backend absorb the load
   (sessions re-established after a brief disruption);
2. whole-backend failure → the service's other shuffle-shard backends
   (same AZ first) keep serving;
3. AZ failure → DNS steers to the service's backends in other AZs.

:class:`FailureInjector` drives the scenarios; ``availability_report``
asserts who is up after each. The injector is the execution layer of
``repro.faults``: :class:`~repro.faults.FaultEngine` compiles a
declarative :class:`~repro.faults.FaultPlan` down to :meth:`fail` /
:meth:`recover` calls at exact virtual times, but every method remains
directly usable by hand-driven experiments.

Injections are *idempotent per open failure*: failing a target that
already has an open :class:`FailureEvent` returns that event unchanged
instead of double-counting its disrupted sessions — the bug class a
fault plan with overlapping scopes (AZ crash + backend crash inside
it) would otherwise hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simcore import Simulator
from .gateway import MeshGateway

__all__ = ["FailureEvent", "FailureInjector", "availability_report"]


@dataclass
class FailureEvent:
    """Record of one injected failure (and optional recovery)."""

    scope: str               # "replica" | "backend" | "az"
    target: str
    failed_at: float
    recovered_at: Optional[float] = None
    #: Sessions disrupted when the failure hit.
    sessions_disrupted: int = 0


class FailureInjector:
    """Injects failures at the three hierarchy levels."""

    #: Re-established sessions come back after a short disruption.
    REPLICA_RECONNECT_S = 2.0

    def __init__(self, sim: Simulator, gateway: MeshGateway):
        self.sim = sim
        self.gateway = gateway
        self.events: List[FailureEvent] = []

    # -- plan-driven dispatch ------------------------------------------------
    def fail(self, scope: str, target: str,
             backend: str = "") -> FailureEvent:
        """Inject one failure by scope name (the fault-plan entry point)."""
        if scope == "replica":
            return self.fail_replica(backend, target)
        if scope == "backend":
            return self.fail_backend(target)
        if scope == "az":
            return self.fail_az(target)
        raise ValueError(f"unknown failure scope {scope!r}")

    def recover(self, scope: str, target: str, backend: str = "") -> None:
        """Recover one failure by scope name (the fault-plan exit point)."""
        if scope == "replica":
            self.recover_replica(backend, target)
        elif scope == "backend":
            self.recover_backend(target)
        elif scope == "az":
            self.recover_az(target)
        else:
            raise ValueError(f"unknown failure scope {scope!r}")

    def open_event(self, scope: str, target: str) -> Optional[FailureEvent]:
        """The not-yet-recovered event for a target, if one exists."""
        for event in reversed(self.events):
            if (event.scope == scope and event.target == target
                    and event.recovered_at is None):
                return event
        return None

    def disrupted_by_scope(self) -> Dict[str, int]:
        """Total sessions disrupted, per failure scope."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.scope] = (totals.get(event.scope, 0)
                                   + event.sessions_disrupted)
        return totals

    # -- replica level -------------------------------------------------------
    def fail_replica(self, backend_name: str,
                     replica_name: str) -> FailureEvent:
        existing = self.open_event("replica", replica_name)
        if existing is not None:
            return existing
        backend = self.gateway.backend_by_name(backend_name)
        replica = backend.replica_by_name(replica_name)
        # Capture before the crash: the replica's session table dies
        # with the VM.
        disrupted = replica.sessions_used
        backend.fail_replica(replica_name)
        event = FailureEvent(scope="replica", target=replica_name,
                             failed_at=self.sim.now,
                             sessions_disrupted=disrupted)
        # Replica failures bypass the gateway's backend-level failure
        # API, so DNS health must be re-derived here: losing the last
        # replica of an AZ's backends must stop the AZ resolving.
        self.gateway.update_dns_health(backend.az)
        self.gateway.refresh_loads()
        self.events.append(event)
        return event

    def recover_replica(self, backend_name: str, replica_name: str) -> None:
        backend = self.gateway.backend_by_name(backend_name)
        backend.recover_replica(replica_name)
        self.gateway.update_dns_health(backend.az)
        self.gateway.refresh_loads()
        self._mark_recovered("replica", replica_name)

    # -- backend level ----------------------------------------------------------
    def fail_backend(self, backend_name: str) -> FailureEvent:
        existing = self.open_event("backend", backend_name)
        if existing is not None:
            return existing
        backend = self.gateway.backend_by_name(backend_name)
        disrupted = sum(r.sessions_used for r in backend.replicas)
        self.gateway.fail_backend(backend_name)
        event = FailureEvent(scope="backend", target=backend_name,
                             failed_at=self.sim.now,
                             sessions_disrupted=disrupted)
        self.events.append(event)
        return event

    def recover_backend(self, backend_name: str) -> None:
        self.gateway.recover_backend(backend_name)
        self._mark_recovered("backend", backend_name)

    # -- AZ level ------------------------------------------------------------------
    def fail_az(self, az: str) -> FailureEvent:
        existing = self.open_event("az", az)
        if existing is not None:
            return existing
        disrupted = sum(r.sessions_used
                        for b in self.gateway.backends_by_az.get(az, ())
                        for r in b.replicas)
        self.gateway.fail_az(az)
        event = FailureEvent(scope="az", target=az, failed_at=self.sim.now,
                             sessions_disrupted=disrupted)
        self.events.append(event)
        return event

    def recover_az(self, az: str) -> None:
        self.gateway.recover_az(az)
        self._mark_recovered("az", az)

    # -- query-of-death cascade (§4.2's shuffle-sharding motivator) ---------------
    def query_of_death(self, service_id: int) -> List[FailureEvent]:
        """Take down every backend of one service, one by one.

        With resilience policies installed on the gateway, the cascade
        is *contained*: each poisoned backend's death feeds the
        service's circuit breaker as windowed dispatch failures, and
        the cascade halts as soon as the breaker opens — the poison
        query stops being forwarded, so the remaining backends live.
        """
        policies = getattr(self.gateway, "resilience", None)
        events = []
        for backend in list(self.gateway.service_backends.get(service_id, ())):
            if policies is not None and not policies.allow_dispatch(
                    service_id, self.sim.now):
                break
            events.append(self.fail_backend(backend.name))
            if policies is not None:
                policies.record_dispatch(
                    service_id, self.sim.now, ok=False,
                    count=policies.config.qod_failures_per_backend)
        return events

    def recover_service(self, service_id: int) -> None:
        """Undo a query-of-death: recover every backend of the service."""
        for backend in list(self.gateway.service_backends.get(service_id, ())):
            self.recover_backend(backend.name)

    def _mark_recovered(self, scope: str, target: str) -> None:
        event = self.open_event(scope, target)
        if event is not None:
            event.recovered_at = self.sim.now


def availability_report(gateway: MeshGateway) -> Dict[int, bool]:
    """service_id → is the service currently reachable."""
    return {service_id: not gateway.service_outage(service_id)
            for service_id in gateway.service_backends}
