"""Session aggregation via VXLAN tunneling (§4.4, Fig 9).

Replica session state lives in memory-constrained SmartNICs; once the
table is full, more VMs must be bought even though CPU sits near 20 %.
Canal aggregates many user sessions into a few VXLAN tunnels at the
router (Tofino line rate), so the underlay/SmartNIC tracks only the
tunnels. A disaggregator on the replica strips the outer header (CPU
cost measured "insignificant") before the redirector and L7 engine see
the original sessions.

Tunnel count is chosen as a multiple of replica cores (paper: ~10×),
and the outer source port varies per tunnel so the vSwitch's RSS hash
spreads tunnels across cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..netsim import FiveTuple, Packet, VXLAN_OVERHEAD_BYTES, VxlanHeader
from .replica import Replica

__all__ = ["SessionAggregator", "Disaggregator", "MtuError"]


class MtuError(ValueError):
    """Encapsulated packet would exceed the device MTU."""


@dataclass
class TunnelStats:
    packets: int = 0
    bytes: int = 0


class SessionAggregator:
    """Router-side encapsulation of sessions into per-replica tunnels."""

    #: Outer source ports start here; tunnel *i* uses base + i.
    OUTER_SPORT_BASE = 40000

    def __init__(self, router_ip: str, vni: int,
                 tunnels_per_core: int = 10, mtu_bytes: int = 1550):
        if tunnels_per_core < 1:
            raise ValueError("need at least one tunnel per core")
        self.router_ip = router_ip
        self.vni = vni
        self.tunnels_per_core = tunnels_per_core
        #: Paper: "we adjusted the device's MTU limit" to absorb the
        #: VXLAN header; default allows a standard 1500-byte inner.
        self.mtu_bytes = mtu_bytes
        self.stats: Dict[int, TunnelStats] = {}

    def tunnel_count(self, replica: Replica) -> int:
        return self.tunnels_per_core * replica.config.cores

    def tunnel_index(self, flow: FiveTuple, replica: Replica) -> int:
        return flow.flow_hash(salt=self.vni) % self.tunnel_count(replica)

    def encapsulate(self, packet: Packet, replica_ip: str,
                    replica: Replica) -> Packet:
        """Wrap a session packet into its replica-bound tunnel."""
        if packet.size_bytes + VXLAN_OVERHEAD_BYTES > self.mtu_bytes:
            raise MtuError(
                f"{packet.size_bytes}B + VXLAN overhead exceeds MTU "
                f"{self.mtu_bytes} — raise the device MTU")
        index = self.tunnel_index(packet.five_tuple, replica)
        header = VxlanHeader(
            vni=self.vni, outer_src_ip=self.router_ip,
            outer_dst_ip=replica_ip,
            outer_src_port=self.OUTER_SPORT_BASE + index)
        stats = self.stats.setdefault(index, TunnelStats())
        stats.packets += 1
        stats.bytes += packet.size_bytes + VXLAN_OVERHEAD_BYTES
        return packet.encapsulate(header)

    def underlay_sessions(self, replica: Replica,
                          user_sessions: int) -> int:
        """Sessions the SmartNIC must track for a replica's traffic.

        Without aggregation that is ``user_sessions``; with it, at most
        one per tunnel.
        """
        return min(user_sessions, self.tunnel_count(replica))

    def core_spread(self, replica: Replica) -> List[int]:
        """How the replica's tunnels hash onto its cores (RSS model)."""
        cores = replica.config.cores
        counts = [0] * cores
        for index in range(self.tunnel_count(replica)):
            # RSS hashes the outer five-tuple; the outer sport is the
            # only varying field, so model core choice as sport mod cores.
            counts[(self.OUTER_SPORT_BASE + index) % cores] += 1
        return counts


class Disaggregator:
    """Replica-side decapsulation in front of the redirector."""

    #: CPU cost of stripping one outer header in the VM (the paper
    #: measured the impact on CPU utilization as "insignificant").
    DECAP_CPU_S = 1.5e-6

    def __init__(self):
        self.packets_decapsulated = 0

    def decapsulate(self, packet: Packet) -> Packet:
        inner = packet.decapsulate()
        self.packets_decapsulated += 1
        return inner

    def cpu_cost_s(self, packets: int = 1) -> float:
        return packets * self.DECAP_CPU_S
