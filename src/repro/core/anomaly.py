"""Anomaly classification and the rapid-response dispatcher (§4.2, §6.2).

On a backend alert, the system determines whether the load rise is an
expensive query, a normal workload increase, a DDoS attack, or
undetermined, then responds:

* normal growth → precise scaling (RCA + Reuse/New);
* attack signature (#sessions surging without matching RPS) → lossy
  sandbox migration;
* abnormal-but-stable (slow unusual growth, odd scaling cadence) →
  lossless sandbox migration;
* undetermined → sandbox as well (protect the other tenants first).

Tenant-level alerts (user cluster near saturation) trigger gateway
throttling and auto-scaling suspension until the customer's own scaling
catches up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simcore import Simulator
from .gateway import MeshGateway
from .monitoring import Alert, GatewayMonitor
from .rca import RcaResult, RootCauseAnalyzer
from .sandbox import SandboxManager
from .scaling import ScalingEngine

__all__ = ["AnomalySignals", "classify", "RapidResponder", "ResponseRecord"]

NORMAL_GROWTH = "workload_growth"
EXPENSIVE_QUERY = "expensive_query"
DDOS = "ddos"
UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class AnomalySignals:
    """Observed ratios over the detection window for one service."""

    rps_growth: float            # recent / previous RPS
    session_growth: float        # recent / previous #sessions
    water_growth: float          # recent / previous backend water level
    scaling_ops_last_hour: int = 0


def classify(signals: AnomalySignals) -> str:
    """The paper's four-way determination (§4.2 backend-level alert).

    * Sessions surging far beyond RPS is the Case #1 attack signature
      ("#TCP sessions surged without a corresponding increase in RPS").
    * Water rising without RPS movement points at an expensive query.
    * Proportional RPS/session/water growth is normal workload growth.
    * Anything else is undetermined.
    """
    if signals.session_growth >= 2.0 and signals.rps_growth < 1.3:
        return DDOS
    if signals.water_growth >= 1.5 and signals.rps_growth < 1.2:
        return EXPENSIVE_QUERY
    if signals.rps_growth >= 1.2 and (
            signals.session_growth <= signals.rps_growth * 1.5):
        return NORMAL_GROWTH
    return UNDETERMINED


@dataclass
class ResponseRecord:
    """What the responder did about one alert."""

    alert: Alert
    classification: str
    action: str                  # "scale" | "sandbox_lossy" | ...
    rca: Optional[RcaResult] = None
    service_id: Optional[int] = None


class RapidResponder:
    """Wires monitor alerts to RCA, scaling, sandboxing, and throttling."""

    def __init__(self, sim: Simulator, gateway: MeshGateway,
                 monitor: GatewayMonitor, scaling: ScalingEngine,
                 sandbox: SandboxManager,
                 analyzer: Optional[RootCauseAnalyzer] = None,
                 signal_provider=None):
        self.sim = sim
        self.gateway = gateway
        self.monitor = monitor
        self.scaling = scaling
        self.sandbox = sandbox
        self.analyzer = analyzer or RootCauseAnalyzer(gateway, monitor)
        #: Callable(service_id) -> AnomalySignals; experiments inject the
        #: trace-derived signals here.
        self.signal_provider = signal_provider or self._default_signals
        self.responses: List[ResponseRecord] = []
        #: Tenants whose gateway auto-scaling is suspended (tenant alert).
        self.autoscaling_suspended: Dict[str, bool] = {}
        monitor.subscribe(self.on_alert)

    # -- signal derivation -----------------------------------------------------
    def _default_signals(self, service_id: int) -> AnomalySignals:
        """Derive growth ratios from monitored series when no provider."""
        series = self.monitor.service_series.get(service_id)
        if series is None or len(series) < 4:
            return AnomalySignals(rps_growth=1.0, session_growth=1.0,
                                  water_growth=1.0)
        values = series.values
        half = len(values) // 2
        early = sum(values[:half]) / half
        late = sum(values[half:]) / (len(values) - half)
        growth = late / early if early > 0 else float("inf")
        return AnomalySignals(rps_growth=growth, session_growth=growth,
                              water_growth=growth)

    # -- alert handling ------------------------------------------------------------
    def on_alert(self, alert: Alert) -> None:
        if alert.level == "backend":
            self._on_backend_alert(alert)
        elif alert.level == "service":
            self._on_service_alert(alert)
        elif alert.level == "tenant":
            self._on_tenant_alert(alert)

    def _on_backend_alert(self, alert: Alert) -> None:
        backend = self.gateway.backend_by_name(alert.subject)
        if "session" in alert.message:
            rca = self.analyzer.analyze_sessions(backend)
        else:
            rca = self.analyzer.analyze(backend)
        if not rca.found:
            record = ResponseRecord(alert=alert, classification=UNDETERMINED,
                                    action="sandbox_lossy", rca=rca)
            self.responses.append(record)
            return
        service_id = rca.service_id
        signals = self.signal_provider(service_id)
        classification = classify(signals)
        if classification == NORMAL_GROWTH:
            tenant = self._tenant_of(service_id)
            if tenant is not None and self.autoscaling_suspended.get(tenant):
                action = "suppressed"
            else:
                action = "scale"
                self.sim.process(self.scaling.scale_service(service_id),
                                 name=f"scale-{service_id}")
        elif classification == DDOS:
            action = "sandbox_lossy"
            self.sim.process(self.sandbox.migrate_lossy(service_id),
                             name=f"lossy-{service_id}")
        elif classification == EXPENSIVE_QUERY:
            action = "sandbox_lossless"
            self.sim.process(self.sandbox.migrate_lossless(service_id),
                             name=f"lossless-{service_id}")
        else:
            action = "sandbox_lossy"
            self.sim.process(self.sandbox.migrate_lossy(service_id),
                             name=f"lossy-{service_id}")
        self.responses.append(ResponseRecord(
            alert=alert, classification=classification, action=action,
            rca=rca, service_id=service_id))

    def _on_service_alert(self, alert: Alert) -> None:
        """Auto-scaling tenants get scaled before resources deplete."""
        service_id = int(alert.subject)
        tenant = self._tenant_of(service_id)
        if tenant is not None and self.autoscaling_suspended.get(tenant):
            self.responses.append(ResponseRecord(
                alert=alert, classification=NORMAL_GROWTH,
                action="suppressed", service_id=service_id))
            return
        self.sim.process(self.scaling.scale_service(service_id),
                         name=f"scale-{service_id}")
        self.responses.append(ResponseRecord(
            alert=alert, classification=NORMAL_GROWTH, action="scale",
            service_id=service_id))

    def _on_tenant_alert(self, alert: Alert) -> None:
        """User cluster saturating: throttle inbound, pause auto-scaling."""
        tenant = alert.subject
        self.autoscaling_suspended[tenant] = True
        for service in self.gateway.registry.services_of(tenant):
            current = self.gateway.service_rps.get(service.service_id, 0.0)
            if current > 0:
                self.sandbox.throttle(service.service_id, current * 0.8)
        self.responses.append(ResponseRecord(
            alert=alert, classification=NORMAL_GROWTH, action="throttle"))

    def resume_tenant(self, tenant: str, target_rates: Dict[int, float],
                      steps: int = 4, interval_s: float = 60.0) -> None:
        """Customer finished scaling: relax throttles, resume auto-scaling."""
        self.autoscaling_suspended.pop(tenant, None)
        for service_id, rate in target_rates.items():
            if service_id in self.gateway.throttles:
                self.sim.process(self.sandbox.relax_throttle(
                    service_id, rate, steps=steps, interval_s=interval_s),
                    name=f"relax-{service_id}")

    def _tenant_of(self, service_id: int) -> Optional[str]:
        service = self.gateway.registry.services.get(service_id)
        return service.tenant.name if service is not None else None
