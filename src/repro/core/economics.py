"""Deployment-cost accounting: what LB disaggregation and session
aggregation save (Table 5).

The model counts VMs a region must provision:

* **dedicated LBs** — one per service per AZ in the strawman (§3.2
  Issue #4: per-service LBs, deployed locally in every AZ);
* **replica VMs** — sized by the *binding* constraint: CPU demand at a
  target utilization, or SmartNIC session capacity (§3.2: replicas
  typically hit 90 % of sessions at only ~20 % CPU — sessions bind).

Embedding redirectors removes the LB VMs at the price of a small CPU
surcharge (redirection costs ~1/13 of an L7 pass). Tunneling collapses
the session constraint to the tunnel count, leaving CPU as the binding
constraint. The paper measured 32–48 % savings from redirectors and
55–70 % combined across four regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .redirector import REDIRECTOR_COST_RATIO

__all__ = ["RegionDemand", "VmFootprint", "deployment_footprint",
           "cost_reduction"]


@dataclass(frozen=True)
class RegionDemand:
    """Aggregate demand of one cloud region's mesh-gateway deployment."""

    services: int
    azs: int = 3
    #: Mean offered load per service (weighted RPS).
    rps_per_service: float = 2000.0
    #: Mean concurrent user sessions per service.
    sessions_per_service: float = 60_000.0
    #: One replica VM's CPU capacity in weighted RPS at 100 %.
    replica_capacity_rps: float = 70_000.0
    #: Target CPU utilization for sizing (safety threshold headroom).
    target_utilization: float = 0.6
    #: SmartNIC session capacity per replica VM.
    replica_session_capacity: int = 100_000
    #: Sessions must stay below this fraction of the table.
    session_utilization_cap: float = 0.9
    #: Cost of one dedicated LB VM relative to one replica VM.
    lb_vm_cost_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.services < 1:
            raise ValueError("need at least one service")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target utilization must be in (0, 1]")


@dataclass(frozen=True)
class VmFootprint:
    """Provisioned VM counts (in replica-VM cost units)."""

    lb_vms: float
    replica_vms: float

    @property
    def total(self) -> float:
        return self.lb_vms + self.replica_vms


def _replicas_for_cpu(demand: RegionDemand, redirector: bool) -> float:
    per_service_rps = demand.rps_per_service
    surcharge = 1.0 + REDIRECTOR_COST_RATIO if redirector else 1.0
    usable = demand.replica_capacity_rps * demand.target_utilization
    per_service = per_service_rps * surcharge / usable
    # At least one replica per service per AZ for availability.
    per_service = max(per_service, float(demand.azs))
    return math.ceil(per_service) * demand.services


def _replicas_for_sessions(demand: RegionDemand) -> float:
    usable = demand.replica_session_capacity * demand.session_utilization_cap
    per_service = demand.sessions_per_service / usable
    per_service = max(per_service, float(demand.azs))
    return math.ceil(per_service) * demand.services


def deployment_footprint(demand: RegionDemand, redirector: bool,
                         tunneling: bool) -> VmFootprint:
    """VMs the region needs under a given deployment option."""
    replicas_cpu = _replicas_for_cpu(demand, redirector)
    if tunneling:
        replicas = replicas_cpu
    else:
        replicas = max(replicas_cpu, _replicas_for_sessions(demand))
    if redirector:
        lb_vms = 0.0
    else:
        lb_vms = demand.services * demand.azs * demand.lb_vm_cost_ratio
    return VmFootprint(lb_vms=lb_vms, replica_vms=replicas)


def cost_reduction(demand: RegionDemand, redirector: bool,
                   tunneling: bool) -> float:
    """Fractional cost saving vs the dedicated-LB, no-tunneling baseline."""
    baseline = deployment_footprint(demand, redirector=False,
                                    tunneling=False).total
    option = deployment_footprint(demand, redirector=redirector,
                                  tunneling=tunneling).total
    if baseline <= 0:
        raise ValueError("baseline deployment has no cost")
    return 1.0 - option / baseline
