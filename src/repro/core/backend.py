"""Gateway backends: replica groups sharing one configuration set.

§4.2: "a backend is composed of multiple replicas, sharing the same set
of configurations". Hierarchical failure recovery means:

* replica failure — flows re-spread across the backend's surviving
  replicas (brief disruption, sessions rebuilt);
* backend failure — the service falls back to its *other* backends
  (shuffle-shard combination, possibly in other AZs);
* AZ failure — DNS resolves to backends in surviving AZs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..simcore import Simulator
from .replica import Replica, ReplicaConfig

__all__ = ["Backend"]


class Backend:
    """A group of replica VMs behind one share of the gateway VIP."""

    def __init__(self, sim: Simulator, name: str, az: str,
                 replicas: int = 2,
                 replica_config: ReplicaConfig = ReplicaConfig()):
        if replicas < 1:
            raise ValueError("a backend needs at least one replica")
        self.sim = sim
        self.name = name
        self.az = az
        self.replica_config = replica_config
        self.replicas: List[Replica] = [
            Replica(sim, f"{name}-r{i + 1}", az, replica_config,
                    backend=name)
            for i in range(replicas)
        ]
        #: Services configured on this backend (service_id set).
        self.configured_services: Set[int] = set()
        #: Fluid-mode per-service RPS offered to this backend.
        self._service_rps: Dict[int, float] = {}
        self._service_weight: Dict[int, float] = {}
        #: Fluid-mode per-service session counts on this backend.
        self._service_sessions: Dict[int, int] = {}

    # -- replica management ---------------------------------------------------
    def healthy_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.healthy]

    def accepting_replicas(self) -> List[Replica]:
        """Replicas that may take *new* flows (healthy and not draining)."""
        return [r for r in self.replicas if r.healthy and not r.draining]

    @property
    def is_healthy(self) -> bool:
        """A backend is up while at least one replica is up."""
        return bool(self.healthy_replicas())

    def add_replica(self) -> Replica:
        replica = Replica(self.sim, f"{self.name}-r{len(self.replicas) + 1}",
                          self.az, self.replica_config,
                          backend=self.name)
        self.replicas.append(replica)
        self._redistribute()
        return replica

    def fail_replica(self, name: str) -> Replica:
        replica = self.replica_by_name(name)
        replica.fail()
        self._redistribute()
        return replica

    def recover_replica(self, name: str) -> Replica:
        replica = self.replica_by_name(name)
        replica.recover()
        self._redistribute()
        return replica

    def fail_all(self) -> None:
        for replica in self.replicas:
            replica.fail()
        self._redistribute()

    def recover_all(self) -> None:
        for replica in self.replicas:
            replica.recover()
        self._redistribute()

    def replica_by_name(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica {name!r} in backend {self.name}")

    # -- configuration ----------------------------------------------------------
    def install_service(self, service_id: int) -> None:
        self.configured_services.add(service_id)

    def remove_service(self, service_id: int) -> None:
        self.configured_services.discard(service_id)
        self._service_rps.pop(service_id, None)
        self._service_weight.pop(service_id, None)
        self._redistribute()

    def hosts_service(self, service_id: int) -> bool:
        return service_id in self.configured_services

    # -- fluid-mode load ------------------------------------------------------------
    def offer_load(self, service_id: int, rps: float,
                   weight: float = 1.0) -> None:
        """Set this backend's share of a service's traffic."""
        if not self.hosts_service(service_id):
            raise KeyError(
                f"service {service_id} is not configured on {self.name}")
        if rps <= 0:
            self._service_rps.pop(service_id, None)
            self._service_weight.pop(service_id, None)
        else:
            self._service_rps[service_id] = rps
            self._service_weight[service_id] = weight
        self._redistribute()

    def _redistribute(self) -> None:
        """Spread offered load evenly over healthy replicas."""
        healthy = self.healthy_replicas()
        for replica in self.replicas:
            replica.assigned_rps.clear()
        if not healthy:
            return
        for service_id, rps in self._service_rps.items():
            share = rps / len(healthy)
            weight = self._service_weight.get(service_id, 1.0)
            for replica in healthy:
                replica.set_service_rps(service_id, share, weight)

    def service_rps(self, service_id: int) -> float:
        return self._service_rps.get(service_id, 0.0)

    def water_level(self) -> float:
        """Backend CPU utilization = mean over healthy replicas."""
        healthy = self.healthy_replicas()
        if not healthy:
            return 0.0
        return sum(r.water_level() for r in healthy) / len(healthy)

    def top_services(self, count: int = 5) -> Dict[int, float]:
        """Heaviest services by offered RPS on this backend."""
        ranked = sorted(self._service_rps.items(),
                        key=lambda item: item[1], reverse=True)
        return dict(ranked[:count])

    def capacity_rps(self) -> float:
        return sum(r.capacity_rps for r in self.healthy_replicas())

    def session_utilization(self) -> float:
        """Mean SmartNIC session-table occupancy over healthy replicas."""
        healthy = self.healthy_replicas()
        if not healthy:
            return 0.0
        return sum(r.session_utilization() for r in healthy) / len(healthy)

    def offer_sessions(self, service_id: int, count: int) -> None:
        """Set one service's session count here (fluid mode)."""
        if count < 0:
            raise ValueError(f"negative session count {count}")
        if not self.hosts_service(service_id):
            raise KeyError(
                f"service {service_id} is not configured on {self.name}")
        if count == 0:
            self._service_sessions.pop(service_id, None)
        else:
            self._service_sessions[service_id] = count
        self._sync_replica_sessions()

    def service_sessions(self, service_id: int) -> int:
        return self._service_sessions.get(service_id, 0)

    def top_services_by_sessions(self, count: int = 5) -> Dict[int, int]:
        ranked = sorted(self._service_sessions.items(),
                        key=lambda item: item[1], reverse=True)
        return dict(ranked[:count])

    def set_sessions(self, total_sessions: int) -> None:
        """Fluid-mode helper: pin this backend's *total* session count
        (spread evenly over healthy replicas), service-agnostic."""
        if total_sessions < 0:
            raise ValueError(f"negative session count {total_sessions}")
        healthy = self.healthy_replicas()
        if not healthy:
            return
        share = total_sessions // len(healthy)
        for replica in healthy:
            replica.sessions_used = min(share,
                                        replica.config.session_capacity)

    def _sync_replica_sessions(self) -> None:
        total = sum(self._service_sessions.values())
        self.set_sessions(total)

    # -- DES mode --------------------------------------------------------------------
    def pick_replica(self, flow_hash: int) -> Optional[Replica]:
        """Stateless replica choice for one flow (ECMP-style)."""
        accepting = self.accepting_replicas()
        if not accepting:
            return None
        return accepting[flow_hash % len(accepting)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Backend {self.name} az={self.az} "
                f"replicas={len(self.replicas)} "
                f"services={len(self.configured_services)} "
                f"water={self.water_level():.2f}>")
