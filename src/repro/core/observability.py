"""End-to-end observability: spans, traces, and per-pod metrics (§4.1.1).

The span model, collector, and coverage analysis moved to
:mod:`repro.obs.trace`, which generalizes the original flat two-span
traces into causal trees with deterministic sampling and bounded
collection. This module re-exports the names so existing imports
(``repro.core.Span`` / ``TraceCollector``) keep working.
"""

from __future__ import annotations

from ..obs.trace import Span, Trace, TraceCollector

__all__ = ["Span", "Trace", "TraceCollector"]
