"""End-to-end observability: spans, traces, and per-pod metrics (§4.1.1).

The functional-equivalence analysis says observability wants
instrumentation "at critical points in the traffic path". Canal's
split: the on-node proxies contribute L4 spans (with per-pod labels,
Appendix A), the gateway contributes the L7 span. This module assembles
those into end-to-end traces and checks coverage — *full* when both
sides report, *partial* in proxyless mode where only the gateway can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "Trace", "TraceCollector"]


@dataclass(frozen=True)
class Span:
    """One instrumented segment of a request's path."""

    trace_id: int
    source: str            # "onnode@worker1", "gateway/replica-3", ...
    layer: str             # "l4" | "l7" | "app"
    start_s: float
    end_s: float
    pod: str = ""
    service: str = ""
    bytes_out: int = 0
    bytes_in: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Trace:
    """All spans of one request, ordered by start time."""

    trace_id: int
    spans: List[Span] = field(default_factory=list)

    @property
    def start_s(self) -> float:
        return min(span.start_s for span in self.spans)

    @property
    def end_s(self) -> float:
        return max(span.end_s for span in self.spans)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def layers(self) -> List[str]:
        return sorted({span.layer for span in self.spans})

    @property
    def coverage(self) -> str:
        """"full" when both node-side L4 and gateway L7 views exist."""
        has_l4 = any(span.layer == "l4" for span in self.spans)
        has_l7 = any(span.layer == "l7" for span in self.spans)
        if has_l4 and has_l7:
            return "full"
        if has_l7:
            return "partial"
        return "none"

    def critical_path_gap_s(self) -> float:
        """Unattributed time: end-to-end minus instrumented coverage.

        Large gaps mean a fault can't be pinpointed — exactly the §3.2
        Issue #1 worry about losing node-side collection. Spans overlap
        (the gateway L7 span can enclose node L4 spans), so coverage is
        the *union* of span intervals, not the sum of durations.
        """
        intervals = sorted((span.start_s, span.end_s) for span in self.spans)
        covered = 0.0
        current_start, current_end = intervals[0]
        for start, end in intervals[1:]:
            if start > current_end:
                covered += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        covered += current_end - current_start
        # The union lies within [start_s, end_s]; the clamp only guards
        # floating-point residue.
        return max(0.0, self.duration_s - covered)


class TraceCollector:
    """Receives spans from proxies/gateway and assembles traces."""

    def __init__(self):
        self._spans: Dict[int, List[Span]] = {}
        self._next_trace_id = 1
        self.pod_bytes: Dict[str, int] = {}

    def new_trace_id(self) -> int:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        return trace_id

    def record(self, span: Span) -> None:
        self._spans.setdefault(span.trace_id, []).append(span)
        if span.pod:
            self.pod_bytes[span.pod] = (self.pod_bytes.get(span.pod, 0)
                                        + span.bytes_out + span.bytes_in)

    def trace(self, trace_id: int) -> Trace:
        spans = self._spans.get(trace_id)
        if not spans:
            raise KeyError(f"no spans recorded for trace {trace_id}")
        return Trace(trace_id=trace_id,
                     spans=sorted(spans, key=lambda s: s.start_s))

    def traces(self) -> List[Trace]:
        return [self.trace(trace_id) for trace_id in sorted(self._spans)]

    def coverage_report(self) -> Dict[str, int]:
        """How many traces achieved each coverage level."""
        report: Dict[str, int] = {"full": 0, "partial": 0, "none": 0}
        for trace in self.traces():
            report[trace.coverage] += 1
        return report

    def pod_traffic_report(self) -> Dict[str, int]:
        """Per-pod byte totals — the sidecar-equivalent statistic that
        the on-node proxy reconstructs by labeling traffic."""
        return dict(self.pod_bytes)
