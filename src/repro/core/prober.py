"""Active health-check probing with the aggregation hierarchy (§6.1).

`repro.core.healthcheck` computes probe *volumes*; this module runs the
probes. A :class:`HealthCheckProxy` is the per-backend prober that the
replica-level aggregation elects: it probes the union of app endpoints
of all services configured on its backend, shares results with every
replica/core, and feeds endpoint health into routing decisions.

The trade-off the paper accepts is visible here: aggregation cuts probe
traffic by orders of magnitude at the cost of slightly slower detection
(one prober's interval instead of hundreds of independent probers
racing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..simcore import Simulator

__all__ = ["AppEndpoint", "ProbeRecord", "HealthCheckProxy"]


@dataclass
class AppEndpoint:
    """One user-app endpoint (a pod IP) that health checks target."""

    address: str
    healthy: bool = True
    probes_received: int = 0

    def probe(self) -> bool:
        self.probes_received += 1
        return self.healthy


@dataclass(frozen=True)
class ProbeRecord:
    """One health transition observed by a prober."""

    address: str
    healthy: bool
    time: float


class HealthCheckProxy:
    """The dedicated per-backend prober of the replica-level aggregation.

    Probes every target once per ``interval_s``; endpoints failing
    ``failure_threshold`` consecutive probes are marked down (and
    recoveries take ``recovery_threshold`` successes), with transitions
    pushed to subscribers — e.g. the gateway's endpoint selection.
    """

    def __init__(self, sim: Simulator, backend_name: str,
                 targets: List[AppEndpoint], interval_s: float = 1.0,
                 failure_threshold: int = 3, recovery_threshold: int = 2):
        if interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if failure_threshold < 1 or recovery_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.sim = sim
        self.backend_name = backend_name
        self.targets = list(targets)
        self.interval_s = interval_s
        self.failure_threshold = failure_threshold
        self.recovery_threshold = recovery_threshold
        self.view: Dict[str, bool] = {t.address: True for t in targets}
        self._streak: Dict[str, int] = {t.address: 0 for t in targets}
        self.transitions: List[ProbeRecord] = []
        self._subscribers: List[Callable[[ProbeRecord], None]] = []
        self.probes_sent = 0
        self._running = False

    def subscribe(self, callback: Callable[[ProbeRecord], None]) -> None:
        self._subscribers.append(callback)

    def add_target(self, endpoint: AppEndpoint) -> None:
        self.targets.append(endpoint)
        self.view[endpoint.address] = True
        self._streak[endpoint.address] = 0

    def healthy_addresses(self) -> Set[str]:
        return {address for address, up in self.view.items() if up}

    def start(self) -> None:
        if self._running:
            raise RuntimeError("prober already running")
        self._running = True
        self.sim.process(self._probe_loop(),
                         name=f"prober-{self.backend_name}")

    def _probe_loop(self):
        while True:
            self.probe_round()
            yield self.sim.timeout(self.interval_s)

    def probe_round(self) -> None:
        """Probe every target once and update the health view."""
        for endpoint in self.targets:
            self.probes_sent += 1
            ok = endpoint.probe()
            address = endpoint.address
            currently_up = self.view[address]
            if ok == currently_up:
                self._streak[address] = 0
                continue
            self._streak[address] += 1
            threshold = (self.failure_threshold if currently_up
                         else self.recovery_threshold)
            if self._streak[address] >= threshold:
                self.view[address] = ok
                self._streak[address] = 0
                record = ProbeRecord(address=address, healthy=ok,
                                     time=self.sim.now)
                self.transitions.append(record)
                for subscriber in list(self._subscribers):
                    subscriber(record)

    def detection_latency_s(self) -> float:
        """Worst-case failure-detection time of this prober."""
        return self.interval_s * self.failure_threshold
