"""Gateway replicas: the VMs that execute mesh-gateway processing.

A replica is one VM (§4.2: "a replica is a VM while a backend is a
group of VMs"). It supports two complementary execution modes:

* **DES mode** — a :class:`~repro.simcore.CpuResource` processes
  individual requests (used by the testbed-scale experiments);
* **fluid mode** — per-service offered RPS is assigned analytically and
  the water level is computed as demand/capacity (used by the
  production-scale experiments, Figs 16–20).

Session accounting models the SmartNIC constraint of §3.2 Issue #4: a
bounded session table that typically exhausts while CPU sits at ~20 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mesh.costs import sample_service_time
from ..simcore import CpuResource, Simulator

__all__ = ["ReplicaConfig", "Replica"]


@dataclass(frozen=True)
class ReplicaConfig:
    """Sizing of one gateway replica VM."""

    cores: int = 8
    #: CPU seconds of one (HTTP-weighted) L7 request.
    request_cost_s: float = 115e-6
    #: Lognormal sigma of the per-request cost (the optimized gateway
    #: engine is near-deterministic; see mesh.costs.sample_service_time).
    request_cost_sigma: float = 0.35
    #: SmartNIC flow/session table capacity for this VM's slice.
    session_capacity: int = 100_000


class Replica:
    """One gateway VM."""

    def __init__(self, sim: Simulator, name: str, az: str,
                 config: ReplicaConfig = ReplicaConfig(),
                 backend: str = ""):
        self.sim = sim
        self.name = name
        self.az = az
        self.config = config
        #: Name of the backend (replica group) this VM belongs to —
        #: the bulkhead's compartment key at replica admission.
        self.backend_name = backend
        self.healthy = True
        #: Set when the replica is draining (scheduled to go offline):
        #: it still serves existing flows but must not accept new ones.
        self.draining = False
        # Fluid-mode state: offered load per service id.
        self.assigned_rps: Dict[int, float] = {}
        # Session accounting (underlay sessions on the SmartNIC).
        self.sessions_used = 0
        self.requests_served = 0
        #: DES-mode requests currently executing (or queued) on the
        #: CPU — what the bulkhead's compartments cap.
        self.inflight = 0
        self._cpu: Optional[CpuResource] = None

    # -- DES mode ------------------------------------------------------------
    @property
    def cpu(self) -> CpuResource:
        """Lazy per-request CPU resource (only testbed runs need it)."""
        if self._cpu is None:
            self._cpu = CpuResource(self.sim, cores=self.config.cores,
                                    name=f"replica-{self.name}")
        return self._cpu

    def process_request(self, weight: float = 1.0, trace=None,
                        parent_id: int = 1):
        """Process generator: execute one L7 request on this replica.

        With a ``trace`` handle, the replica's CPU occupancy (queueing
        included) becomes an ``l7`` span under ``parent_id``.
        """
        self.requests_served += 1
        cost = sample_service_time(self.sim.rng,
                                   self.config.request_cost_s * weight,
                                   self.config.request_cost_sigma)
        start = self.sim.now
        self.inflight += 1
        try:
            yield from self.cpu.execute(cost)
        finally:
            self.inflight -= 1
        if trace is not None:
            trace.add("replica-exec", "l7", start, self.sim.now,
                      parent_id=parent_id, source=f"replica/{self.name}",
                      cpu_s=cost)

    # -- fluid mode -----------------------------------------------------------
    def set_service_rps(self, service_id: int, rps: float,
                        weight: float = 1.0) -> None:
        """Assign offered load (already weighted RPS) for one service."""
        if rps < 0:
            raise ValueError(f"negative rps {rps}")
        if rps == 0:
            self.assigned_rps.pop(service_id, None)
        else:
            self.assigned_rps[service_id] = rps * weight

    def clear_service(self, service_id: int) -> None:
        self.assigned_rps.pop(service_id, None)

    @property
    def offered_rps(self) -> float:
        return sum(self.assigned_rps.values())

    @property
    def capacity_rps(self) -> float:
        return self.config.cores / self.config.request_cost_s

    def water_level(self) -> float:
        """CPU utilization in fluid mode, clamped to 1.0."""
        return min(1.0, self.offered_rps / self.capacity_rps)

    def top_services(self, count: int = 5) -> Dict[int, float]:
        """The heaviest services on this replica (RCA's sampling input)."""
        ranked = sorted(self.assigned_rps.items(),
                        key=lambda item: item[1], reverse=True)
        return dict(ranked[:count])

    # -- sessions -----------------------------------------------------------------
    def add_sessions(self, count: int) -> bool:
        """Reserve session-table entries; False when the table is full."""
        if count < 0:
            raise ValueError(f"negative session count {count}")
        if self.sessions_used + count > self.config.session_capacity:
            return False
        self.sessions_used += count
        return True

    def remove_sessions(self, count: int) -> None:
        self.sessions_used = max(0, self.sessions_used - count)

    def session_utilization(self) -> float:
        return self.sessions_used / self.config.session_capacity

    def fail(self) -> int:
        """Take the VM down; its SmartNIC session table dies with it.

        Returns the number of sessions the crash disrupted.
        """
        disrupted = self.sessions_used
        self.healthy = False
        self.sessions_used = 0
        return disrupted

    def recover(self) -> None:
        self.healthy = True
        self.draining = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Replica {self.name} az={self.az} "
                f"healthy={self.healthy} load={self.offered_rps:.0f}rps>")
