"""Tenants and tenant services at the multi-tenant gateway.

A *tenant service* is the gateway's unit of configuration, isolation,
scaling, and billing: a (tenant, VPC/VNI, service) triple with a
globally unique service ID — the ID the vSwitch stamps into inner
headers so overlapping VPC addresses never collide (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netsim import ServiceIdMapper

__all__ = ["Tenant", "TenantService", "TenantRegistry"]


@dataclass
class Tenant:
    """A paying customer of the mesh gateway."""

    name: str
    vni: int
    #: Whether the tenant purchased usage-based auto-scaling (§4.2
    #: service-level alerts apply only to these tenants).
    auto_scaling: bool = True
    #: Keyless tenants host their own key server (Appendix B).
    keyless: bool = False


@dataclass
class TenantService:
    """One service of one tenant, as the gateway sees it."""

    service_id: int
    tenant: Tenant
    name: str
    vpc_ip: str
    port: int = 80
    #: Application endpoints behind this service (pod IPs in the user
    #: cluster) — the health-check targets.
    app_endpoints: List[str] = field(default_factory=list)
    #: Relative CPU weight of one request (HTTPS requests cost about 3×
    #: an HTTP request, §6.3).
    https: bool = False
    #: Fraction of this service's sessions that are long-lasting —
    #: penalized when choosing migration candidates (§6.3).
    long_session_fraction: float = 0.1

    @property
    def qualified_name(self) -> str:
        return f"{self.tenant.name}/{self.name}"

    @property
    def request_weight(self) -> float:
        """Per-request resource weight (HTTPS ≈ 3× HTTP, §6.3)."""
        return 3.0 if self.https else 1.0


class TenantRegistry:
    """All tenants and services known to one gateway deployment."""

    def __init__(self, mapper: Optional[ServiceIdMapper] = None):
        self.mapper = mapper or ServiceIdMapper()
        self.tenants: Dict[str, Tenant] = {}
        self.services: Dict[int, TenantService] = {}
        self._next_vni = 100

    def add_tenant(self, name: str, auto_scaling: bool = True,
                   keyless: bool = False) -> Tenant:
        if name in self.tenants:
            raise ValueError(f"duplicate tenant {name!r}")
        tenant = Tenant(name=name, vni=self._next_vni,
                        auto_scaling=auto_scaling, keyless=keyless)
        self._next_vni += 1
        self.tenants[name] = tenant
        return tenant

    def add_service(self, tenant: Tenant, name: str, vpc_ip: str,
                    port: int = 80, https: bool = False,
                    long_session_fraction: float = 0.1) -> TenantService:
        service_id = self.mapper.register(
            tenant.vni, vpc_ip, service_name=f"{tenant.name}/{name}")
        if service_id in self.services:
            raise ValueError(
                f"service {tenant.name}/{name} already registered")
        service = TenantService(
            service_id=service_id, tenant=tenant, name=name, vpc_ip=vpc_ip,
            port=port, https=https,
            long_session_fraction=long_session_fraction)
        self.services[service_id] = service
        return service

    def service_by_name(self, tenant: str, name: str) -> TenantService:
        for service in self.services.values():
            if service.tenant.name == tenant and service.name == name:
                return service
        raise KeyError(f"no service {tenant}/{name}")

    def services_of(self, tenant: str) -> List[TenantService]:
        return [s for s in self.services.values()
                if s.tenant.name == tenant]

    def __len__(self) -> int:
        return len(self.services)
