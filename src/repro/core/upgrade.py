"""Rolling version upgrades of the gateway fleet (§5.5, Fig 20).

"The version update takes about 4 hours as it involves rolling upgrades
of machines" — scheduled at night, with no error-code spikes. The
roller walks every backend, upgrading one replica at a time: drain
(redirectors steer new flows away), wait for flows to age, swap the
image, rejoin. At least one replica per backend keeps accepting at all
times, so no service sees an outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simcore import Simulator
from .gateway import MeshGateway
from .replica import Replica

__all__ = ["UpgradeReport", "RollingUpgrade"]


@dataclass
class UpgradeReport:
    """Outcome of one fleet-wide rolling upgrade."""

    version: str
    started_at: float
    finished_at: float = 0.0
    replicas_upgraded: int = 0
    #: Seconds during which any service had zero healthy backends.
    outage_seconds: float = 0.0
    skipped_backends: List[str] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class RollingUpgrade:
    """Upgrades every gateway replica to a target version, one at a time."""

    def __init__(self, sim: Simulator, gateway: MeshGateway,
                 drain_s: float = 120.0, swap_s: float = 90.0,
                 rejoin_s: float = 30.0):
        self.sim = sim
        self.gateway = gateway
        self.drain_s = drain_s
        self.swap_s = swap_s
        self.rejoin_s = rejoin_s

    def replica_versions(self) -> Dict[str, str]:
        return {replica.name: getattr(replica, "version", "v0")
                for backend in self.gateway.all_backends
                for replica in backend.replicas}

    def run(self, version: str):
        """Process generator: roll the whole fleet → UpgradeReport."""
        report = UpgradeReport(version=version, started_at=self.sim.now)
        for backend in self.gateway.all_backends:
            if len(backend.healthy_replicas()) < 2:
                # Never take a backend's last replica; Canal adds one
                # first in production — here we record and skip.
                report.skipped_backends.append(backend.name)
                continue
            for replica in list(backend.replicas):
                if not replica.healthy:
                    continue
                yield from self._upgrade_replica(backend, replica,
                                                 version, report)
        report.finished_at = self.sim.now
        return report

    def _upgrade_replica(self, backend, replica: Replica, version: str,
                         report: UpgradeReport):
        # Drain: stop accepting new flows, let existing ones age out.
        replica.draining = True
        yield self.sim.timeout(self.drain_s)
        # Swap: the replica is briefly out of the healthy set.
        replica.fail()
        backend._redistribute()
        self.gateway.refresh_loads()
        outage_before = self._services_down()
        yield self.sim.timeout(self.swap_s)
        if outage_before:
            report.outage_seconds += self.swap_s * len(outage_before)
        replica.version = version  # type: ignore[attr-defined]
        replica.recover()
        backend._redistribute()
        self.gateway.refresh_loads()
        yield self.sim.timeout(self.rejoin_s)
        report.replicas_upgraded += 1

    def _services_down(self) -> List[int]:
        return [service_id for service_id in self.gateway.service_backends
                if self.gateway.service_outage(service_id)]
