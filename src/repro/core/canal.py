"""Canal Mesh: on-node proxies + centralized gateway + key server (Fig 6).

The request path:

    app ─eBPF→ on-node proxy ─mTLS→ mesh gateway (L7) ─mTLS→ on-node
    proxy ─eBPF→ server app

User-cluster CPU pays only the two lightweight on-node passes; the L7
pass runs on gateway replicas (provider infrastructure). Asymmetric
crypto goes to the per-AZ key server; symmetric crypto stays local.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..crypto import SoftwareAsymEngine
from ..crypto.accelerator import BatchedAccelerator
from ..k8s import Cluster, Pod
from ..mesh.base import MeshError, ServiceMesh
from ..mesh.controlplane import ConfigTarget, ControlPlane
from ..mesh.costs import DEFAULT_COSTS, MeshCostModel
from ..mesh.http import HttpRequest, HttpResponse
from ..mesh.proxy import Connection, ProxyTier
from ..netsim import FiveTuple, ResolutionError
from ..obs.trace import TraceCollector, Tracer, get_tracer
from ..resilience import BulkheadRejected, CircuitOpenError
from ..simcore import Simulator
from .gateway import GatewayConfig, MeshGateway, NoBackendAvailable
from .key_server import FallbackEngine, KeyServerFleet
from .onnode import OnNodeProxy
from .prober import AppEndpoint, HealthCheckProxy, ProbeRecord
from .replica import ReplicaConfig
from .tenancy import TenantService

__all__ = ["CanalMesh", "CanalControlPlane"]

#: Crypto-offload modes for the on-node proxies.
OFFLOAD_REMOTE = "remote"     # key server (the Canal default)
OFFLOAD_LOCAL = "local"       # AVX-512 batch engine on the node CPU
OFFLOAD_NONE = "software"     # plain software asymmetric crypto


class CanalMesh(ServiceMesh):
    """The paper's architecture, end to end."""

    name = "canal"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS,
                 gateway: Optional[MeshGateway] = None,
                 key_fleet: Optional[KeyServerFleet] = None,
                 onnode_cores_per_node: int = 1,
                 gateway_az: str = "az1",
                 crypto_offload: str = OFFLOAD_REMOTE,
                 software_new_cpu: bool = True,
                 mtls_enabled: bool = True,
                 tracing: Optional[TraceCollector] = None):
        super().__init__(sim, costs)
        if crypto_offload not in (OFFLOAD_REMOTE, OFFLOAD_LOCAL,
                                  OFFLOAD_NONE):
            raise ValueError(f"unknown offload mode {crypto_offload!r}")
        #: In software mode, whether the node CPU is a new model (the
        #: testbed's 8269CY) or an old one ("no offloading", Fig 23).
        self.software_new_cpu = software_new_cpu
        self.gateway_az = gateway_az
        self.crypto_offload = crypto_offload
        self.mtls_enabled = mtls_enabled
        self.onnode_cores_per_node = onnode_cores_per_node
        self.gateway = gateway or self._testbed_gateway()
        self.key_fleet = key_fleet or KeyServerFleet(sim, costs.crypto)
        if (crypto_offload == OFFLOAD_REMOTE
                and self.key_fleet.server_in(gateway_az) is None):
            self.key_fleet.deploy(gateway_az)
        #: Optional end-to-end trace collection (repro.obs.trace): a
        #: TraceCollector (every request traced into it) or a Tracer
        #: (sampling applies). Without either, the *ambient* tracer —
        #: installed by runs via repro.obs.use_tracer() — is consulted
        #: per request; the common disabled case costs one None check.
        self.tracing: Optional[TraceCollector] = None
        self._tracer: Optional[Tracer] = None
        if isinstance(tracing, Tracer):
            self._tracer = tracing
            self.tracing = tracing.collector
        elif tracing is not None:
            self.tracing = tracing
            self._tracer = Tracer(collector=tracing, sample_rate=1.0)
        self.onnode: Dict[str, OnNodeProxy] = {}
        self._services: Dict[str, TenantService] = {}
        self._server_channels: Set[str] = set()
        self._gateway_engine = None
        self._port_counter = 20000
        #: Health-check machinery (§6.1): one aggregated prober per
        #: gateway backend, built by enable_health_checks().
        self.probers: Dict[str, HealthCheckProxy] = {}
        self._app_endpoints: Dict[str, AppEndpoint] = {}
        self._app_health: Dict[str, bool] = {}

    def _testbed_gateway(self) -> MeshGateway:
        """A §5.1-scale gateway: one backend, 2 cores, in one AZ."""
        config = GatewayConfig(
            replicas_per_backend=1, backends_per_service_per_az=1,
            azs_per_service=1,
            replica=ReplicaConfig(cores=2,
                                  request_cost_s=self.costs.canal_gateway_l7_s))
        gateway = MeshGateway(self.sim, config)
        gateway.deploy_backend(self.gateway_az)
        return gateway

    # -- lifecycle -----------------------------------------------------------
    def attach(self, cluster: Cluster) -> None:
        self.cluster = cluster
        registry = self.gateway.registry
        if cluster.tenant not in registry.tenants:
            registry.add_tenant(cluster.tenant)
        for node in cluster.worker_nodes:
            proxy = OnNodeProxy(self.sim, node.name, node.host.az.name,
                                cores=self.onnode_cores_per_node,
                                costs=self.costs)
            proxy.asym_engine = self._build_engine(proxy)
            self.onnode[node.name] = proxy
        self._gateway_engine = self._build_gateway_engine()
        for service_name in list(cluster.services):
            self._register_service(service_name)
        cluster.watch(self._on_event)

    def _build_engine(self, proxy: OnNodeProxy):
        """The on-node asymmetric-crypto engine for the offload mode."""
        if self.crypto_offload == OFFLOAD_REMOTE:
            identity = f"node/{proxy.node_name}"
            server = self.key_fleet.server_in(proxy.az) \
                or self.key_fleet.server_in(self.gateway_az)
            if server is None:
                raise MeshError(f"no key server reachable from {proxy.az}")
            server.store_private_key(identity, f"secret-{identity}")
            remote = self.key_fleet.engine_for(
                requester=proxy.node_name, identity=identity,
                az=server.az)
            fallback = SoftwareAsymEngine(self.sim, self.costs.crypto,
                                          new_cpu=False, cpu=proxy.tier.cpu)
            return FallbackEngine(remote, fallback)
        if self.crypto_offload == OFFLOAD_LOCAL:
            return BatchedAccelerator(self.sim, self.costs.crypto,
                                      cpu=proxy.tier.cpu,
                                      name=f"avx-{proxy.node_name}")
        return SoftwareAsymEngine(self.sim, self.costs.crypto,
                                  new_cpu=self.software_new_cpu,
                                  cpu=proxy.tier.cpu)

    def _build_gateway_engine(self):
        """The gateway side always uses the shared in-AZ key server."""
        if self.crypto_offload != OFFLOAD_REMOTE:
            return SoftwareAsymEngine(self.sim, self.costs.crypto,
                                      new_cpu=True)
        server = self.key_fleet.server_in(self.gateway_az)
        server.store_private_key("gateway", "secret-gateway")
        remote = self.key_fleet.engine_for(
            requester="gateway", identity="gateway", az=self.gateway_az)
        fallback = SoftwareAsymEngine(self.sim, self.costs.crypto,
                                      new_cpu=True)
        return FallbackEngine(remote, fallback)

    def _on_event(self, event) -> None:
        if event.kind == "service" and event.action == "added":
            self._register_service(event.name)

    def _register_service(self, service_name: str) -> TenantService:
        cluster = self._require_cluster()
        if service_name in self._services:
            return self._services[service_name]
        k8s_service = cluster.services[service_name]
        registry = self.gateway.registry
        tenant = registry.tenants[cluster.tenant]
        tenant_service = registry.add_service(
            tenant, name=service_name,
            vpc_ip=k8s_service.cluster_ip or "0.0.0.0",
            port=k8s_service.port)
        tenant_service.app_endpoints = [
            pod.ip for pod in cluster.endpoints(service_name) if pod.ip]
        self.gateway.register_service(tenant_service)
        self._services[service_name] = tenant_service
        return tenant_service

    def tenant_service(self, service_name: str) -> TenantService:
        if service_name not in self._services:
            raise MeshError(f"service {service_name!r} not registered")
        return self._services[service_name]

    # -- health checks (§6.1) ---------------------------------------------------
    def enable_health_checks(self, interval_s: float = 1.0,
                             failure_threshold: int = 3) -> None:
        """Start one aggregated health-check prober per gateway backend.

        Each prober covers the *union* of app endpoints of the services
        configured on its backend (the service-level aggregation), on
        behalf of all replicas and cores (the core/replica levels).
        Detected transitions steer ``pick_endpoint`` away from dead apps.
        """
        if self.probers:
            raise MeshError("health checks already enabled")
        for backend in self.gateway.all_backends:
            addresses: Set[str] = set()
            for service in self._services.values():
                if backend.hosts_service(service.service_id):
                    addresses.update(service.app_endpoints)
            targets = [self._endpoint_for(address)
                       for address in sorted(addresses)]
            prober = HealthCheckProxy(
                self.sim, backend.name, targets, interval_s=interval_s,
                failure_threshold=failure_threshold)
            prober.subscribe(self._on_health_transition)
            prober.start()
            self.probers[backend.name] = prober

    def _endpoint_for(self, address: str) -> AppEndpoint:
        endpoint = self._app_endpoints.get(address)
        if endpoint is None:
            endpoint = AppEndpoint(address)
            self._app_endpoints[address] = endpoint
            self._app_health[address] = True
        return endpoint

    def _on_health_transition(self, record: ProbeRecord) -> None:
        self._app_health[record.address] = record.healthy

    def set_app_health(self, pod_name: str, healthy: bool) -> None:
        """Fail/recover a user app (what the probes are there to catch)."""
        pod = self._require_cluster().pods[pod_name]
        if pod.ip is None:
            raise MeshError(f"pod {pod_name} has no IP")
        self._endpoint_for(pod.ip).healthy = healthy

    def pick_endpoint(self, service: str, request=None):
        """Prefer endpoints the health checks currently believe in."""
        pod = super().pick_endpoint(service, request)
        if not self.probers:
            return pod
        healthy = [p for p in self._require_cluster().endpoints(service)
                   if self._app_health.get(p.ip, True)]
        if not healthy:
            return pod  # all look dead: fall through rather than fail
        if self._app_health.get(pod.ip, True):
            return pod
        return self.sim.rng.choice(healthy)

    # -- dataplane ------------------------------------------------------------
    def _proxy_for(self, pod: Pod) -> OnNodeProxy:
        proxy = self.onnode.get(pod.node_name or "")
        if proxy is None:
            raise MeshError(f"pod {pod.name} is on an unmanaged node")
        return proxy

    def _trace_source(self) -> Optional[Tracer]:
        """The explicit per-mesh tracer, else the ambient one (if any)."""
        if self._tracer is not None:
            return self._tracer
        return get_tracer()

    def open_connection(self, client_pod: Pod, service: str):
        """Establish the on-node↔gateway mTLS channel for this client."""
        tenant_service = self.tenant_service(service)
        server_pod = self.pick_endpoint(service)
        client_proxy = self._proxy_for(client_pod)
        server_proxy = self._proxy_for(server_pod)
        tracer = self._trace_source()
        trace_sink = ([] if tracer is not None and tracer.enabled
                      else None)
        if self.mtls_enabled:
            yield from self._handshake(client_proxy, trace_sink=trace_sink)
            # The server node's channel to the gateway is long-lived:
            # establish it the first time any connection lands there.
            if server_proxy.node_name not in self._server_channels:
                self._server_channels.add(server_proxy.node_name)
                yield from self._handshake(server_proxy,
                                           trace_sink=trace_sink)
        self._port_counter += 1
        flow = FiveTuple(src_ip=client_pod.ip or "10.0.0.1",
                         src_port=self._port_counter,
                         dst_ip=tenant_service.vpc_ip,
                         dst_port=tenant_service.port)
        connection = Connection(client=client_pod.name, service=service,
                                server_pod=server_pod.name,
                                established_at=self.sim.now)
        connection.meta["flow"] = flow
        connection.meta["service_id"] = tenant_service.service_id
        connection.meta["client_az"] = client_proxy.az
        if trace_sink:
            # Deferred TLS spans: adopted by the first request's trace.
            connection.meta["pending_spans"] = trace_sink
        return connection

    def _handshake(self, proxy: OnNodeProxy, trace_sink=None):
        """mTLS negotiation between an on-node proxy and the gateway.

        ``trace_sink`` (a list) collects one deferred span spec per
        handshake — setup / asymmetric-crypto / finished sub-spans —
        mirroring ``crypto.tls.mtls_handshake``'s decomposition.
        """
        start = self.sim.now
        yield from proxy.handshake_work()
        setup_end = self.sim.now
        both = self.sim.all_of([proxy.asym_engine.submit(),
                                self._gateway_engine.submit()])
        yield both
        asym_end = self.sim.now
        yield self.sim.timeout(2 * 2 * self.costs.canal_gateway_hop_s)
        if trace_sink is not None:
            trace_sink.append({
                "name": "tls-handshake", "layer": "tls",
                "start_s": start, "end_s": self.sim.now,
                "source": f"node/{proxy.node_name}",
                "annotations": {"peer": "gateway",
                                "offload": self.crypto_offload},
                "children": [
                    {"name": "tls-setup", "layer": "tls",
                     "start_s": start, "end_s": setup_end},
                    {"name": "tls-asym", "layer": "tls",
                     "start_s": setup_end, "end_s": asym_end},
                    {"name": "tls-finished", "layer": "tls",
                     "start_s": asym_end, "end_s": self.sim.now},
                ]})

    def _start_trace(self, connection: Connection):
        """Begin one request trace (or ``None``), adopting any deferred
        TLS handshake spans from the connection's setup."""
        tracer = self._trace_source()
        if tracer is None:
            return None
        handle = tracer.start(
            "request", layer="request",
            source=f"client/{connection.client}",
            service=connection.service, start_s=self.sim.now,
            mesh=self.name)
        if handle is None:
            return None
        pending = connection.meta.pop("pending_spans", None)
        if pending:
            # The handshake predates the request: widen the root so it
            # covers connection setup end to end.
            handle.start_s = min(handle.start_s,
                                 min(spec["start_s"] for spec in pending))
            for spec in pending:
                handle.add_tree(spec)
        return handle

    def _finish_trace(self, handle, status: int, **annotations) -> None:
        if handle is not None:
            handle.finish(self.sim.now, status=status, **annotations)

    def request(self, connection: Connection, request: HttpRequest):
        """on-node → gateway L7 → on-node → app exchange."""
        cluster = self._require_cluster()
        start = self.sim.now
        handle = self._start_trace(connection)
        client_pod = cluster.pods[connection.client]
        server_pod = cluster.pods.get(connection.server_pod)
        if server_pod is None:
            self.observe_request(503, self.sim.now - start,
                                 connection.service)
            self._finish_trace(handle, 503)
            return HttpResponse(status=503, latency_s=self.sim.now - start)
        client_proxy = self._proxy_for(client_pod)
        server_proxy = self._proxy_for(server_pod)
        service_id = connection.meta["service_id"]
        flow: FiveTuple = connection.meta["flow"]
        hop = self.costs.canal_gateway_hop_s

        # Gateway-side admission: throttle (early drop) and authz.
        throttle = self.gateway.throttles.get(service_id)
        if throttle is not None and not throttle.allow(self.sim.now):
            self.observe_request(429, self.sim.now - start,
                                 connection.service)
            self._finish_trace(handle, 429)
            return HttpResponse(status=429, latency_s=self.sim.now - start)
        if not self.authorize(connection.service, request):
            self.observe_request(403, self.sim.now - start,
                                 connection.service)
            self._finish_trace(handle, 403)
            return HttpResponse(status=403, latency_s=self.sim.now - start)

        # Resilience admission (when a policy set is installed):
        # graceful degradation sheds low-priority tenants, then the
        # load leveler smooths or sheds the burst.
        policies = self.gateway.resilience
        if policies is not None:
            policies.degradation_tick(self.sim.now)
            service = self.gateway.registry.services.get(service_id)
            tenant = service.tenant.name if service is not None else ""
            if not policies.tenant_allowed(tenant):
                self.observe_request(503, self.sim.now - start,
                                     connection.service)
                self._finish_trace(handle, 503, shed="degradation")
                return HttpResponse(status=503,
                                    latency_s=self.sim.now - start)
            wait = policies.leveler_reserve(self.sim.now)
            if wait is None:
                self.observe_request(429, self.sim.now - start,
                                     connection.service)
                self._finish_trace(handle, 429, shed="leveler")
                return HttpResponse(status=429,
                                    latency_s=self.sim.now - start)
            if wait > 0:
                yield self.sim.timeout(wait)

        yield from client_proxy.process_message(
            client_pod.name, connection.service,
            request.body_bytes, request.response_bytes,
            mtls=self.mtls_enabled, trace=handle)
        yield self.sim.timeout(hop)
        retry = policies.retry if policies is not None else None
        if retry is not None:
            retry.note_first_attempt()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = yield self.sim.process(self.gateway.process_request(
                    service_id, flow, is_syn=connection.requests_sent == 0,
                    client_az=connection.meta["client_az"], trace=handle))
                break
            except CircuitOpenError:
                # Fast fail: no retries against an open breaker.
                self.observe_request(503, self.sim.now - start,
                                     connection.service)
                self._finish_trace(
                    handle, 503, breaker="open", attempts=attempt)
                return HttpResponse(status=503,
                                    latency_s=self.sim.now - start)
            except BulkheadRejected:
                # The tenant hit its own cap: back off, don't retry.
                self.observe_request(429, self.sim.now - start,
                                     connection.service)
                self._finish_trace(handle, 429, shed="bulkhead")
                return HttpResponse(status=429,
                                    latency_s=self.sim.now - start)
            except (NoBackendAvailable, ResolutionError):
                if retry is None or not retry.should_retry(attempt):
                    self.observe_request(503, self.sim.now - start,
                                         connection.service)
                    if retry is not None:
                        self._finish_trace(handle, 503, attempts=attempt)
                    else:
                        self._finish_trace(handle, 503)
                    return HttpResponse(status=503,
                                        latency_s=self.sim.now - start)
                policies.note_retry(service_id)
                yield self.sim.timeout(retry.backoff_s(attempt))
        # Each redirection hop in the replica chain is one more intra-
        # gateway hop.
        if result.redirection_hops:
            yield self.sim.timeout(result.redirection_hops * hop)
        yield self.sim.timeout(hop)
        yield from server_proxy.process_message(
            server_pod.name, connection.service,
            request.response_bytes, request.body_bytes,
            mtls=self.mtls_enabled, trace=handle)
        segment_start = self.sim.now
        yield self.sim.timeout(self.costs.app_service_time_s)
        if handle is not None:
            handle.add("app-exec", "app", segment_start, self.sim.now,
                       source=f"app/{server_pod.name}",
                       pod=server_pod.name)
        yield self.sim.timeout(2 * hop)  # response back through the gateway
        connection.requests_sent += 1
        latency = self.sim.now - start
        self.observe_request(200, latency, connection.service)
        self._finish_trace(handle, 200, replica=result.replica.name)
        return HttpResponse(status=200, latency_s=latency,
                            served_by=result.replica.name)

    def close_connection(self, connection: Connection) -> None:
        """Release the connection's gateway-side flow/session state."""
        flow = connection.meta.get("flow")
        service_id = connection.meta.get("service_id")
        if flow is not None and service_id is not None:
            self.gateway.close_flow(service_id, flow)

    # -- accounting ---------------------------------------------------------
    def user_tiers(self) -> List[ProxyTier]:
        return [proxy.tier for proxy in self.onnode.values()]

    def infra_cpu_seconds(self) -> float:
        """Gateway-side CPU (not the user's resources)."""
        total = 0.0
        for backend in self.gateway.all_backends:
            for replica in backend.replicas:
                if replica._cpu is not None:
                    total += replica._cpu.busy_time()
        return total

    def proxy_count(self) -> int:
        """Configurable proxies from the user's perspective: on-node
        proxies only (the gateway is one shared logical target)."""
        return len(self.onnode) + 1


class CanalControlPlane(ControlPlane):
    """Pushes to the gateway; on-node proxies get rare identity configs."""

    kind = "canal"

    def targets_for_update(self, kind: str = "routing") -> List[ConfigTarget]:
        full = self.full_config_bytes()
        targets = [ConfigTarget(
            name="mesh-gateway", kind="gateway",
            config_bytes=int(full * self.costs.gateway_scope),
            apply_s=self.costs.gateway_apply_s)]
        if kind == "pods":
            # New pods need workload identities at their on-node proxies
            # (tiny, and only the affected nodes).
            targets.extend(ConfigTarget(
                name=f"onnode-{node.name}", kind="onnode",
                config_bytes=self.costs.onnode_identity_bytes,
                apply_s=self.costs.onnode_apply_s)
                for node in self.cluster.worker_nodes)
        return targets
