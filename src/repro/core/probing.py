"""Proof for absence of failure: full-mesh L7 probing (§6.4).

Diverse app instances (WebSocket, HTTP, HTTPS, gRPC) are deployed in
every AZ and periodically probe each other full-mesh *through* the mesh
gateway. When a tenant complains, the probe matrix tells infra apart
from the tenant's own service: if every probe of the matching type and
AZ pair is green, "we prove our innocence".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netsim import LatencyModel, NetLocation
from ..simcore import Simulator, Summary
from .gateway import MeshGateway
from .tenancy import TenantService

__all__ = ["ProbeResult", "ProbeMesh", "APP_TYPES"]

APP_TYPES = ("websocket", "http", "https", "grpc")


@dataclass(frozen=True)
class ProbeResult:
    """One probe between two AZ-resident app instances."""

    src_az: str
    dst_az: str
    app_type: str
    ok: bool
    latency_s: float
    time: float


class ProbeMesh:
    """Deploys probe services per AZ and runs full-mesh rounds."""

    def __init__(self, sim: Simulator, gateway: MeshGateway,
                 azs: List[str], latency: Optional[LatencyModel] = None,
                 probe_app_latency_s: float = 2e-3):
        self.sim = sim
        self.gateway = gateway
        self.azs = list(azs)
        self.latency = latency or LatencyModel()
        self.probe_app_latency_s = probe_app_latency_s
        self.results: List[ProbeResult] = []
        self.latency_summary: Dict[Tuple[str, str, str], Summary] = {}
        self._probe_services: Dict[Tuple[str, str], TenantService] = {}
        self._deploy_probes()

    def _deploy_probes(self) -> None:
        registry = self.gateway.registry
        tenant = registry.tenants.get("__probes__") or registry.add_tenant(
            "__probes__", auto_scaling=False)
        for az in self.azs:
            for app_type in APP_TYPES:
                service = registry.add_service(
                    tenant, name=f"probe-{app_type}-{az}",
                    vpc_ip=f"192.168.{self.azs.index(az)}."
                           f"{APP_TYPES.index(app_type) + 1}",
                    https=(app_type == "https"))
                self.gateway.register_service(service)
                self._probe_services[(az, app_type)] = service

    # -- probing ------------------------------------------------------------
    def probe_once(self, src_az: str, dst_az: str,
                   app_type: str) -> ProbeResult:
        """One synthetic probe through the gateway path."""
        service = self._probe_services[(dst_az, app_type)]
        outage = self.gateway.service_outage(service.service_id)
        if outage:
            result = ProbeResult(src_az, dst_az, app_type, ok=False,
                                 latency_s=float("inf"), time=self.sim.now)
        else:
            src = NetLocation("region1", src_az, f"probe-{src_az}")
            dst = NetLocation("region1", dst_az, f"probe-{dst_az}")
            # src → gateway (local AZ) → dst, and back.
            rtt = (self.latency.intra_az * 2
                   + self.latency.one_way(src, dst) * 2)
            # Backend queueing inflates probe latency with water level —
            # an M/M/1-style factor keeps it monotonic and bounded.
            backends = [b for b in self.gateway.service_backends.get(
                service.service_id, ()) if b.is_healthy]
            water = max((b.water_level() for b in backends), default=0.0)
            inflation = 1.0 / max(0.05, 1.0 - water)
            latency = rtt + self.probe_app_latency_s * inflation
            result = ProbeResult(src_az, dst_az, app_type, ok=True,
                                 latency_s=latency, time=self.sim.now)
        self.results.append(result)
        key = (src_az, dst_az, app_type)
        summary = self.latency_summary.setdefault(
            key, Summary(name=f"{src_az}->{dst_az}/{app_type}"))
        if result.ok:
            summary.add(result.latency_s)
        return result

    def run_round(self) -> List[ProbeResult]:
        """Full mesh: every AZ pair × every app type."""
        round_results = []
        for src_az in self.azs:
            for dst_az in self.azs:
                for app_type in APP_TYPES:
                    round_results.append(
                        self.probe_once(src_az, dst_az, app_type))
        return round_results

    def run_periodic(self, interval_s: float, rounds: int):
        """Process generator: periodic probing (the production cadence)."""
        for _ in range(rounds):
            self.run_round()
            yield self.sim.timeout(interval_s)

    # -- innocence analysis ----------------------------------------------------
    def matrix_ok(self, window_s: Optional[float] = None) -> bool:
        """Whether every probe in the window succeeded."""
        results = self.results
        if window_s is not None:
            cutoff = self.sim.now - window_s
            results = [r for r in results if r.time >= cutoff]
        return bool(results) and all(r.ok for r in results)

    def innocence_proof(self, tenant_az: str, app_type: str,
                        window_s: Optional[float] = None) -> bool:
        """Infra is healthy for the tenant's AZ and protocol."""
        results = self.results
        if window_s is not None:
            cutoff = self.sim.now - window_s
            results = [r for r in results if r.time >= cutoff]
        relevant = [r for r in results if r.app_type == app_type
                    and (r.src_az == tenant_az or r.dst_az == tenant_az)]
        return bool(relevant) and all(r.ok for r in relevant)

    def failure_matrix(self) -> Dict[Tuple[str, str, str], float]:
        """Probe failure rate per (src AZ, dst AZ, app type)."""
        counts: Dict[Tuple[str, str, str], List[int]] = {}
        for result in self.results:
            key = (result.src_az, result.dst_az, result.app_type)
            ok_fail = counts.setdefault(key, [0, 0])
            ok_fail[0 if result.ok else 1] += 1
        return {key: fail / (ok + fail)
                for key, (ok, fail) in counts.items()}
