"""LB disaggregation: ECMP up front + Beamer-style redirectors (§4.4).

Instead of dedicated load-balancer VMs, Canal reuses the router's ECMP
for load distribution and adds a *redirector* at each replica to repair
session consistency when the replica list changes. Each service has a
fixed-size bucket table (identical on every replica, maintained by the
controller); each bucket holds a *replica chain* sorted by priority.

Canal's modifications over Beamer (§4.4): chains longer than 2 (to
survive several scale events in a short period), *per-service* bucket
tables indexed by service ID, and an eBPF fast path (priced at 12–15×
less than an L7 pass).

Packet semantics (Appendix C, Fig 26):

* SYN packets are processed at the highest-priority *accepting* replica
  of their bucket's chain — new flows land on new replicas.
* Non-SYN packets chase the chain until a replica owns the flow in its
  kernel flow table; each extra position visited is one redirection hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim import EcmpRouter, FiveTuple
from .replica import Replica

__all__ = ["FlowStore", "BucketTable", "DisaggregatedLB", "DeliveryResult"]

#: Redirector processing cost relative to an L7 pass (paper: 12–15×
#: smaller); used by the cost-reduction analysis in Table 5.
REDIRECTOR_COST_RATIO = 1.0 / 13.0


class FlowStore:
    """Which replica owns each established flow (kernel flow records)."""

    def __init__(self):
        self._owner: Dict[FiveTuple, str] = {}

    def owner(self, flow: FiveTuple) -> Optional[str]:
        return self._owner.get(flow)

    def install(self, flow: FiveTuple, replica_name: str) -> None:
        self._owner[flow] = replica_name

    def remove(self, flow: FiveTuple) -> None:
        self._owner.pop(flow, None)

    def flows_on(self, replica_name: str) -> List[FiveTuple]:
        return [flow for flow, owner in self._owner.items()
                if owner == replica_name]

    def __len__(self) -> int:
        return len(self._owner)


class BucketTable:
    """Per-service bucket → replica-chain mapping (same on all replicas)."""

    def __init__(self, service_id: int, num_buckets: int = 64,
                 max_chain: int = 4):
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        if max_chain < 2:
            raise ValueError("chain length below Beamer's minimum of 2")
        self.service_id = service_id
        self.num_buckets = num_buckets
        self.max_chain = max_chain
        self._chains: List[List[str]] = [[] for _ in range(num_buckets)]

    def build(self, replica_names: List[str]) -> None:
        """Initial even assignment of buckets to replicas."""
        if not replica_names:
            raise ValueError("cannot build a bucket table with no replicas")
        for index in range(self.num_buckets):
            self._chains[index] = [replica_names[index % len(replica_names)]]

    def bucket_of(self, flow: FiveTuple) -> int:
        return flow.flow_hash(salt=self.service_id) % self.num_buckets

    def chain_for(self, flow: FiveTuple) -> List[str]:
        return list(self._chains[self.bucket_of(flow)])

    def chain_at(self, bucket: int) -> List[str]:
        return list(self._chains[bucket])

    def buckets_headed_by(self, replica_name: str) -> List[int]:
        return [i for i, chain in enumerate(self._chains)
                if chain and chain[0] == replica_name]

    def prepare_offline(self, replica_name: str,
                        replacement_names: List[str]) -> int:
        """Prepend a replacement in every bucket containing the replica.

        New flows then land on the replacement while existing flows keep
        chasing the chain back to the draining replica. Returns the
        number of buckets updated.
        """
        if not replacement_names:
            raise ValueError("need at least one replacement replica")
        updated = 0
        for index, chain in enumerate(self._chains):
            if replica_name in chain:
                replacement = replacement_names[index % len(replacement_names)]
                if replacement == replica_name:
                    continue
                chain.insert(0, replacement)
                del chain[self.max_chain:]
                updated += 1
        return updated

    def add_replica(self, replica_name: str, share: float = None) -> int:
        """Give a new replica the head position of a share of buckets.

        ``share`` defaults to 1/(distinct replicas + 1) — an even
        portion. Old heads stay second in the chain so established flows
        survive. Returns the number of buckets reassigned.
        """
        heads = {chain[0] for chain in self._chains if chain}
        if share is None:
            share = 1.0 / (len(heads) + 1)
        take = max(1, int(self.num_buckets * share))
        reassigned = 0
        for chain in self._chains:
            if reassigned >= take:
                break
            if chain and chain[0] == replica_name:
                continue
            chain.insert(0, replica_name)
            del chain[self.max_chain:]
            reassigned += 1
        return reassigned

    def remove_replica(self, replica_name: str) -> None:
        """Purge a fully drained replica from every chain."""
        for chain in self._chains:
            while replica_name in chain:
                chain.remove(replica_name)

    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self._chains), default=0)


@dataclass
class DeliveryResult:
    """Where a packet ended up and what it cost to get there."""

    replica: Replica
    redirection_hops: int
    is_new_flow: bool


class DisaggregatedLB:
    """ECMP router + per-replica redirectors for one service."""

    def __init__(self, service_id: int, replicas: List[Replica],
                 num_buckets: int = 64, max_chain: int = 4):
        if not replicas:
            raise ValueError("DisaggregatedLB needs at least one replica")
        self.service_id = service_id
        self._replicas: Dict[str, Replica] = {r.name: r for r in replicas}
        self.router: EcmpRouter[str] = EcmpRouter(
            [r.name for r in replicas], salt=service_id)
        self.table = BucketTable(service_id, num_buckets=num_buckets,
                                 max_chain=max_chain)
        self.table.build([r.name for r in replicas])
        self.flows = FlowStore()
        self.packets_delivered = 0
        self.packets_redirected = 0

    # -- replica membership ---------------------------------------------------
    def replica(self, name: str) -> Replica:
        return self._replicas[name]

    def replica_names(self) -> List[str]:
        return list(self._replicas)

    def add_replica(self, replica: Replica) -> None:
        if replica.name in self._replicas:
            raise ValueError(f"duplicate replica {replica.name}")
        self._replicas[replica.name] = replica
        self.router.add_next_hop(replica.name)
        self.table.add_replica(replica.name)

    def drain_replica(self, name: str) -> None:
        """Begin taking a replica offline (Fig 26's IP2 scenario)."""
        replica = self._replicas[name]
        replica.draining = True
        replacements = [n for n, r in self._replicas.items()
                        if r.healthy and not r.draining]
        if not replacements:
            raise RuntimeError(
                f"no replacement replicas available to drain {name}")
        self.table.prepare_offline(name, replacements)
        # The router stops hashing to it; the redirectors still know it.
        if name in self.router.next_hops:
            self.router.remove_next_hop(name)

    def retire_replica(self, name: str) -> int:
        """Finish the drain once the replica's flows have aged out."""
        remaining = len(self.flows.flows_on(name))
        if remaining:
            raise RuntimeError(
                f"replica {name} still owns {remaining} flows")
        self.table.remove_replica(name)
        del self._replicas[name]
        return remaining

    # -- dataplane --------------------------------------------------------------
    def deliver(self, flow: FiveTuple, is_syn: bool) -> DeliveryResult:
        """Route one packet per the Beamer semantics."""
        entry_name = self.router.select(flow) if len(self.router) else None
        chain = self.table.chain_for(flow)
        if not chain:
            raise RuntimeError(
                f"bucket for {flow} has an empty chain (service "
                f"{self.service_id})")
        hops = 0
        if entry_name is not None and entry_name != chain[0]:
            hops += 1  # entry replica forwards to the chain head

        if is_syn:
            target_name = self._first_accepting(chain)
            self.flows.install(flow, target_name)
            self.packets_delivered += 1
            if hops:
                self.packets_redirected += 1
            return DeliveryResult(self._replicas[target_name], hops, True)

        owner = self.flows.owner(flow)
        if owner is not None and owner in chain:
            # Chase the chain down to the owner; each position visited
            # past the head is one redirection hop.
            hops += chain.index(owner)
            self.packets_delivered += 1
            if hops:
                self.packets_redirected += 1
            return DeliveryResult(self._replicas[owner], hops, False)

        # Unknown flow (e.g. owner already retired): treat as new.
        target_name = self._first_accepting(chain)
        self.flows.install(flow, target_name)
        self.packets_delivered += 1
        if hops:
            self.packets_redirected += 1
        return DeliveryResult(self._replicas[target_name], hops, True)

    def _first_accepting(self, chain: List[str]) -> str:
        for name in chain:
            replica = self._replicas.get(name)
            if replica is not None and replica.healthy and not replica.draining:
                return name
        raise RuntimeError(
            f"no accepting replica in chain {chain} for service "
            f"{self.service_id}")

    def close_flow(self, flow: FiveTuple) -> None:
        self.flows.remove(flow)

    def flows_remaining_on(self, name: str) -> int:
        return len(self.flows.flows_on(name))
