"""The dedicated key server: remote asymmetric-crypto offload (§4.1.3).

On-node proxies and gateway replicas send their handshake-time
asymmetric operations to a shared, per-AZ key server over a
pre-established encrypted channel (no per-request TLS handshake). The
key server:

* batches operations through hardware acceleration — and because it
  serves a massive number of services, its batches are always full,
  avoiding the AVX-512 under-fill penalty (Fig 25);
* stores tenant private keys only in encrypted form, in memory —
  flushed on restart, decrypted transiently per verified request;
* returns the derived *symmetric* key; subsequent traffic crypto stays
  local at the requester.

Keyless mode (Appendix B): a security-sensitive tenant hosts the key
server in its own premises, so the cloud never holds the private key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..crypto import BatchedAccelerator, CryptoCosts, DEFAULT_CRYPTO_COSTS
from ..crypto.accelerator import SoftwareAsymEngine
from ..simcore import Event, Simulator

__all__ = ["KeyServerConfig", "KeyServer", "RemoteKeyEngine",
           "FallbackEngine", "KeyServerFleet", "AccessDenied"]


class AccessDenied(PermissionError):
    """Requester failed channel verification."""


@dataclass(frozen=True)
class KeyServerConfig:
    """Deployment parameters of one key server."""

    #: Round trip between a requester and its in-AZ key server. The
    #: paper measures remote completion ≈ 1.7 ms flat (Fig 23): a 1.0 ms
    #: overlay RTT + a full-batch op (0.25 ms + ~0.15 ms fill wait) +
    #: 0.3 ms of RPC/channel work.
    network_rtt_s: float = 1.0e-3
    #: Marshalling + pre-established-channel symmetric crypto per RPC.
    rpc_overhead_s: float = 0.3e-3
    batch_size: int = 8
    flush_timeout_s: float = 1e-3


class KeyServer:
    """One key-server instance (per AZ, or tenant-hosted for keyless)."""

    def __init__(self, sim: Simulator, az: str,
                 costs: CryptoCosts = DEFAULT_CRYPTO_COSTS,
                 config: KeyServerConfig = KeyServerConfig(),
                 hardware_accelerated: bool = True,
                 name: str = ""):
        self.sim = sim
        self.az = az
        self.config = config
        self.name = name or f"keyserver-{az}"
        self.hardware_accelerated = hardware_accelerated
        self.healthy = True
        if hardware_accelerated:
            self._engine = BatchedAccelerator(
                sim, costs, batch_size=config.batch_size,
                flush_timeout_s=config.flush_timeout_s, name=self.name)
        else:
            # <5 % of AZs lack QAT/AVX-512 CPUs (§4.1.3): software path.
            self._engine = SoftwareAsymEngine(sim, costs, new_cpu=False)
        #: identity → encrypted private-key blob (never plaintext).
        self._vault: Dict[str, bytes] = {}
        #: Channel tokens of verified requesters.
        self._channels: Dict[str, str] = {}
        self.requests_served = 0
        self.requests_denied = 0

    # -- key management -------------------------------------------------------
    @staticmethod
    def _seal(identity: str, secret_hex: str) -> bytes:
        """At-rest encryption of a private key (keyed digest stand-in)."""
        return hashlib.sha256(f"seal:{identity}:{secret_hex}".encode()).digest()

    def store_private_key(self, identity: str, secret_hex: str) -> None:
        self._vault[identity] = self._seal(identity, secret_hex)

    def has_key(self, identity: str) -> bool:
        return identity in self._vault

    def restart(self) -> None:
        """Power cycle: in-memory keys are flushed (anti-theft, §4.1.3)."""
        self._vault.clear()
        self._channels.clear()

    # -- channels ---------------------------------------------------------------
    def establish_channel(self, requester: str) -> str:
        """Pre-establish the encrypted requester channel; returns token."""
        token = hashlib.sha256(
            f"chan:{self.name}:{requester}".encode()).hexdigest()
        self._channels[requester] = token
        return token

    def verify_channel(self, requester: str, token: str) -> bool:
        return self._channels.get(requester) == token

    # -- crypto service ------------------------------------------------------------
    def serve(self, requester: str, token: str, identity: str) -> Event:
        """Perform one asymmetric op for a verified requester.

        The event fires when the op leaves the accelerator; network and
        RPC costs are the :class:`RemoteKeyEngine`'s business. The
        transient plaintext key exists only within the op (not stored).
        """
        if not self.healthy:
            raise RuntimeError(f"{self.name} is down")
        if not self.verify_channel(requester, token):
            self.requests_denied += 1
            raise AccessDenied(f"requester {requester!r} has no channel")
        if identity not in self._vault:
            self.requests_denied += 1
            raise AccessDenied(f"no key stored for {identity!r}")
        self.requests_served += 1
        return self._engine.submit()

    @property
    def batches(self) -> int:
        if isinstance(self._engine, BatchedAccelerator):
            return self._engine.batches
        return self._engine.operations

    @property
    def fill_ratio(self) -> float:
        if isinstance(self._engine, BatchedAccelerator):
            return self._engine.fill_ratio
        return 1.0


class RemoteKeyEngine:
    """Asym-engine adapter: RPC to a key server over the shared channel.

    Implements the same ``submit()`` interface as the local engines, so
    the mTLS handshake can use it transparently.
    """

    def __init__(self, sim: Simulator, server: KeyServer, requester: str,
                 identity: str, extra_rtt_s: float = 0.0):
        self.sim = sim
        self.server = server
        self.requester = requester
        self.identity = identity
        #: Additional round trip for out-of-AZ/keyless deployments.
        self.extra_rtt_s = extra_rtt_s
        self.token = server.establish_channel(requester)
        self.operations = 0

    @property
    def healthy(self) -> bool:
        return self.server.healthy

    def submit(self) -> Event:
        done = self.sim.event()
        self.sim.process(self._rpc(done), name="key-rpc")
        return done

    def _rpc(self, done: Event):
        config = self.server.config
        rtt = config.network_rtt_s + self.extra_rtt_s
        yield self.sim.timeout(rtt / 2.0)
        served = self.server.serve(self.requester, self.token, self.identity)
        yield served
        yield self.sim.timeout(rtt / 2.0 + config.rpc_overhead_s)
        self.operations += 1
        done.succeed(self.sim.now)


class FallbackEngine:
    """Primary engine with software fallback (Appendix A).

    If the in-AZ key server fails, asymmetric crypto falls back to the
    local CPU so handshakes keep completing (slower, but available).
    """

    def __init__(self, primary, fallback):
        self.primary = primary
        self.fallback = fallback
        self.fallbacks_used = 0

    def submit(self) -> Event:
        if getattr(self.primary, "healthy", True):
            return self.primary.submit()
        self.fallbacks_used += 1
        return self.fallback.submit()


class KeyServerFleet:
    """Per-AZ key servers plus tenant-hosted keyless servers."""

    def __init__(self, sim: Simulator,
                 costs: CryptoCosts = DEFAULT_CRYPTO_COSTS,
                 config: KeyServerConfig = KeyServerConfig()):
        self.sim = sim
        self.costs = costs
        self.config = config
        self._by_az: Dict[str, KeyServer] = {}
        self._keyless: Dict[str, KeyServer] = {}

    def deploy(self, az: str, hardware_accelerated: bool = True) -> KeyServer:
        if az in self._by_az:
            raise ValueError(f"key server already deployed in {az}")
        server = KeyServer(self.sim, az, self.costs, self.config,
                           hardware_accelerated=hardware_accelerated)
        self._by_az[az] = server
        return server

    def deploy_keyless(self, tenant: str,
                       extra_rtt_s: float = 4e-3) -> KeyServer:
        """Tenant-hosted key server (on-prem: extra cross-site RTT)."""
        server = KeyServer(self.sim, az=f"onprem-{tenant}", costs=self.costs,
                           config=self.config, name=f"keyserver-{tenant}")
        server.extra_rtt_s = extra_rtt_s  # type: ignore[attr-defined]
        self._keyless[tenant] = server
        return server

    def server_in(self, az: str) -> Optional[KeyServer]:
        return self._by_az.get(az)

    def engine_for(self, requester: str, identity: str, az: str,
                   tenant: Optional[str] = None,
                   keyless: bool = False) -> RemoteKeyEngine:
        """Build the right remote engine for a requester."""
        if keyless:
            if tenant is None or tenant not in self._keyless:
                raise KeyError(f"tenant {tenant!r} has no keyless server")
            server = self._keyless[tenant]
            extra = getattr(server, "extra_rtt_s", 4e-3)
            return RemoteKeyEngine(self.sim, server, requester, identity,
                                   extra_rtt_s=extra)
        server = self._by_az.get(az)
        if server is None:
            raise KeyError(f"no key server deployed in AZ {az!r}")
        return RemoteKeyEngine(self.sim, server, requester, identity)
