"""Shuffle sharding: unique backend combinations per service (§4.2).

AWS-style shuffle sharding [39] assigns every service its own random
combination of backends, so that even if *all* backends of one service
die (e.g. a query of death takes them down one by one), every other
service still has at least one backend outside the blast radius —
because no two services share their entire combination.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, List, Sequence, Set, Tuple

from .backend import Backend

__all__ = ["ShuffleSharder", "ShardingError"]


class ShardingError(RuntimeError):
    """Not enough backends to honor the sharding constraints."""


class ShuffleSharder:
    """Assigns services unique shuffle-shard backend combinations."""

    def __init__(self, rng: random.Random, backends_per_service_per_az: int = 2,
                 azs_per_service: int = 2, max_attempts: int = 200):
        if backends_per_service_per_az < 1:
            raise ValueError("need at least one backend per AZ per service")
        if azs_per_service < 1:
            raise ValueError("need at least one AZ per service")
        self.rng = rng
        self.backends_per_service_per_az = backends_per_service_per_az
        self.azs_per_service = azs_per_service
        self.max_attempts = max_attempts
        self._assigned: Dict[int, Tuple[str, ...]] = {}
        self._used_combinations: Set[Tuple[str, ...]] = set()

    def assign(self, service_id: int,
               backends_by_az: Dict[str, List[Backend]]) -> List[Backend]:
        """Choose a unique backend combination for one service.

        AZs are chosen to spread configured-service counts; within each
        chosen AZ, ``backends_per_service_per_az`` backends are drawn at
        random, re-drawing until the full combination is unique.
        """
        if service_id in self._assigned:
            raise ValueError(f"service {service_id} already sharded")
        azs = self._pick_azs(backends_by_az)
        for _attempt in range(self.max_attempts):
            chosen: List[Backend] = []
            for az in azs:
                pool = backends_by_az[az]
                if len(pool) < self.backends_per_service_per_az:
                    raise ShardingError(
                        f"AZ {az} has {len(pool)} backends, need "
                        f"{self.backends_per_service_per_az}")
                chosen.extend(self.rng.sample(
                    pool, self.backends_per_service_per_az))
            key = tuple(sorted(backend.name for backend in chosen))
            if key not in self._used_combinations:
                self._used_combinations.add(key)
                self._assigned[service_id] = key
                return chosen
        raise ShardingError(
            f"could not find a unique combination for service {service_id} "
            f"after {self.max_attempts} attempts — add backends")

    def _pick_azs(self, backends_by_az: Dict[str, List[Backend]]) -> List[str]:
        if len(backends_by_az) < self.azs_per_service:
            raise ShardingError(
                f"need {self.azs_per_service} AZs, have {len(backends_by_az)}")
        # Spread: prefer the AZs whose backends currently carry the
        # fewest service configurations.
        def az_load(az: str) -> int:
            return sum(len(b.configured_services) for b in backends_by_az[az])
        ordered = sorted(backends_by_az, key=az_load)
        return ordered[:self.azs_per_service]

    def combination_of(self, service_id: int) -> Tuple[str, ...]:
        return self._assigned[service_id]

    def release(self, service_id: int) -> None:
        key = self._assigned.pop(service_id, None)
        if key is not None:
            self._used_combinations.discard(key)

    # -- isolation properties (Fig 19's guarantees) -------------------------
    def max_pairwise_overlap(self) -> int:
        """Largest backend overlap between any two services."""
        worst = 0
        combos = list(self._assigned.values())
        for a, b in itertools.combinations(combos, 2):
            worst = max(worst, len(set(a) & set(b)))
        return worst

    def fully_overlapping_pairs(self) -> int:
        """Pairs of services sharing an identical combination (must be 0)."""
        combos = list(self._assigned.values())
        return sum(1 for a, b in itertools.combinations(combos, 2)
                   if set(a) == set(b))

    def survivors_if_combination_fails(self, service_id: int) -> Dict[int, int]:
        """For each *other* service: backends it keeps if this service's
        entire combination goes down. Shuffle sharding guarantees every
        value is >= 1."""
        doomed = set(self._assigned[service_id])
        return {other: len(set(combo) - doomed)
                for other, combo in self._assigned.items()
                if other != service_id}

    @staticmethod
    def combinations_available(backends: int, per_service: int) -> int:
        """How many distinct combinations a pool supports (per AZ)."""
        return math.comb(backends, per_service)

    def __len__(self) -> int:
        return len(self._assigned)
