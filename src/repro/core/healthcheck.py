"""Health-check proxying with multi-level aggregation (§6.1).

The consolidated gateway made health checks explode: a service sits on
multiple backends, each backend has multiple replicas, each replica has
multiple cores — and every core probed every app endpoint, up to 515×
the app's real traffic (Table 6). Canal's three aggregation levels:

* **service level** — when services configured on the *same backend*
  probe overlapping app sets, probe the union once per backend (no
  cross-backend aggregation: synchronizing results between backends
  would cost more than it saves);
* **core level** — one elected core probes on behalf of the others;
* **replica level** — a dedicated per-backend health-check proxy probes
  on behalf of all replicas.

Table 7 reports ≥ 99.6 % reduction end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

__all__ = ["ServicePlacement", "HealthCheckPlan", "HealthCheckReduction"]


@dataclass(frozen=True)
class ServicePlacement:
    """Where one service sits and which apps it probes."""

    service_id: int
    backend_names: Tuple[str, ...]
    app_endpoints: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.backend_names:
            raise ValueError("service must sit on at least one backend")
        if not self.app_endpoints:
            raise ValueError("service must have app endpoints to probe")


@dataclass
class HealthCheckReduction:
    """Probe RPS after each aggregation stage (Table 7's columns)."""

    base: float
    service_level: float
    core_level: float
    replica_level: float

    @property
    def reduction(self) -> float:
        if self.base <= 0:
            return 0.0
        return 1.0 - self.replica_level / self.base

    def rows(self) -> List[Tuple[str, float]]:
        return [("Base", self.base),
                ("Service-", self.service_level),
                ("Core-", self.core_level),
                ("Replica-", self.replica_level)]


class HealthCheckPlan:
    """Computes probe traffic with and without each aggregation level."""

    def __init__(self, placements: Sequence[ServicePlacement],
                 replicas_per_backend: int = 2, cores_per_replica: int = 8,
                 probe_rate_per_target_s: float = 1.0):
        if replicas_per_backend < 1 or cores_per_replica < 1:
            raise ValueError("replicas and cores must be positive")
        if probe_rate_per_target_s <= 0:
            raise ValueError("probe rate must be positive")
        self.placements = list(placements)
        self.replicas = replicas_per_backend
        self.cores = cores_per_replica
        self.rate = probe_rate_per_target_s

    # -- per-stage totals -----------------------------------------------------
    def base_rps(self) -> float:
        """Every core of every replica of every backend probes every
        app of every service independently."""
        total = 0.0
        for placement in self.placements:
            probers = len(placement.backend_names) * self.replicas * self.cores
            total += probers * len(placement.app_endpoints) * self.rate
        return total

    def _backend_targets(self, aggregate_services: bool) -> Dict[str, float]:
        """Probe *targets* per backend, with/without service aggregation.

        With aggregation, each backend probes the union of apps of all
        services configured on it; without, it probes each service's
        apps separately (duplicates included).
        """
        by_backend: Dict[str, List[FrozenSet[str]]] = {}
        for placement in self.placements:
            for backend in placement.backend_names:
                by_backend.setdefault(backend, []).append(
                    placement.app_endpoints)
        targets: Dict[str, float] = {}
        for backend, app_sets in by_backend.items():
            if aggregate_services:
                union: Set[str] = set()
                for apps in app_sets:
                    union |= apps
                targets[backend] = float(len(union))
            else:
                targets[backend] = float(sum(len(apps) for apps in app_sets))
        return targets

    def service_level_rps(self) -> float:
        targets = self._backend_targets(aggregate_services=True)
        return sum(targets.values()) * self.replicas * self.cores * self.rate

    def core_level_rps(self) -> float:
        """Service aggregation + one elected core per replica."""
        targets = self._backend_targets(aggregate_services=True)
        return sum(targets.values()) * self.replicas * self.rate

    def replica_level_rps(self) -> float:
        """All three levels: one health-check proxy per backend."""
        targets = self._backend_targets(aggregate_services=True)
        return sum(targets.values()) * self.rate

    def reduction(self) -> HealthCheckReduction:
        return HealthCheckReduction(
            base=self.base_rps(),
            service_level=self.service_level_rps(),
            core_level=self.core_level_rps(),
            replica_level=self.replica_level_rps())

    # -- per-app view (Table 6's complaint) ---------------------------------------
    def probes_received_by_app(self, app: str,
                               aggregated: bool = False) -> float:
        """Probe RPS a single app endpoint receives."""
        if aggregated:
            backends: Set[str] = set()
            for placement in self.placements:
                if app in placement.app_endpoints:
                    backends.update(placement.backend_names)
            return len(backends) * self.rate
        total = 0.0
        for placement in self.placements:
            if app in placement.app_endpoints:
                probers = (len(placement.backend_names)
                           * self.replicas * self.cores)
                total += probers * self.rate
        return total
