"""Root cause analysis: which service is driving a backend's load (§4.3).

Two algorithms, exactly as deployed:

* **basic** — sample the top services on the hot backend and test
  whether each service's recent RPS trend aligns with the backend's
  water-level trend (correlation + growth), picking the best match;
* **intersection** — when several backends run hot simultaneously,
  intersect their configured service sets; a singleton intersection is
  very likely the culprit. The paper runs this *once* as an initial
  speculation and reverts to the basic algorithm when it fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .backend import Backend
from .gateway import MeshGateway
from .monitoring import GatewayMonitor

__all__ = ["RcaResult", "RootCauseAnalyzer", "pearson"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; 0.0 when either side is constant/degenerate."""
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    xs, ys = list(xs[-n:]), list(ys[-n:])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


@dataclass
class RcaResult:
    """Outcome of one analysis."""

    service_id: Optional[int]
    method: str            # "intersection" | "basic" | "none"
    confidence: float = 0.0

    @property
    def found(self) -> bool:
        return self.service_id is not None


class RootCauseAnalyzer:
    """Pinpoints the service behind a backend water-level rise."""

    def __init__(self, gateway: MeshGateway, monitor: GatewayMonitor,
                 window_s: float = 30.0, top_services: int = 5,
                 correlation_threshold: float = 0.6,
                 growth_threshold: float = 1.2):
        self.gateway = gateway
        self.monitor = monitor
        self.window_s = window_s
        self.top_services = top_services
        self.correlation_threshold = correlation_threshold
        self.growth_threshold = growth_threshold

    # -- entry point ----------------------------------------------------------
    def analyze(self, backend: Backend) -> RcaResult:
        """Intersection speculation once, then the basic algorithm."""
        hot = self._hot_backends()
        if len(hot) > 1:
            speculation = self._intersect(hot)
            if speculation.found:
                return speculation
        return self._basic(backend)

    def analyze_sessions(self, backend: Backend) -> RcaResult:
        """Pinpoint by session growth (the Case #1 signature hits the
        SmartNIC table, not the CPU)."""
        best_id: Optional[int] = None
        best_growth = 0.0
        for service_id in backend.top_services_by_sessions(
                self.top_services):
            series = self.monitor.service_session_series.get(service_id)
            if series is None or len(series) < 3:
                continue
            values = self.monitor.recent_values(series, self.window_s)
            if len(values) < 2 or values[0] <= 0:
                continue
            growth = values[-1] / values[0]
            if growth >= self.growth_threshold and growth > best_growth:
                best_growth = growth
                best_id = service_id
        if best_id is None:
            return RcaResult(service_id=None, method="sessions")
        return RcaResult(service_id=best_id, method="sessions",
                         confidence=min(1.0, best_growth / 10.0))

    # -- intersection algorithm ---------------------------------------------------
    def _hot_backends(self) -> List[Backend]:
        threshold = self.monitor.backend_alert_threshold
        return [b for b in self.gateway.all_backends
                if b.water_level() > threshold]

    def _intersect(self, hot_backends: List[Backend]) -> RcaResult:
        common = set(hot_backends[0].configured_services)
        for backend in hot_backends[1:]:
            common &= backend.configured_services
        if len(common) == 1:
            # simlint: ignore[DET003] singleton set — one possible order
            return RcaResult(service_id=next(iter(common)),
                             method="intersection", confidence=0.9)
        return RcaResult(service_id=None, method="intersection")

    # -- basic algorithm --------------------------------------------------------------
    def _basic(self, backend: Backend) -> RcaResult:
        water_series = self.monitor.backend_series.get(backend.name)
        if water_series is None or len(water_series) < 3:
            return RcaResult(service_id=None, method="none")
        water = self.monitor.recent_values(water_series, self.window_s)
        best_id: Optional[int] = None
        best_score = 0.0
        for service_id in backend.top_services(self.top_services):
            rps_series = self.monitor.service_series.get(service_id)
            if rps_series is None or len(rps_series) < 3:
                continue
            rps = self.monitor.recent_values(rps_series, self.window_s)
            if len(rps) < 2 or rps[0] <= 0:
                growth = float("inf") if rps and rps[-1] > 0 else 0.0
            else:
                growth = rps[-1] / rps[0]
            correlation = pearson(rps, water)
            if (growth >= self.growth_threshold
                    and correlation >= self.correlation_threshold
                    and correlation > best_score):
                best_score = correlation
                best_id = service_id
        if best_id is None:
            return RcaResult(service_id=None, method="basic")
        return RcaResult(service_id=best_id, method="basic",
                         confidence=best_score)
