"""Precise resource scaling: Reuse and New (§4.3, Figs 17/18, Table 4).

Two strategies, tried in order:

* **Reuse** — extend the service onto an existing same-AZ backend whose
  water level is low (< 20 %). Fast: a configuration push plus LB
  rebuild, tens of seconds end to end (paper P50 ≈ 55 s from executing
  the operation to the water level dropping below threshold).
* **New** — deploy a fresh backend (VM creation, image load, network
  setup, registration with the resource pool) and extend onto it.
  Slow: P50 ≈ 17 min.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simcore import Simulator
from ..simcore.rng import lognormal_from_median
from .backend import Backend
from .gateway import MeshGateway

__all__ = ["ScalingTimings", "ScalingEvent", "ScalingEngine"]


@dataclass(frozen=True)
class ScalingTimings:
    """Duration distributions of the two strategies (lognormal medians).

    Anchored on Table 4: Reuse executed 10:06:48 → finished 10:07:11
    (23 s) with the water level below threshold at 10:08:02; New
    executed 19:20:49 → finished 19:38:19 (17.5 min), below threshold
    one monitor tick later.
    """

    reuse_median_s: float = 25.0
    reuse_sigma: float = 0.45
    new_median_s: float = 17.0 * 60.0
    new_sigma: float = 0.25
    #: Load actually drains through LB convergence + session turnover.
    settle_median_s: float = 30.0
    settle_sigma: float = 0.5


@dataclass
class ScalingEvent:
    """Record of one scaling operation (the Fig 17/18 unit)."""

    service_id: int
    kind: str                 # "reuse" | "new"
    triggered_at: float
    executed_at: float = 0.0
    finished_at: float = 0.0
    below_threshold_at: float = 0.0
    backend_name: str = ""

    @property
    def completion_s(self) -> float:
        """Execute → below-threshold span (what Fig 17's CDF plots)."""
        return self.below_threshold_at - self.executed_at


class ScalingEngine:
    """Executes precise scaling for one gateway."""

    def __init__(self, sim: Simulator, gateway: MeshGateway,
                 timings: ScalingTimings = ScalingTimings(),
                 reuse_water_threshold: float = 0.2,
                 target_water: float = 0.35,
                 max_extensions: int = 12):
        self.sim = sim
        self.gateway = gateway
        self.timings = timings
        self.reuse_water_threshold = reuse_water_threshold
        #: Precise scaling sizes the operation: backends are added until
        #: the service's hottest backend is predicted below this level.
        self.target_water = target_water
        self.max_extensions = max_extensions
        self.events: List[ScalingEvent] = []
        self._in_flight: set = set()

    # -- candidate search ------------------------------------------------------
    def find_reusable_backend(self, service_id: int) -> Optional[Backend]:
        """A same-AZ, low-water backend not already hosting the service."""
        service_backends = self.gateway.service_backends.get(service_id, ())
        service_azs = {b.az for b in service_backends}
        candidates = [
            b for az in sorted(service_azs)
            for b in self.gateway.backends_by_az.get(az, ())
            if b.is_healthy and not b.hosts_service(service_id)
            and b.water_level() < self.reuse_water_threshold
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda b: b.water_level())

    def _busiest_az(self, service_id: int) -> str:
        backends = self.gateway.service_backends.get(service_id, ())
        if not backends:
            raise KeyError(f"service {service_id} has no backends")
        hottest = max(backends, key=lambda b: b.water_level())
        return hottest.az

    # -- execution ----------------------------------------------------------------
    def scale_service(self, service_id: int, triggered_at: Optional[float] = None):
        """Process generator: run one scaling operation → ScalingEvent.

        Concurrent triggers for the same service (several of its
        backends alerting at once) coalesce into one operation; the
        duplicates return ``None``.
        """
        if service_id in self._in_flight:
            return None
        self._in_flight.add(service_id)
        try:
            event = yield from self._scale_service(service_id, triggered_at)
        finally:
            self._in_flight.discard(service_id)
        return event

    def _scale_service(self, service_id: int,
                       triggered_at: Optional[float] = None):
        event = ScalingEvent(
            service_id=service_id, kind="reuse",
            triggered_at=self.sim.now if triggered_at is None else triggered_at,
            executed_at=self.sim.now)
        reusable = self.find_reusable_backend(service_id)
        rng = self.sim.rng
        if reusable is not None:
            yield self.sim.timeout(lognormal_from_median(
                rng, self.timings.reuse_median_s, self.timings.reuse_sigma))
            self.gateway.extend_service(service_id, reusable)
            event.kind = "reuse"
            event.backend_name = reusable.name
            # Precise scaling: keep extending onto low-water backends
            # until the service's hottest backend is under target (each
            # further extension is one more config push).
            extensions = 1
            while (extensions < self.max_extensions
                   and self._hottest_water(service_id) > self.target_water):
                extra = self.find_reusable_backend(service_id)
                if extra is None:
                    break
                yield self.sim.timeout(lognormal_from_median(
                    rng, self.timings.reuse_median_s / 4.0,
                    self.timings.reuse_sigma))
                self.gateway.extend_service(service_id, extra)
                extensions += 1
        else:
            yield self.sim.timeout(lognormal_from_median(
                rng, self.timings.new_median_s, self.timings.new_sigma))
            backend = self.gateway.deploy_backend(self._busiest_az(service_id))
            self.gateway.extend_service(service_id, backend)
            event.kind = "new"
            event.backend_name = backend.name
        event.finished_at = self.sim.now
        # LB convergence and session turnover before the hot backend's
        # water level is actually measured below threshold.
        yield self.sim.timeout(lognormal_from_median(
            rng, self.timings.settle_median_s, self.timings.settle_sigma))
        event.below_threshold_at = self.sim.now
        self.events.append(event)
        return event

    def _hottest_water(self, service_id: int) -> float:
        backends = [b for b in self.gateway.service_backends.get(
            service_id, ()) if b.is_healthy]
        if not backends:
            return 0.0
        return max(b.water_level() for b in backends)

    # -- reporting ---------------------------------------------------------------
    def events_of_kind(self, kind: str) -> List[ScalingEvent]:
        return [event for event in self.events if event.kind == kind]

    def completion_times(self, kind: str) -> List[float]:
        return [event.completion_s for event in self.events_of_kind(kind)]
