"""The centralized multi-tenant mesh gateway (§4.2, Fig 6/8).

One logical gateway per region serves every tenant's services:

* backends (replica groups) deployed per AZ behind a virtual IP;
* each service shuffle-sharded onto a unique backend combination that
  spans multiple backends per AZ and multiple AZs;
* AZ-aware DNS steering clients to healthy local backends first;
* a disaggregated load balancer (ECMP + Beamer redirectors) per
  (service, AZ) instead of dedicated LB VMs;
* fluid-mode load assignment for the production-scale experiments and
  DES-mode per-request processing for the testbed experiments;
* per-service throttles (the redirector-level early drop of §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..mesh.policy import RateLimiter
from ..netsim import AzAwareResolver, FiveTuple, ResolutionError
from ..obs.runtime import get_telemetry
from ..resilience import (
    BulkheadRejected,
    CircuitOpenError,
    ResiliencePolicies,
)
from ..simcore import Simulator
from .backend import Backend
from .redirector import DeliveryResult, DisaggregatedLB
from .replica import Replica, ReplicaConfig
from .sharding import ShardingError, ShuffleSharder
from .tenancy import TenantRegistry, TenantService

__all__ = ["GatewayConfig", "MeshGateway", "NoBackendAvailable"]


class NoBackendAvailable(RuntimeError):
    """Every backend of a service is down (total outage for it)."""


@dataclass(frozen=True)
class GatewayConfig:
    """Deployment shape of one regional gateway."""

    replicas_per_backend: int = 2
    backends_per_service_per_az: int = 2
    azs_per_service: int = 2
    replica: ReplicaConfig = field(default_factory=ReplicaConfig)
    buckets_per_service: int = 64
    redirector_max_chain: int = 4
    #: Water-level safety threshold that trips backend alerts (§4.2).
    safety_threshold: float = 0.7
    #: Session aggregation via tunneling (§4.4): when on, the SmartNIC
    #: tracks at most tunnels_per_core × cores underlay sessions per
    #: replica regardless of user flow count.
    session_aggregation: bool = False
    tunnels_per_core: int = 10


class MeshGateway:
    """A regional, multi-tenant, consolidated mesh gateway."""

    def __init__(self, sim: Simulator, config: GatewayConfig = GatewayConfig(),
                 registry: Optional[TenantRegistry] = None,
                 dns: Optional[AzAwareResolver] = None):
        self.sim = sim
        self.config = config
        self.registry = registry or TenantRegistry()
        self.dns = dns or AzAwareResolver(rng=sim.rng)
        self.sharder = ShuffleSharder(
            sim.rng,
            backends_per_service_per_az=config.backends_per_service_per_az,
            azs_per_service=config.azs_per_service)
        self.backends_by_az: Dict[str, List[Backend]] = {}
        self.service_backends: Dict[int, List[Backend]] = {}
        self.service_lbs: Dict[Tuple[int, str], DisaggregatedLB] = {}
        #: Fluid-mode offered load per service (weighted RPS applied on
        #: distribution).
        self.service_rps: Dict[int, float] = {}
        #: Fluid-mode concurrent sessions per service.
        self.service_sessions: Dict[int, int] = {}
        self.throttles: Dict[int, RateLimiter] = {}
        #: Services currently quarantined (their load leaves the shared
        #: backends; see sandbox.py).
        self.sandboxed: Dict[int, Backend] = {}
        #: Installed resilience policy set (None = unprotected; every
        #: consultation below guards on this so unprotected runs are
        #: byte-identical with the pre-resilience gateway).
        self.resilience: Optional[ResiliencePolicies] = None
        self._backend_counter = 0

    def install_resilience(self, policies: ResiliencePolicies) -> None:
        """Attach a policy set and feed it the gateway's water levels."""
        policies.water_source = self._max_water_level
        self.resilience = policies

    def _max_water_level(self) -> float:
        """Worst backend water level — the degradation input signal."""
        levels = [backend.water_level() for backend in self.all_backends
                  if backend.is_healthy]
        return max(levels) if levels else 0.0

    # -- deployment -----------------------------------------------------------
    def deploy_backend(self, az: str,
                       replicas: Optional[int] = None) -> Backend:
        """Bring up a new backend (replica group) in an AZ."""
        self._backend_counter += 1
        backend = Backend(
            self.sim, name=f"backend-{self._backend_counter}", az=az,
            replicas=replicas or self.config.replicas_per_backend,
            replica_config=self.config.replica)
        self.backends_by_az.setdefault(az, []).append(backend)
        return backend

    def deploy_initial(self, azs: List[str], backends_per_az: int) -> None:
        for az in azs:
            for _ in range(backends_per_az):
                self.deploy_backend(az)

    @property
    def all_backends(self) -> List[Backend]:
        return [b for pool in self.backends_by_az.values() for b in pool]

    def backend_by_name(self, name: str) -> Backend:
        for backend in self.all_backends:
            if backend.name == name:
                return backend
        raise KeyError(f"no backend named {name!r}")

    # -- service registration ---------------------------------------------------
    def register_service(self, service: TenantService) -> List[Backend]:
        """Shuffle-shard a service onto backends and wire DNS + LBs."""
        if service.service_id in self.service_backends:
            raise ValueError(
                f"service {service.qualified_name} already registered")
        try:
            backends = self.sharder.assign(service.service_id,
                                           self.backends_by_az)
        except ShardingError:
            # Combination space exhausted: grow the smallest AZ pools
            # and retry once. Only the smallest pools — growing every
            # AZ would over-provision regions whose pools are already
            # large enough to host more combinations.
            smallest = min(len(pool)
                           for pool in self.backends_by_az.values())
            for az in sorted(self.backends_by_az):
                if len(self.backends_by_az[az]) == smallest:
                    self.deploy_backend(az)
            try:
                backends = self.sharder.assign(service.service_id,
                                               self.backends_by_az)
            except ShardingError as exc:
                raise ShardingError(
                    f"cannot place service {service.qualified_name}: "
                    f"combination space still exhausted after growing "
                    f"the smallest AZ pools (size {smallest} -> "
                    f"{smallest + 1}); deploy more backends or lower "
                    f"backends_per_service_per_az/azs_per_service"
                ) from exc
        for backend in backends:
            backend.install_service(service.service_id)
        self.service_backends[service.service_id] = list(backends)
        self._rebuild_lbs(service.service_id)
        for az in sorted({backend.az for backend in backends}):
            self.dns.register(self._dns_name(service.service_id),
                              address=f"vip-{service.service_id}-{az}", az=az)
        return backends

    def _dns_name(self, service_id: int) -> str:
        return f"svc-{service_id}.mesh.gateway"

    def _rebuild_lbs(self, service_id: int) -> None:
        """(Re)build the per-AZ disaggregated LBs over current replicas."""
        backends = self.service_backends[service_id]
        for az in sorted({backend.az for backend in backends}):
            replicas = [r for backend in backends if backend.az == az
                        for r in backend.replicas]
            self.service_lbs[(service_id, az)] = DisaggregatedLB(
                service_id, replicas,
                num_buckets=self.config.buckets_per_service,
                max_chain=self.config.redirector_max_chain)

    def extend_service(self, service_id: int, backend: Backend) -> None:
        """Scaling 'Reuse': configure the service onto one more backend."""
        backends = self.service_backends[service_id]
        if backend in backends:
            raise ValueError(
                f"service {service_id} already on {backend.name}")
        backend.install_service(service_id)
        backends.append(backend)
        self._rebuild_lbs(service_id)
        dns_name = self._dns_name(service_id)
        existing_azs = {record.az for record in self.dns.endpoints(dns_name)}
        if backend.az not in existing_azs:
            self.dns.register(dns_name,
                              address=f"vip-{service_id}-{backend.az}",
                              az=backend.az)
        self._redistribute(service_id)

    def shrink_service(self, service_id: int, backend: Backend) -> None:
        """Remove one backend from a service's set (migration/scale-in)."""
        backends = self.service_backends[service_id]
        if backend not in backends:
            raise ValueError(f"service {service_id} not on {backend.name}")
        if len(backends) == 1:
            raise ValueError(
                f"cannot remove the last backend of service {service_id}")
        backends.remove(backend)
        backend.remove_service(service_id)
        self._rebuild_lbs(service_id)
        self._redistribute(service_id)

    # -- fluid-mode load -----------------------------------------------------------
    def set_service_load(self, service_id: int, rps: float) -> None:
        """Assign a service's current offered RPS and spread it.

        The stored value is the *offered* load; any throttle caps the
        carried load at distribution time, so the full rate returns
        automatically when the throttle lifts.
        """
        if rps < 0:
            raise ValueError(f"negative rps {rps}")
        self.service_rps[service_id] = rps
        self._redistribute(service_id)

    def _available_backends(self, service_id: int) -> List[Backend]:
        sandbox = self.sandboxed.get(service_id)
        if sandbox is not None:
            return [sandbox] if sandbox.is_healthy else []
        return [b for b in self.service_backends.get(service_id, ())
                if b.is_healthy]

    def _redistribute(self, service_id: int) -> None:
        rps = self.service_rps.get(service_id, 0.0)
        throttle = self.throttles.get(service_id)
        if throttle is not None:
            rps = min(rps, throttle.rate_per_s)
        service = self.registry.services.get(service_id)
        weight = service.request_weight if service is not None else 1.0
        targets = self._available_backends(service_id)
        # Clear the service's load from every backend that might carry
        # it, then spread over the available set.
        carriers = list(self.service_backends.get(service_id, ()))
        sandbox = self.sandboxed.get(service_id)
        if sandbox is not None and sandbox not in carriers:
            carriers.append(sandbox)
        for backend in carriers:
            if backend.hosts_service(service_id):
                backend.offer_load(service_id, 0.0)
        if rps <= 0 or not targets:
            return
        share = rps / len(targets)
        for backend in targets:
            backend.offer_load(service_id, share, weight)

    def set_service_sessions(self, service_id: int, sessions: int) -> None:
        """Assign a service's concurrent session count and spread it."""
        if sessions < 0:
            raise ValueError(f"negative session count {sessions}")
        self.service_sessions[service_id] = sessions
        targets = self._available_backends(service_id)
        carriers = list(self.service_backends.get(service_id, ()))
        sandbox = self.sandboxed.get(service_id)
        if sandbox is not None and sandbox not in carriers:
            carriers.append(sandbox)
        for backend in carriers:
            if backend.hosts_service(service_id):
                backend.offer_sessions(service_id, 0)
        if sessions <= 0 or not targets:
            return
        share = sessions // len(targets)
        for backend in targets:
            backend.offer_sessions(service_id, share)

    def refresh_loads(self) -> None:
        """Re-spread every service (after failures/topology changes)."""
        for service_id in list(self.service_rps):
            self._redistribute(service_id)
        for service_id, sessions in list(self.service_sessions.items()):
            self.set_service_sessions(service_id, sessions)

    # -- throttling (redirector-level early drop, §6.2) ---------------------------
    def throttle_service(self, service_id: int, rate_per_s: float) -> None:
        self.throttles[service_id] = RateLimiter(rate_per_s)
        get_telemetry().inc("gateway_throttles_installed_total",
                            service=str(service_id))
        self._redistribute(service_id)

    def unthrottle_service(self, service_id: int) -> None:
        self.throttles.pop(service_id, None)
        self._redistribute(service_id)

    # -- failure handling -------------------------------------------------------------
    def fail_backend(self, name: str) -> None:
        backend = self.backend_by_name(name)
        backend.fail_all()
        self._update_dns_health(backend.az)
        self.refresh_loads()

    def recover_backend(self, name: str) -> None:
        backend = self.backend_by_name(name)
        backend.recover_all()
        self._update_dns_health(backend.az)
        self.refresh_loads()

    def fail_az(self, az: str) -> None:
        """Power outage: every backend in the AZ goes down (§4.2)."""
        for backend in self.backends_by_az.get(az, ()):
            backend.fail_all()
        self._update_dns_health(az)
        self.refresh_loads()

    def recover_az(self, az: str) -> None:
        for backend in self.backends_by_az.get(az, ()):
            backend.recover_all()
        self._update_dns_health(az)
        self.refresh_loads()

    def update_dns_health(self, az: str) -> None:
        """Re-derive per-service DNS health for one AZ.

        Needed whenever replica health changes *below* the
        backend-level failure API (e.g. replica-scoped fault
        injection): an AZ whose last replica dies must stop resolving,
        and one whose first replica returns must resolve again.
        """
        self._update_dns_health(az)

    def _update_dns_health(self, az: str) -> None:
        for service_id, backends in self.service_backends.items():
            az_backends = [b for b in backends if b.az == az]
            if not az_backends:
                continue
            healthy = any(b.is_healthy for b in az_backends)
            try:
                self.dns.set_health(self._dns_name(service_id),
                                    f"vip-{service_id}-{az}", healthy)
            except KeyError:
                continue

    # -- DES-mode dataplane ----------------------------------------------------------
    def deliver(self, service_id: int, flow: FiveTuple, is_syn: bool,
                client_az: str) -> DeliveryResult:
        """Steer one packet to a replica (DNS → AZ → redirectors)."""
        telemetry = get_telemetry()
        record = self.dns.resolve(self._dns_name(service_id), client_az)
        lb = self.service_lbs.get((service_id, record.az))
        if lb is None:
            telemetry.inc("gateway_no_backend_total",
                          service=str(service_id))
            raise NoBackendAvailable(
                f"service {service_id} has no LB in {record.az}")
        try:
            result = lb.deliver(flow, is_syn)
        except RuntimeError as exc:
            # DNS may lag replica health (e.g. failures injected below
            # the gateway API); an empty chain is still a 503.
            telemetry.inc("gateway_no_backend_total",
                          service=str(service_id))
            raise NoBackendAvailable(str(exc)) from exc
        if telemetry.enabled:
            telemetry.inc("gateway_deliveries_total",
                          service=str(service_id), az=record.az)
            if result.redirection_hops:
                telemetry.inc("gateway_redirection_hops_total",
                              amount=result.redirection_hops,
                              service=str(service_id))
        return result

    def process_request(self, service_id: int, flow: FiveTuple,
                        is_syn: bool, client_az: str, trace=None,
                        parent_id: int = 1):
        """Process generator: deliver + execute one request's L7 work.

        With a ``trace`` handle, the whole gateway pass becomes an
        ``l7`` span under ``parent_id`` — annotated with the LB pick
        (replica, redirection hops) — enclosing the replica-execution
        child span.
        """
        start = self.sim.now
        policies = self.resilience
        if policies is not None and not policies.allow_dispatch(
                service_id, self.sim.now):
            raise CircuitOpenError(
                f"service {service_id}'s circuit breaker is "
                f"{policies.breaker_state(service_id)}")
        l7_id = trace.reserve_id() if trace is not None else 0
        service = self.registry.services.get(service_id)
        tenant = service.tenant.name if service is not None else ""
        try:
            result = self.deliver(service_id, flow, is_syn, client_az)
            if result.is_new_flow:
                self._track_session(result.replica)
        except (NoBackendAvailable, ResolutionError):
            # Both shapes of "nothing to dispatch to" feed the breaker.
            if policies is not None:
                policies.record_dispatch(service_id, self.sim.now,
                                         ok=False)
            raise
        weight = service.request_weight if service is not None else 1.0
        backend_name = result.replica.backend_name
        if policies is not None and not policies.acquire_slot(
                tenant, backend_name):
            raise BulkheadRejected(
                f"tenant {tenant!r} is at its concurrency cap on "
                f"{backend_name}")
        try:
            yield from result.replica.process_request(weight, trace=trace,
                                                      parent_id=l7_id)
        finally:
            if policies is not None:
                policies.release_slot(tenant, backend_name)
        if policies is not None:
            policies.record_dispatch(service_id, self.sim.now, ok=True)
        get_telemetry().inc("gateway_requests_total",
                            service=str(service_id),
                            replica=result.replica.name)
        if trace is not None:
            annotations = dict(
                replica=result.replica.name,
                redirection_hops=result.redirection_hops,
                new_flow=result.is_new_flow,
                tunneled=self.config.session_aggregation)
            if policies is not None:
                annotations["breaker"] = policies.breaker_state(service_id)
            trace.add("gateway-l7", "l7", start, self.sim.now,
                      parent_id=parent_id, span_id=l7_id,
                      source=f"gateway/{result.replica.name}",
                      **annotations)
        return result

    def _track_session(self, replica: Replica) -> None:
        """Account the underlay session state of one new flow (§3.2/§4.4).

        Without tunneling, every user flow is a SmartNIC entry and the
        table can fill while CPU idles. With tunneling, at most
        tunnels_per_core × cores entries exist per replica.
        """
        if self.config.session_aggregation:
            cap = self.config.tunnels_per_core * replica.config.cores
            if replica.sessions_used < cap:
                replica.add_sessions(1)
            return
        if not replica.add_sessions(1):
            get_telemetry().inc("gateway_session_exhaustion_total",
                                replica=replica.name)
            raise NoBackendAvailable(
                f"replica {replica.name}'s session table is exhausted "
                f"({replica.config.session_capacity} entries) — scale "
                f"out or enable session aggregation")

    def close_flow(self, service_id: int, flow: FiveTuple) -> None:
        """Tear down one user flow's state (connection close)."""
        for (sid, _az), lb in self.service_lbs.items():
            if sid != service_id:
                continue
            owner = lb.flows.owner(flow)
            if owner is None:
                continue
            lb.close_flow(flow)
            if not self.config.session_aggregation:
                lb.replica(owner).remove_sessions(1)
            return

    # -- monitoring views --------------------------------------------------------------
    def water_levels(self) -> Dict[str, float]:
        return {backend.name: backend.water_level()
                for backend in self.all_backends}

    def overloaded_backends(self) -> List[Backend]:
        return [backend for backend in self.all_backends
                if backend.water_level() > self.config.safety_threshold]

    def service_outage(self, service_id: int) -> bool:
        """True when the service has no healthy backend anywhere."""
        return not self._available_backends(service_id)
