"""Multi-indicator monitoring of the gateway (§4.2).

A DES process samples every backend's water level, every service's RPS,
session counts, and error codes on a fixed tick, keeping the time
series RCA needs and raising the three alert levels of the paper:
backend (water level over threshold), service (resources near
depletion for auto-scaling tenants), and tenant (user-cluster
saturation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..simcore import Simulator, TimeSeries
from .gateway import MeshGateway

__all__ = ["Alert", "GatewayMonitor"]


@dataclass(frozen=True)
class Alert:
    """One monitoring alert."""

    level: str        # "backend" | "service" | "tenant"
    subject: str      # backend name / service id / tenant name
    time: float
    value: float
    message: str = ""


class GatewayMonitor:
    """Periodic sampler + alert source for one gateway."""

    def __init__(self, sim: Simulator, gateway: MeshGateway,
                 interval_s: float = 1.0,
                 backend_alert_threshold: Optional[float] = None,
                 session_alert_threshold: float = 0.8,
                 service_alert_utilization: float = 0.85,
                 user_cluster_alert_utilization: float = 0.95):
        self.sim = sim
        self.gateway = gateway
        self.interval_s = interval_s
        self.backend_alert_threshold = (
            backend_alert_threshold
            if backend_alert_threshold is not None
            else gateway.config.safety_threshold)
        #: §6.2 Case #1: "user traffic suddenly saturated 80% of the
        #: backend sessions, triggering a backend-level alert".
        self.session_alert_threshold = session_alert_threshold
        self.service_alert_utilization = service_alert_utilization
        self.user_cluster_alert_utilization = user_cluster_alert_utilization
        self.backend_series: Dict[str, TimeSeries] = {}
        self.session_series: Dict[str, TimeSeries] = {}
        self.service_series: Dict[int, TimeSeries] = {}
        self.service_session_series: Dict[int, TimeSeries] = {}
        self.alerts: List[Alert] = []
        self._subscribers: List[Callable[[Alert], None]] = []
        #: External feed of user-cluster utilization per tenant (set by
        #: experiments that host the user cluster on our cloud).
        self.user_cluster_utilization: Dict[str, float] = {}
        self._alert_armed: Dict[str, bool] = {}
        self._running = False

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        self._subscribers.append(callback)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self.sim.process(self._sampling_loop(), name="gateway-monitor")

    def _sampling_loop(self):
        while True:
            self.sample()
            yield self.sim.timeout(self.interval_s)

    def sample(self) -> None:
        """Take one sample of every indicator, then evaluate alerts.

        Recording strictly precedes alerting so that responders (and
        their RCA) always see series that include the current tick.
        """
        now = self.sim.now
        backend_levels = {}
        backend_sessions = {}
        for backend in self.gateway.all_backends:
            level = backend.water_level()
            backend_levels[backend.name] = level
            self.backend_series.setdefault(
                backend.name,
                TimeSeries(f"water-{backend.name}")).record(now, level)
            sessions = backend.session_utilization()
            backend_sessions[backend.name] = sessions
            self.session_series.setdefault(
                backend.name,
                TimeSeries(f"sessions-{backend.name}")).record(now, sessions)
        for service_id, rps in self.gateway.service_rps.items():
            self.service_series.setdefault(
                service_id, TimeSeries(f"rps-{service_id}")).record(now, rps)
        for service_id, sessions in self.gateway.service_sessions.items():
            self.service_session_series.setdefault(
                service_id,
                TimeSeries(f"sess-{service_id}")).record(now, float(sessions))

        for name, level in backend_levels.items():
            self._edge_alert(
                key=f"backend:{name}",
                firing=level > self.backend_alert_threshold,
                alert=Alert("backend", name, now, level,
                            f"water level {level:.2f} over "
                            f"{self.backend_alert_threshold:.2f}"))
        for name, sessions in backend_sessions.items():
            self._edge_alert(
                key=f"sessions:{name}",
                firing=sessions > self.session_alert_threshold,
                alert=Alert("backend", name, now, sessions,
                            f"session table {sessions:.2f} over "
                            f"{self.session_alert_threshold:.2f}"))
        for service_id in self.gateway.service_rps:
            self._evaluate_service_alert(service_id, now)
        for tenant, utilization in self.user_cluster_utilization.items():
            self._edge_alert(
                key=f"tenant:{tenant}",
                firing=utilization >= self.user_cluster_alert_utilization,
                alert=Alert("tenant", tenant, now, utilization,
                            "user cluster near saturation"))

    def _evaluate_service_alert(self, service_id: int, now: float) -> None:
        service = self.gateway.registry.services.get(service_id)
        if service is None or not service.tenant.auto_scaling:
            return
        backends = self.gateway.service_backends.get(service_id, ())
        healthy = [b for b in backends if b.is_healthy]
        if not healthy:
            return
        utilization = max(b.water_level() for b in healthy)
        self._edge_alert(
            key=f"service:{service_id}",
            firing=utilization >= self.service_alert_utilization,
            alert=Alert("service", str(service_id), now, utilization,
                        "auto-scaling service near resource depletion"))

    def _edge_alert(self, key: str, firing: bool, alert: Alert) -> None:
        """Raise on the rising edge only (no alert storms)."""
        was_firing = self._alert_armed.get(key, False)
        self._alert_armed[key] = firing
        if firing and not was_firing:
            self.alerts.append(alert)
            for subscriber in list(self._subscribers):
                subscriber(alert)

    # -- query helpers ----------------------------------------------------------
    def backend_water(self, backend_name: str) -> TimeSeries:
        return self.backend_series[backend_name]

    def service_rps_on_backend(self, service_id: int,
                               backend_name: str) -> float:
        backend = self.gateway.backend_by_name(backend_name)
        return backend.service_rps(service_id)

    def recent_values(self, series: TimeSeries, window_s: float) -> List[float]:
        start = self.sim.now - window_s
        return [v for t, v in zip(series.times, series.values) if t >= start]
