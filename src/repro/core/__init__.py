"""The paper's contribution: Canal Mesh and its cloud infrastructure.

* :class:`CanalMesh` — on-node proxies + centralized gateway + key
  server, implementing the common ``ServiceMesh`` interface;
* the multi-tenant gateway: backends/replicas, shuffle sharding,
  hierarchical failure recovery, disaggregated LB (Beamer-style
  redirectors), session aggregation;
* the control loops: monitoring, root-cause analysis, precise scaling
  (Reuse/New), anomaly-triggered sandbox migration and throttling;
* operations machinery: health-check aggregation, in-phase traffic
  migration, full-mesh probing, deployment-cost economics.
"""

from .anomaly import (
    AnomalySignals,
    RapidResponder,
    ResponseRecord,
    classify,
)
from .backend import Backend
from .canal import CanalControlPlane, CanalMesh
from .economics import (
    RegionDemand,
    VmFootprint,
    cost_reduction,
    deployment_footprint,
)
from .failure import FailureEvent, FailureInjector, availability_report
from .gateway import GatewayConfig, MeshGateway, NoBackendAvailable
from .healthcheck import (
    HealthCheckPlan,
    HealthCheckReduction,
    ServicePlacement,
)
from .key_server import (
    AccessDenied,
    FallbackEngine,
    KeyServer,
    KeyServerConfig,
    KeyServerFleet,
    RemoteKeyEngine,
)
from .monitoring import Alert, GatewayMonitor
from .observability import Span, Trace, TraceCollector
from .onnode import FlowRecord, OnNodeProxy
from .proxyless import (
    Eni,
    EniLimitExceeded,
    EniRegistry,
    ProxylessCanalMesh,
)
from .upgrade import RollingUpgrade, UpgradeReport
from .phase import DailyProfile, MigrationPlan, PhaseMonitor, hwhm_window
from .prober import AppEndpoint, HealthCheckProxy, ProbeRecord
from .probing import APP_TYPES, ProbeMesh, ProbeResult
from .rca import RcaResult, RootCauseAnalyzer, pearson
from .redirector import (
    BucketTable,
    DeliveryResult,
    DisaggregatedLB,
    FlowStore,
)
from .replica import Replica, ReplicaConfig
from .sandbox import MigrationRecord, SandboxManager
from .scaling import ScalingEngine, ScalingEvent, ScalingTimings
from .session_aggregation import Disaggregator, MtuError, SessionAggregator
from .sharding import ShardingError, ShuffleSharder
from .tenancy import Tenant, TenantRegistry, TenantService

__all__ = [
    "APP_TYPES",
    "AccessDenied",
    "Alert",
    "AnomalySignals",
    "AppEndpoint",
    "Backend",
    "BucketTable",
    "CanalControlPlane",
    "CanalMesh",
    "DailyProfile",
    "DeliveryResult",
    "Disaggregator",
    "DisaggregatedLB",
    "Eni",
    "EniLimitExceeded",
    "EniRegistry",
    "FailureEvent",
    "FailureInjector",
    "FallbackEngine",
    "FlowRecord",
    "FlowStore",
    "GatewayConfig",
    "GatewayMonitor",
    "HealthCheckPlan",
    "HealthCheckProxy",
    "HealthCheckReduction",
    "KeyServer",
    "KeyServerConfig",
    "KeyServerFleet",
    "MeshGateway",
    "MigrationPlan",
    "MigrationRecord",
    "MtuError",
    "NoBackendAvailable",
    "OnNodeProxy",
    "PhaseMonitor",
    "ProbeMesh",
    "ProbeRecord",
    "ProbeResult",
    "ProxylessCanalMesh",
    "RapidResponder",
    "RollingUpgrade",
    "RcaResult",
    "RegionDemand",
    "RemoteKeyEngine",
    "Replica",
    "ReplicaConfig",
    "ResponseRecord",
    "RootCauseAnalyzer",
    "SandboxManager",
    "ScalingEngine",
    "ScalingEvent",
    "ScalingTimings",
    "ServicePlacement",
    "SessionAggregator",
    "ShardingError",
    "ShuffleSharder",
    "Span",
    "Tenant",
    "Trace",
    "TraceCollector",
    "UpgradeReport",
    "TenantRegistry",
    "TenantService",
    "VmFootprint",
    "availability_report",
    "classify",
    "cost_reduction",
    "deployment_footprint",
    "hwhm_window",
    "pearson",
]
