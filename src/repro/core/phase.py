"""Traffic migration for in-phase services (§6.3).

Services sharing a backend whose diurnal peaks coincide (phase
synchronization) threaten sudden CPU surges. Canal periodically samples
top services per backend, detects in-phase groups, and scatters them:

* **which services to migrate** — prioritize high RPS (fewer migrations
  move more load) and few long-lasting sessions (faster cut-over);
  HTTPS traffic is weighted 3× (it costs ~3× the resources);
* **which backends receive them** — same AZ only, complementary traffic
  patterns, chosen by the two-stage sampling of the paper: sample
  candidate backends at the service's HWHM time points (set *G*),
  shortlist the five lowest, then compare their full 24 h RPS sums
  (set *G′*) and take the lowest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .backend import Backend
from .gateway import MeshGateway
from .rca import pearson
from .tenancy import TenantService

__all__ = ["DailyProfile", "hwhm_window", "PhaseMonitor", "MigrationPlan"]


@dataclass(frozen=True)
class DailyProfile:
    """A 24-hour RPS profile, sampled at a fixed interval."""

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 4:
            raise ValueError("profile needs at least 4 samples")
        if any(v < 0 for v in self.samples):
            raise ValueError("negative RPS in profile")

    @property
    def peak_index(self) -> int:
        return max(range(len(self.samples)), key=self.samples.__getitem__)

    @property
    def peak(self) -> float:
        return self.samples[self.peak_index]

    def total(self) -> float:
        return sum(self.samples)

    def at(self, indices: Sequence[int]) -> List[float]:
        return [self.samples[i % len(self.samples)] for i in indices]


def hwhm_window(profile: DailyProfile) -> Tuple[int, int]:
    """Half-width-at-half-maximum window around the peak (sample indices).

    The contiguous index range around the peak where the profile stays
    at or above half of (peak + floor)/... — conventional HWHM uses
    half of the maximum above the baseline.
    """
    floor = min(profile.samples)
    half = floor + (profile.peak - floor) / 2.0
    lo = profile.peak_index
    hi = profile.peak_index
    n = len(profile.samples)
    while lo > 0 and profile.samples[lo - 1] >= half:
        lo -= 1
    while hi < n - 1 and profile.samples[hi + 1] >= half:
        hi += 1
    return lo, hi


@dataclass
class MigrationPlan:
    """One planned service move."""

    service_id: int
    from_backend: str
    to_backend: str
    reason: str = "in-phase"


class PhaseMonitor:
    """Detects in-phase services and plans scatter migrations."""

    def __init__(self, gateway: MeshGateway,
                 correlation_threshold: float = 0.8,
                 top_services: int = 5, shortlist_size: int = 5,
                 hwhm_sample_points: int = 10):
        self.gateway = gateway
        self.correlation_threshold = correlation_threshold
        self.top_services = top_services
        self.shortlist_size = shortlist_size
        self.hwhm_sample_points = hwhm_sample_points
        #: 24 h profiles per service and per backend, fed by experiments.
        self.service_profiles: Dict[int, DailyProfile] = {}
        self.backend_profiles: Dict[str, DailyProfile] = {}

    # -- detection ----------------------------------------------------------
    def in_phase_groups(self, backend: Backend) -> List[List[int]]:
        """Top services on a backend whose profiles are phase-locked."""
        candidates = [sid for sid in backend.top_services(self.top_services)
                      if sid in self.service_profiles]
        groups: List[List[int]] = []
        for service_id in candidates:
            placed = False
            for group in groups:
                anchor = self.service_profiles[group[0]]
                mine = self.service_profiles[service_id]
                if pearson(anchor.samples, mine.samples) \
                        >= self.correlation_threshold:
                    group.append(service_id)
                    placed = True
                    break
            if not placed:
                groups.append([service_id])
        return [group for group in groups if len(group) >= 2]

    # -- candidate selection (which services move) --------------------------------
    def rank_migration_candidates(self, group: Sequence[int]) -> List[int]:
        """Order a phase-locked group by migration preference.

        Weighted RPS descending (HTTPS 3×), long-session fraction
        ascending. All but the anchor (the heaviest stays put only if
        the group has a single other member — moving the highest-RPS
        services first minimizes the number of moves).
        """
        def sort_key(service_id: int):
            service = self.gateway.registry.services.get(service_id)
            profile = self.service_profiles[service_id]
            weight = service.request_weight if service else 1.0
            long_fraction = (service.long_session_fraction
                             if service else 0.0)
            return (-(profile.peak * weight), long_fraction)

        return sorted(group, key=sort_key)

    # -- target selection (which backends receive) -----------------------------------
    def choose_target_backend(self, service_id: int,
                              source: Backend) -> Optional[Backend]:
        """The paper's two-stage G/G′ sampling, same-AZ only."""
        profile = self.service_profiles.get(service_id)
        if profile is None:
            return None
        lo, hi = hwhm_window(profile)
        span = max(1, hi - lo)
        points = [lo + round(i * span / max(1, self.hwhm_sample_points - 1))
                  for i in range(self.hwhm_sample_points)]
        candidates = [
            b for b in self.gateway.backends_by_az.get(source.az, ())
            if b.name != source.name and b.is_healthy
            and not b.hosts_service(service_id)
            and b.name in self.backend_profiles
        ]
        if not candidates:
            return None
        # Stage 1: G — candidate load at the service's HWHM time points.
        def g_sum(backend: Backend) -> float:
            return sum(self.backend_profiles[backend.name].at(points))

        shortlist = sorted(candidates, key=g_sum)[:self.shortlist_size]
        # Stage 2: G' — full-24h load of the shortlist.
        def g_prime_sum(backend: Backend) -> float:
            return self.backend_profiles[backend.name].total()

        return min(shortlist, key=g_prime_sum)

    # -- planning ----------------------------------------------------------------------
    def plan_for_backend(self, backend: Backend) -> List[MigrationPlan]:
        """Scatter every in-phase group on a backend (anchor stays)."""
        plans: List[MigrationPlan] = []
        for group in self.in_phase_groups(backend):
            ranked = self.rank_migration_candidates(group)
            # Keep one service of the group in place; move the rest.
            for service_id in ranked[:-1]:
                target = self.choose_target_backend(service_id, backend)
                if target is None:
                    continue
                plans.append(MigrationPlan(
                    service_id=service_id, from_backend=backend.name,
                    to_backend=target.name))
        return plans

    def execute(self, plan: MigrationPlan) -> None:
        """Transparent migration: extend to target, shrink from source."""
        target = self.gateway.backend_by_name(plan.to_backend)
        source = self.gateway.backend_by_name(plan.from_backend)
        if not target.hosts_service(plan.service_id):
            self.gateway.extend_service(plan.service_id, target)
        self.gateway.shrink_service(plan.service_id, source)
