"""Canal's minimal on-node proxy (§4.1).

The functional-equivalence analysis keeps exactly three things local:

* traffic redirection into the mesh — via eBPF sockmap with Nagle
  re-implemented (not iptables);
* the local half of zero-trust — mTLS origination with certificates
  that never leave the node, asymmetric crypto offloaded to the key
  server;
* L4 observability — per-pod traffic labeling and flow records
  (Appendix A: the on-node proxy must label traffic per pod, which a
  per-pod sidecar got for free).

Everything else (traffic control, L7 policy, L7 observability) lives in
the remote gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..kernel import EbpfRedirect
from ..mesh.costs import DEFAULT_COSTS, MeshCostModel
from ..mesh.proxy import ProxyTier
from ..obs.runtime import get_telemetry
from ..simcore import Simulator

__all__ = ["FlowRecord", "OnNodeProxy"]


@dataclass
class FlowRecord:
    """One L4 observability record (per-pod labeled)."""

    pod: str
    service: str
    bytes_out: int
    bytes_in: int
    time: float


class OnNodeProxy:
    """The lightweight per-node proxy of the Canal architecture."""

    def __init__(self, sim: Simulator, node_name: str, az: str,
                 cores: int = 1, costs: MeshCostModel = DEFAULT_COSTS,
                 nagle_enabled: bool = True):
        self.sim = sim
        self.node_name = node_name
        self.az = az
        self.costs = costs
        self.tier = ProxyTier(sim, cores=cores, name=f"onnode@{node_name}")
        self.redirect = EbpfRedirect(costs.kernel,
                                     nagle_enabled=nagle_enabled)
        self.flow_records: List[FlowRecord] = []
        self.pod_bytes: Dict[str, int] = {}
        #: Asym engine installed by CanalMesh (remote/local/software).
        self.asym_engine = None

    def data_path_cost_s(self, nbytes: int, mtls: bool = True) -> float:
        """CPU of moving one message through the on-node proxy."""
        cost = (self.costs.ebpf_redirect_cpu_s()
                + self.costs.canal_onnode_l4_s)
        if mtls:
            cost += self.costs.symmetric_cost(nbytes)
        return cost

    def process_message(self, pod: str, service: str, bytes_out: int,
                        bytes_in: int, mtls: bool = True, trace=None,
                        parent_id: int = 1):
        """Process generator: redirect + L4 + crypto + observability.

        With a ``trace`` handle, the pass becomes an ``l4`` span under
        ``parent_id``, carrying the per-pod byte labels — the causal
        version of the flow records below.
        """
        cost = self.data_path_cost_s(bytes_out + bytes_in, mtls=mtls)
        yield from self.tier.work(cost, trace=trace, parent_id=parent_id,
                                  name="onnode-l4", layer="l4", pod=pod,
                                  bytes_out=bytes_out, bytes_in=bytes_in)
        self.record_flow(pod, service, bytes_out, bytes_in)

    def record_flow(self, pod: str, service: str, bytes_out: int,
                    bytes_in: int) -> None:
        """Per-pod labeling for fine-grained statistics (Appendix A)."""
        self.flow_records.append(FlowRecord(
            pod=pod, service=service, bytes_out=bytes_out,
            bytes_in=bytes_in, time=self.sim.now))
        self.pod_bytes[pod] = (self.pod_bytes.get(pod, 0)
                               + bytes_out + bytes_in)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("onnode_messages_total", node=self.node_name,
                          service=service)
            telemetry.inc("onnode_bytes_total",
                          amount=bytes_out + bytes_in,
                          node=self.node_name, pod=pod)

    def handshake_work(self):
        """Process generator: the non-asymmetric part of connection setup
        (TCP accept + TLS record machinery + session install)."""
        yield from self.tier.work(self.costs.handshake_base_s
                                  + self.costs.connection_setup_s)

    def pod_traffic_report(self) -> Dict[str, int]:
        """Bytes per pod — the observability output users consume."""
        return dict(self.pod_bytes)
