"""Simulation-as-a-service: the repro harness as a long-running server.

``repro.serve`` turns one-shot CLI runs into submittable, queueable,
observable *jobs*. The shape mirrors any production serving stack —
which is the point: the paper's §4 is about operating a shared
multi-tenant serving layer safely, and this package applies the same
queue/backpressure/drain discipline to our own harness:

* :mod:`.jobs` — job specs (JSON in, validated), the lifecycle state
  machine (``queued → running → done|failed``), and the thread-safe
  :class:`JobStore` with its append-only per-job event log;
* :mod:`.scheduler` — priority admission with **dedupe** against
  identical in-flight jobs, a **cache fast path** that answers
  cache-warm work without occupying a worker, **bounded-queue
  backpressure** (429 + Retry-After), per-attempt **timeouts**,
  bounded **retries on worker death**, and **graceful drain**;
* :mod:`.runner` — the forked worker body (reuses
  ``repro.runtime.run_exhibit`` / ``sweep_imap``), streaming progress
  + per-job-scoped ``repro.obs`` telemetry over a pipe;
* :mod:`.api` — stdlib asyncio HTTP/1.1: ``POST /jobs``,
  ``GET /jobs/{id}``, SSE at ``GET /jobs/{id}/events``,
  ``GET /artifacts/...``, ``GET /healthz``, ``GET /metrics``
  (Prometheus text via ``repro.obs.export``);
* :mod:`.metrics` — queue depth, running/completed/failed counters,
  per-job wall time;
* :mod:`.client` — the small blocking client tests, examples, and CI
  drive the server with.

Boot it with ``python -m repro.serve`` (see :mod:`.__main__`).
"""

from .api import ServeAPI, background_server, start_server
from .client import ServeClient, ServeError, ServerBusy
from .jobs import Job, JobEvent, JobSpec, JobSpecError, JobStore
from .metrics import ServeMetrics
from .scheduler import DrainingError, QueueFullError, Scheduler

__all__ = [
    "DrainingError",
    "Job",
    "JobEvent",
    "JobSpec",
    "JobSpecError",
    "JobStore",
    "QueueFullError",
    "Scheduler",
    "ServeAPI",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerBusy",
    "background_server",
    "start_server",
]
