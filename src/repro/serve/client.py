"""Small blocking client for the ``repro.serve`` HTTP API.

Used by the test suite, the CI smoke job, and
``examples/serve_quickstart.py`` — and handy interactively::

    from repro.serve.client import ServeClient
    client = ServeClient("127.0.0.1", 8731)
    job = client.submit({"kind": "exhibit", "exhibit": "fig11"})
    job = client.wait(job["id"], timeout=120)
    print(job["state"], job["result"][0]["findings"])
    for event in client.events(job["id"]):   # replays the event log
        print(event["name"], event["data"])

One ``http.client`` connection per call (the server closes after each
response anyway); :meth:`events` holds its own connection open for the
life of the SSE stream. Backpressure surfaces as :class:`ServerBusy`
with the server's ``Retry-After`` parsed out, so callers can implement
honest retry loops.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional

__all__ = ["ServeClient", "ServeError", "ServerBusy"]


class ServeError(RuntimeError):
    """Non-2xx response from the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServerBusy(ServeError):
    """429 (queue full) or 503 (draining) — retry after a delay."""

    def __init__(self, status: int, message: str, retry_after_s: float):
        super().__init__(status, message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """Blocking HTTP client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[object] = None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            blob = response.read()
            return response, blob
        finally:
            connection.close()

    def _json(self, method: str, path: str,
              payload: Optional[object] = None) -> Dict[str, object]:
        response, blob = self._request(method, path, payload)
        decoded = self._decode(blob)
        if response.status >= 400:
            self._raise(response, decoded)
        return decoded

    @staticmethod
    def _decode(blob: bytes) -> Dict[str, object]:
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"error": blob.decode("utf-8", "replace")}

    #: Fallback delay when a ``Retry-After`` header is missing or junk.
    DEFAULT_RETRY_AFTER_S = 1.0
    #: Ceiling on server-suggested delays — an honest retry loop should
    #: never sleep for hours because a proxy emitted a huge value.
    MAX_RETRY_AFTER_S = 300.0

    @classmethod
    def _retry_after_delay(cls, header: Optional[str]) -> float:
        """Clamp a ``Retry-After`` header to a sane, finite delay.

        Non-numeric values (including the HTTP-date form this client
        does not speak), ``nan``, ``inf``, and negatives all collapse
        to the default rather than poisoning callers' sleep loops.
        """
        try:
            delay = float(header) if header is not None else None
        except (ValueError, TypeError):
            delay = None
        if delay is None or delay != delay or delay < 0:  # junk or nan
            delay = cls.DEFAULT_RETRY_AFTER_S
        return min(delay, cls.MAX_RETRY_AFTER_S)

    @classmethod
    def _raise(cls, response, decoded: Dict[str, object]) -> None:
        message = str(decoded.get("error", "request failed"))
        if response.status in (429, 503):
            delay = cls._retry_after_delay(
                response.getheader("Retry-After"))
            raise ServerBusy(response.status, message, delay)
        raise ServeError(response.status, message)

    # -- API surface ---------------------------------------------------------
    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        """POST /jobs; returns the job JSON (with ``deduped``/
        ``cache_hit`` flags). Raises :class:`ServerBusy` on 429/503."""
        return self._json("POST", "/jobs", spec)

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}")

    def trace(self, job_id: str) -> Dict[str, object]:
        """GET /jobs/{id}/trace — the causal traces a report job
        collected, keyed by exhibit id. 404s when the job recorded
        none (non-report jobs, or exhibits that never trace)."""
        return self._json("GET", f"/jobs/{job_id}/trace")

    def jobs(self) -> List[Dict[str, object]]:
        return self._json("GET", "/jobs")["jobs"]

    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        response, blob = self._request("GET", "/metrics")
        if response.status >= 400:
            self._raise(response, self._decode(blob))
        return blob.decode("utf-8")

    def artifact(self, path: str) -> bytes:
        """Fetch one artifact by its job-relative URL path
        (``/artifacts/<job>/<file>`` as listed in the job JSON)."""
        response, blob = self._request("GET", path)
        if response.status >= 400:
            self._raise(response, self._decode(blob))
        return blob

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; returns its final JSON."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} after {timeout}s")
            time.sleep(poll_s)

    def events(self, job_id: str,
               last_event_id: Optional[int] = None
               ) -> Iterator[Dict[str, object]]:
        """Stream the job's SSE events until the server ends the stream.

        Yields decoded event dicts (``seq``/``name``/``unix``/``data``).
        For a finished job this replays the full event log and returns.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            headers = {}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request("GET", f"/jobs/{job_id}/events",
                               headers=headers)
            response = connection.getresponse()
            if response.status >= 400:
                self._raise(response, self._decode(response.read()))
            data_lines: List[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    break  # server closed the stream
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    data_lines.append(line[5:].strip())
                elif not line and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []
        finally:
            connection.close()
