"""CLI: run the simulation service.

Usage::

    python -m repro.serve                          # 127.0.0.1:8731
    python -m repro.serve --port 0 --port-file p   # ephemeral port for CI
    python -m repro.serve --workers 4 --queue-depth 32
    python -m repro.serve --cache-dir /tmp/cc --artifacts-dir out/

Then, from anywhere::

    curl -X POST localhost:8731/jobs -d '{"kind":"exhibit","exhibit":"fig11"}'
    curl localhost:8731/jobs/job-000001
    curl -N localhost:8731/jobs/job-000001/events    # SSE progress
    curl localhost:8731/metrics

SIGTERM (or SIGINT) triggers a *graceful drain*: submissions start
answering 503, queued and running jobs finish, artifacts flush, the
process prints a ``drain complete`` line and exits 0. A second signal
forces a hard stop.
"""

import argparse
import asyncio
import signal
import sys

from .api import ServeAPI, start_server
from .jobs import JobStore
from .metrics import ServeMetrics
from .scheduler import Scheduler


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve exhibit runs and sweeps over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8731,
                        help="TCP port (0 = ephemeral; default 8731)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="job worker processes (default 2)")
    parser.add_argument("--queue-depth", type=int, default=16, metavar="N",
                        help="max queued jobs before 429 (default 16)")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        metavar="S",
                        help="per-attempt timeout in seconds (default 600)")
    parser.add_argument("--max-retries", type=int, default=1, metavar="N",
                        help="retries after worker death (default 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory "
                             "(default .repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR",
                        help="where report-job artifacts land "
                             "(default: a fresh temp dir)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening "
                             "(for scripts using --port 0)")
    parser.add_argument("--allow-probe-jobs", action="store_true",
                        help=argparse.SUPPRESS)  # test deployments only
    return parser


async def _amain(options) -> int:
    store = JobStore()
    metrics = ServeMetrics()
    scheduler = Scheduler(
        store, metrics, workers=options.workers,
        queue_depth=options.queue_depth,
        default_timeout_s=options.job_timeout,
        max_retries=options.max_retries,
        cache_dir=options.cache_dir,
        artifacts_root=options.artifacts_dir,
        allow_probes=options.allow_probe_jobs)
    scheduler.start()
    api = ServeAPI(scheduler, store, metrics)
    server, port = await start_server(api, options.host, options.port)

    print(f"repro.serve listening on http://{options.host}:{port} "
          f"(workers={options.workers}, queue-depth={options.queue_depth})",
          flush=True)
    if options.port_file:
        with open(options.port_file, "w") as handle:
            handle.write(str(port))

    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()

    def _on_signal() -> None:
        if drain_requested.is_set():  # second signal: stop the hard way
            scheduler.stop(force=True)
            return
        drain_requested.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, _on_signal)

    await drain_requested.wait()
    print("repro.serve draining: finishing queued and running jobs",
          flush=True)
    scheduler.begin_drain()  # submissions 503 while we finish up
    clean = await loop.run_in_executor(None, scheduler.drain, None)
    server.close()
    await server.wait_closed()
    counts = store.counts()
    print(f"repro.serve drain complete: {counts['done']} done, "
          f"{counts['failed']} failed; exiting", flush=True)
    return 0 if clean else 1


def main(argv) -> int:
    try:
        options = _parser().parse_args(argv[1:])
    except SystemExit as exit_:
        return 0 if exit_.code == 0 else 1
    return asyncio.run(_amain(options))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
