"""Job model for ``repro.serve``: specs, lifecycle, and the store.

A *job* is one unit of accepted work — a single exhibit run, a sweep of
several exhibits, or (in test deployments only) a named probe. Its
lifecycle is a strict one-way state machine::

    queued ──> running ──> done
                  │
                  └──────> failed

``queued → running`` happens when a scheduler worker claims the job;
``running → done`` when the worker process returns a result; ``running
→ failed`` on a job-side exception, a per-job timeout, or worker death
past the retry budget. A retried attempt stays in ``running`` (the
retry is recorded as an event, not a state).

Every transition and every progress report is appended to the job's
*event log*, a monotonically sequenced list the SSE endpoint replays
and tails — a late subscriber sees the full history, a live one blocks
on the store's condition variable until the next append.

Nothing here touches the simulator; all timestamps are wall-clock
(``repro.serve`` is allowlisted for DET001 — the service layer lives in
real time).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Job",
    "JobEvent",
    "JobSpec",
    "JobSpecError",
    "JobStore",
    "PROBE_NAMES",
    "STATES",
    "TERMINAL_STATES",
]

#: Lifecycle states, in order of appearance.
STATES = ("queued", "running", "done", "failed")
TERMINAL_STATES = ("done", "failed")

#: Probe bodies tests may request (gated behind ``allow_probes``).
PROBE_NAMES = ("ok", "sleep", "crash", "fail")

_VALID_KINDS = ("exhibit", "sweep", "probe")


class JobSpecError(ValueError):
    """A submitted job spec failed validation (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable description of one job's work.

    Built from the JSON body of ``POST /jobs`` via :meth:`from_payload`;
    everything a worker process needs travels in here (the spec is
    pickled into the forked job process).
    """

    kind: str = "exhibit"
    exhibits: Tuple[str, ...] = ()
    priority: int = 0          # higher runs first among queued jobs
    report: bool = False       # write run artifacts (forces execution)
    use_cache: bool = True
    jobs: int = 1              # sweep-internal parallelism (0 = all cores)
    timeout_s: Optional[float] = None   # overrides the server default
    dedupe: bool = True        # coalesce with an identical in-flight job
    probe: str = ""            # probe body name (kind == "probe" only)
    probe_arg: float = 0.0     # probe parameter (e.g. sleep seconds)
    #: Canonical JSON of a :class:`~repro.faults.FaultPlan` ("" = no
    #: chaos). Validated at submission; the worker installs it as the
    #: ambient plan (chaos-aware exhibits arm it) and honors any
    #: ``serve_worker_death`` entries itself. Stored as a string so the
    #: frozen spec stays hashable for :meth:`dedupe_key`.
    faults: str = ""

    @classmethod
    def from_payload(cls, payload: object) -> "JobSpec":
        """Validate a decoded JSON body into a spec, or raise
        :class:`JobSpecError` with an actionable message."""
        if not isinstance(payload, dict):
            raise JobSpecError("job spec must be a JSON object")
        known_keys = ("kind", "exhibit", "exhibits", "priority", "report",
                      "use_cache", "jobs", "timeout_s", "dedupe", "probe",
                      "probe_arg", "faults")
        unknown = sorted(k for k in payload if k not in known_keys)
        if unknown:
            raise JobSpecError(f"unknown job spec field(s): "
                               f"{', '.join(unknown)}")
        kind = payload.get("kind", "exhibit")
        if kind not in _VALID_KINDS:
            raise JobSpecError(
                f"unknown job kind {kind!r}; known: "
                + ", ".join(_VALID_KINDS))

        exhibits: Tuple[str, ...] = ()
        probe = ""
        probe_arg = 0.0
        if kind == "probe":
            probe = payload.get("probe", "")
            if probe not in PROBE_NAMES:
                raise JobSpecError(
                    f"unknown probe {probe!r}; known: "
                    + ", ".join(PROBE_NAMES))
            probe_arg = _number(payload.get("probe_arg", 0.0), "probe_arg")
        else:
            if kind == "exhibit":
                exhibit = payload.get("exhibit")
                if not isinstance(exhibit, str):
                    raise JobSpecError(
                        "exhibit jobs need an 'exhibit' string field")
                exhibits = (exhibit,)
            else:
                listed = payload.get("exhibits")
                if (not isinstance(listed, (list, tuple)) or not listed
                        or not all(isinstance(e, str) for e in listed)):
                    raise JobSpecError(
                        "sweep jobs need a non-empty 'exhibits' list")
                exhibits = tuple(listed)
            from ..experiments import exhibit_ids
            known = exhibit_ids()
            bogus = sorted(e for e in exhibits if e not in known)
            if bogus:
                raise JobSpecError(
                    f"unknown exhibit(s): {', '.join(bogus)}; known: "
                    + " ".join(known))

        faults = _validate_faults(payload.get("faults"), kind)

        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            timeout_s = _number(timeout_s, "timeout_s")
            if timeout_s <= 0:
                raise JobSpecError("timeout_s must be > 0")
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 0:
            raise JobSpecError("jobs must be an int >= 0")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise JobSpecError("priority must be an int")
        return cls(
            kind=kind, exhibits=exhibits, priority=priority,
            report=bool(payload.get("report", False)),
            use_cache=bool(payload.get("use_cache", True)),
            jobs=jobs, timeout_s=timeout_s,
            dedupe=bool(payload.get("dedupe", True)),
            probe=probe, probe_arg=probe_arg, faults=faults)

    def dedupe_key(self) -> Tuple:
        """What makes two jobs "the same work" (priority excluded)."""
        return (self.kind, self.exhibits, self.report, self.use_cache,
                self.jobs, self.probe, self.probe_arg, self.faults)

    def fault_plan(self):
        """The spec's :class:`~repro.faults.FaultPlan`, or ``None``."""
        if not self.faults:
            return None
        import json

        from ..faults import FaultPlan
        return FaultPlan.from_json(json.loads(self.faults))

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "exhibits": list(self.exhibits),
            "priority": self.priority,
            "report": self.report,
            "use_cache": self.use_cache,
            "jobs": self.jobs,
            "timeout_s": self.timeout_s,
            "dedupe": self.dedupe,
            "probe": self.probe,
            "probe_arg": self.probe_arg,
            "faults": self.faults,
        }


def _number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise JobSpecError(f"{name} must be a number")
    return float(value)


def _validate_faults(value: object, kind: str) -> str:
    """Validate a submitted fault plan into its canonical JSON string.

    Accepts a JSON array of fault objects or a string containing one;
    rejects plans on probe jobs (probes exercise the scheduler itself —
    chaos there would be untestable noise).
    """
    if value is None or value == "" or value == []:
        return ""
    if kind == "probe":
        raise JobSpecError("probe jobs cannot carry a fault plan")
    import json

    from ..faults import FaultPlan, FaultPlanError
    if isinstance(value, str):
        try:
            value = json.loads(value)
        except json.JSONDecodeError as exc:
            raise JobSpecError(f"faults is not valid JSON: {exc}") from exc
    try:
        plan = FaultPlan.from_json(value)
    except FaultPlanError as exc:
        raise JobSpecError(f"invalid fault plan: {exc}") from exc
    return plan.canonical()


@dataclass(frozen=True)
class JobEvent:
    """One entry in a job's append-only event log (an SSE frame)."""

    seq: int          # per-job, monotonically increasing from 0
    name: str         # queued|started|progress|retry|done|failed
    unix: float       # wall-clock timestamp
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {"seq": self.seq, "name": self.name, "unix": self.unix,
                "data": self.data}


class Job:
    """Mutable job record; mutate only through :class:`JobStore`."""

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.attempts = 0
        self.cache_hit = False
        self.error: Optional[str] = None
        self.result: Optional[List[Dict[str, object]]] = None
        self.artifacts: Dict[str, str] = {}
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.events: List[JobEvent] = []

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_json(),
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "result": self.result,
            "artifacts": dict(self.artifacts),
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "events": len(self.events),
        }


class JobStore:
    """Thread-safe in-memory registry of every job the server has seen.

    One lock + condition guards all jobs; every event append and state
    transition notifies waiters, which is what lets SSE handlers (via
    :meth:`wait_events`) tail a live job without polling the job dict.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._seq = 0

    # -- creation / lookup ---------------------------------------------------
    def create(self, spec: JobSpec) -> Job:
        with self._cond:
            self._seq += 1
            job = Job(f"job-{self._seq:06d}", spec)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every job, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    # -- mutation ------------------------------------------------------------
    def append_event(self, job: Job, name: str,
                     data: Optional[Dict[str, object]] = None) -> JobEvent:
        with self._cond:
            event = JobEvent(seq=len(job.events), name=name,
                             unix=time.time(), data=dict(data or {}))
            job.events.append(event)
            self._cond.notify_all()
            return event

    def mark_running(self, job: Job, attempt: int) -> None:
        with self._cond:
            job.state = "running"
            job.attempts = attempt
            if job.started_unix is None:
                job.started_unix = time.time()
            self._cond.notify_all()

    def finish(self, job: Job, state: str,
               result: Optional[List[Dict[str, object]]] = None,
               error: Optional[str] = None,
               artifacts: Optional[Dict[str, str]] = None,
               cache_hit: bool = False) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._cond:
            job.state = state
            job.result = result
            job.error = error
            job.cache_hit = cache_hit
            if artifacts:
                job.artifacts.update(artifacts)
            job.finished_unix = time.time()
            self._cond.notify_all()

    # -- tailing -------------------------------------------------------------
    def wait_events(self, job_id: str, start: int,
                    timeout: Optional[float] = 0.5
                    ) -> Tuple[List[JobEvent], bool]:
        """Events ``>= start`` for a job, blocking briefly for new ones.

        Returns ``(new_events, terminal)``. With no news within
        ``timeout`` the list is empty — callers loop. Unknown job ids
        read as terminated streams.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return [], True
            if len(job.events) <= start and not job.terminal:
                self._cond.wait(timeout)
            return list(job.events[start:]), job.terminal

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for /healthz and drain bookkeeping)."""
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out
