"""Server-side metrics for ``repro.serve``, on the ``repro.obs`` model.

One always-enabled :class:`~repro.obs.telemetry.Telemetry` registry,
owned by the server (not the ambient one — job workers get their own
per-process registries), rendered by the existing Prometheus text
exporter at ``GET /metrics``. Families:

* ``serve_queue_depth`` (gauge) — jobs waiting for a worker;
* ``serve_jobs_running`` (gauge) — jobs currently on a worker;
* ``serve_jobs_total{outcome,kind}`` (counter) — terminal accounting:
  ``submitted``, ``done``, ``failed``, ``rejected`` (backpressure),
  ``drain_rejected``, ``deduped``, ``cache_hit``;
* ``serve_job_wall_seconds{kind}`` (histogram) — queue-to-terminal
  wall time per job;
* ``serve_retries_total`` (counter) — attempts restarted after worker
  death;
* ``serve_http_requests_total{method,route,status}`` (counter) — one
  per handled request, labeled by route *pattern* (bounded
  cardinality, never the raw path);
* ``serve_sse_events_total`` (counter) — SSE frames written.

All mutators and the renderer share one lock: scheduler worker threads
and the HTTP thread pool hit this registry concurrently, and rendering
must not race a family dict insert.
"""

from __future__ import annotations

import threading

from ..obs import Telemetry
from ..obs.export import prometheus_text

__all__ = ["ServeMetrics"]

#: Wall-time buckets for whole jobs (seconds) — wider than the default
#: request-latency buckets; sweep jobs legitimately run minutes.
_JOB_WALL_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
                     300.0, 1800.0)


class ServeMetrics:
    """Thread-safe facade over the server's telemetry registry."""

    def __init__(self):
        self._lock = threading.Lock()
        self.telemetry = Telemetry(enabled=True)
        # Touch the headline gauges so /metrics shows them from boot.
        self.set_queue_depth(0)
        self.set_running(0)

    # -- gauges --------------------------------------------------------------
    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.telemetry.set("serve_queue_depth", depth)

    def set_running(self, running: int) -> None:
        with self._lock:
            self.telemetry.set("serve_jobs_running", running)

    # -- job accounting ------------------------------------------------------
    def job_outcome(self, outcome: str, kind: str = "") -> None:
        with self._lock:
            self.telemetry.inc("serve_jobs_total", outcome=outcome,
                               kind=kind or "none")

    def job_wall_time(self, kind: str, wall_s: float) -> None:
        with self._lock:
            self.telemetry.observe("serve_job_wall_seconds", wall_s,
                                   buckets=_JOB_WALL_BUCKETS, kind=kind)

    def job_retried(self) -> None:
        with self._lock:
            self.telemetry.inc("serve_retries_total")

    # -- HTTP accounting -----------------------------------------------------
    def http_request(self, method: str, route: str, status: int) -> None:
        with self._lock:
            self.telemetry.inc("serve_http_requests_total", method=method,
                               route=route, status=str(status))

    def sse_events(self, count: int) -> None:
        if count:
            with self._lock:
                self.telemetry.inc("serve_sse_events_total", amount=count)

    # -- export --------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition (shares the mutators' lock)."""
        with self._lock:
            return prometheus_text(self.telemetry)

    def value(self, name: str, **labels) -> float:
        """Test/diagnostic read-through to the registry."""
        with self._lock:
            return self.telemetry.value(name, **labels)
