"""Priority scheduler: bounded queue, worker pool, retries, drain.

The scheduler owns everything between "a spec passed validation" and "a
job reached a terminal state":

* **Admission** (:meth:`Scheduler.submit`) — coalesce with an identical
  in-flight job (dedupe), satisfy cache-clean work straight from the
  ``repro.runtime`` result cache without ever occupying a worker
  (the *cache fast path*), and otherwise enqueue — unless the bounded
  queue is full, which raises :class:`QueueFullError` (HTTP 429 +
  ``Retry-After``), or the server is draining, which raises
  :class:`DrainingError` (HTTP 503).
* **Dispatch** — ``workers`` threads pop the highest-priority queued
  job (FIFO within a priority) and fork one *non-daemonic* process per
  attempt (non-daemonic so sweep jobs can nest their own
  ``multiprocessing`` pool), tailing its progress pipe.
* **Robustness** — each attempt runs under a wall-clock timeout
  (terminate + fail on expiry); a worker that dies without reporting
  (crash, ``os._exit``, OOM) is retried up to ``max_retries`` times,
  then failed; a job-side exception fails immediately (it is
  deterministic — retrying would just re-raise).
* **Drain** (:meth:`drain`) — stop admitting, let queued and running
  jobs finish, then stop the worker threads. SIGTERM in
  ``python -m repro.serve`` lands here.

Locks order scheduler → store; the store never calls back into the
scheduler.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from .jobs import Job, JobSpec, JobSpecError, JobStore
from .metrics import ServeMetrics
from .runner import execute_job

__all__ = ["DrainingError", "QueueFullError", "Scheduler"]


class QueueFullError(RuntimeError):
    """Queue at capacity — reject with 429 + Retry-After."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"job queue full ({depth} queued); retry in {retry_after_s:g}s")
        self.depth = depth
        self.retry_after_s = retry_after_s


class DrainingError(RuntimeError):
    """Server is draining — reject new work with 503 + Retry-After."""

    def __init__(self, retry_after_s: float = 30.0):
        super().__init__("server is draining; not accepting new jobs")
        self.retry_after_s = retry_after_s


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class Scheduler:
    """Bounded priority scheduler dispatching jobs to forked workers."""

    def __init__(self, store: JobStore,
                 metrics: Optional[ServeMetrics] = None,
                 workers: int = 2, queue_depth: int = 16,
                 default_timeout_s: float = 600.0, max_retries: int = 1,
                 retry_after_s: float = 1.0,
                 cache_dir: Optional[str] = None,
                 artifacts_root: Optional[str] = None,
                 allow_probes: bool = False):
        self.store = store
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.workers = max(1, int(workers))
        self.queue_depth = max(1, int(queue_depth))
        self.default_timeout_s = float(default_timeout_s)
        self.max_retries = max(0, int(max_retries))
        self.retry_after_s = float(retry_after_s)
        self.cache_dir = cache_dir
        self.allow_probes = allow_probes
        self._artifacts_root = artifacts_root

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._push_seq = 0
        self._active: Dict[Tuple, str] = {}  # dedupe key -> live job id
        self._procs: Dict[str, object] = {}  # job id -> attempt process
        self._running = 0
        self._draining = False
        self._stopping = False
        self._threads: List[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return
            self._threads = [
                threading.Thread(target=self._worker_loop, daemon=True,
                                 name=f"serve-worker-{index}")
                for index in range(self.workers)]
        for thread in self._threads:
            thread.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting; queued and running jobs keep going."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain and stop: block until queued + running jobs finish.

        Returns ``True`` on a clean drain, ``False`` if ``timeout``
        expired first (work is left untouched in that case).
        """
        self.begin_drain()
        deadline = (time.monotonic() + timeout) if timeout else None
        with self._cond:
            while self._heap or self._running:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining if remaining is not None else 1.0)
        self.stop()
        return True

    def stop(self, force: bool = False) -> None:
        """Stop worker threads; ``force`` also kills attempt processes."""
        with self._cond:
            self._stopping = True
            self._draining = True
            if force:
                for proc in list(self._procs.values()):
                    try:
                        proc.terminate()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=10.0)

    # -- admission -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> Tuple[Job, Dict[str, bool]]:
        """Admit one spec; returns ``(job, {"deduped":…, "cache_hit":…})``.

        Raises :class:`JobSpecError` (probes when disabled),
        :class:`DrainingError`, or :class:`QueueFullError`.
        """
        if spec.kind == "probe" and not self.allow_probes:
            raise JobSpecError(
                "probe jobs are disabled on this server "
                "(--allow-probe-jobs)")
        existing = self._deduped(spec)
        if existing is not None:
            return existing, {"deduped": True, "cache_hit": False}

        cached = self._cached_summaries(spec)
        if cached is not None:
            job = self._finish_from_cache(spec, cached)
            return job, {"deduped": False, "cache_hit": True}

        with self._cond:
            if self._draining or self._stopping:
                self.metrics.job_outcome("drain_rejected", spec.kind)
                raise DrainingError()
            if spec.dedupe:  # re-check under the admission lock
                live = self._live_job(spec)
                if live is not None:
                    self.metrics.job_outcome("deduped", spec.kind)
                    return live, {"deduped": True, "cache_hit": False}
            if len(self._heap) >= self.queue_depth:
                self.metrics.job_outcome("rejected", spec.kind)
                raise QueueFullError(len(self._heap), self.retry_after_s)
            job = self.store.create(spec)
            self._push_seq += 1
            heapq.heappush(self._heap,
                           (-spec.priority, self._push_seq, job.id))
            if spec.dedupe:
                self._active[spec.dedupe_key()] = job.id
            self.metrics.job_outcome("submitted", spec.kind)
            self.metrics.set_queue_depth(len(self._heap))
            # Event lands before notify so "queued" always precedes a
            # worker's "started" in the job's event log.
            self.store.append_event(job, "queued", {
                "priority": spec.priority, "queue_depth": len(self._heap)})
            self._cond.notify()
        return job, {"deduped": False, "cache_hit": False}

    def queued(self) -> int:
        with self._lock:
            return len(self._heap)

    def running(self) -> int:
        with self._lock:
            return self._running

    def artifacts_root(self) -> str:
        """The directory job artifacts land under (created lazily)."""
        with self._lock:
            if self._artifacts_root is None:
                self._artifacts_root = tempfile.mkdtemp(
                    prefix="repro-serve-artifacts-")
            os.makedirs(self._artifacts_root, exist_ok=True)
            return self._artifacts_root

    # -- admission helpers ---------------------------------------------------
    def _live_job(self, spec: JobSpec) -> Optional[Job]:
        """The non-terminal job already doing this work, if any.

        Callers hold ``self._cond``.
        """
        job_id = self._active.get(spec.dedupe_key())
        if job_id is None:
            return None
        job = self.store.get(job_id)
        if job is None or job.terminal:
            self._active.pop(spec.dedupe_key(), None)
            return None
        return job

    def _deduped(self, spec: JobSpec) -> Optional[Job]:
        if not spec.dedupe:
            return None
        with self._cond:
            live = self._live_job(spec)
            if live is not None:
                self.metrics.job_outcome("deduped", spec.kind)
            return live

    def _cached_summaries(self, spec: JobSpec
                          ) -> Optional[List[Dict[str, object]]]:
        """Result summaries when *every* exhibit is cache-warm, else None.

        Jobs that write artifacts must really execute, so ``report``
        disqualifies; so do ``use_cache=False`` and a fault plan (a
        chaos run's result is not the exhibit's clean result).
        """
        if (spec.kind == "probe" or spec.report or not spec.use_cache
                or spec.faults):
            return None
        from ..runtime import ResultCache
        cache = ResultCache(self.cache_dir)
        summaries: List[Dict[str, object]] = []
        for exp_id in spec.exhibits:
            try:
                result = cache.load(exp_id)
            except Exception:  # fingerprint trouble reads as a miss
                return None
            if result is None:
                return None
            summaries.append({
                "exp_id": exp_id,
                "title": getattr(result, "title", ""),
                "findings": {key: float(value) for key, value
                             in getattr(result, "findings", {}).items()},
                "notes": [str(n) for n in getattr(result, "notes", [])],
                "elapsed_s": 0.0,
                "cache_hit": True,
                "artifacts": {},
            })
        return summaries

    def _finish_from_cache(self, spec: JobSpec,
                           summaries: List[Dict[str, object]]) -> Job:
        """Complete a job at admission time, straight from the cache."""
        job = self.store.create(spec)
        self.store.append_event(job, "queued", {"priority": spec.priority,
                                                "cache_hit": True})
        self.store.mark_running(job, attempt=0)
        self.store.finish(job, "done", result=summaries, cache_hit=True)
        self.store.append_event(job, "done", {
            "runs": len(summaries), "cache_hit": True})
        self.metrics.job_outcome("submitted", spec.kind)
        self.metrics.job_outcome("cache_hit", spec.kind)
        self.metrics.job_outcome("done", spec.kind)
        self.metrics.job_wall_time(spec.kind, 0.0)
        return job

    # -- dispatch ------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._stopping:
                        return
                    if self._heap:
                        break
                    if self._draining:
                        return  # queue empty + draining = this worker done
                    self._cond.wait()
                _neg_priority, _seq, job_id = heapq.heappop(self._heap)
                self._running += 1
                self.metrics.set_queue_depth(len(self._heap))
                self.metrics.set_running(self._running)
            job = self.store.get(job_id)
            try:
                if job is not None:
                    self._run_job(job)
            finally:
                with self._cond:
                    self._running -= 1
                    if job is not None and job.spec.dedupe:
                        key = job.spec.dedupe_key()
                        if self._active.get(key) == job.id:
                            self._active.pop(key, None)
                    self.metrics.set_running(self._running)
                    self._cond.notify_all()  # wake drain waiters

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        timeout_s = spec.timeout_s if spec.timeout_s is not None \
            else self.default_timeout_s
        report_dir = os.path.join(self.artifacts_root(), job.id) \
            if spec.report else None
        started = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            self.store.mark_running(job, attempt)
            self.store.append_event(job, "started", {"attempt": attempt})
            outcome, payload = self._run_attempt(job, report_dir, timeout_s,
                                                 attempt)
            wall_s = time.monotonic() - started
            if outcome == "done":
                runs = payload.get("runs", [])
                artifacts = {}
                for summary in runs:
                    for name, filename in summary.get("artifacts",
                                                      {}).items():
                        artifacts[f"{summary['exp_id']}.{name}"] = \
                            f"/artifacts/{job.id}/{filename}"
                self.store.finish(job, "done", result=runs,
                                  artifacts=artifacts)
                self.store.append_event(job, "done", {
                    "runs": len(runs), "wall_s": wall_s,
                    "attempts": attempt})
                self.metrics.job_outcome("done", spec.kind)
                self.metrics.job_wall_time(spec.kind, wall_s)
                return
            if outcome == "error":
                error = payload.get("error", "job failed")
                self._fail(job, f"{error}", wall_s, attempt,
                           traceback=payload.get("traceback"))
                return
            if outcome == "timeout":
                self._fail(job, f"timed out after {timeout_s:g}s "
                                f"(attempt {attempt})", wall_s, attempt)
                return
            # outcome == "died": the one retriable failure mode.
            exitcode = payload.get("exitcode")
            if attempt <= self.max_retries:
                self.store.append_event(job, "retry", {
                    "attempt": attempt, "exitcode": exitcode})
                self.metrics.job_retried()
                continue
            self._fail(job, f"worker died (exitcode {exitcode}) on all "
                            f"{attempt} attempts", wall_s, attempt)
            return

    def _fail(self, job: Job, error: str, wall_s: float, attempt: int,
              traceback: Optional[str] = None) -> None:
        self.store.finish(job, "failed", error=error)
        data: Dict[str, object] = {"error": error, "wall_s": wall_s,
                                   "attempts": attempt}
        if traceback:
            data["traceback"] = traceback
        self.store.append_event(job, "failed", data)
        self.metrics.job_outcome("failed", job.spec.kind)
        self.metrics.job_wall_time(job.spec.kind, wall_s)

    def _run_attempt(self, job: Job, report_dir: Optional[str],
                     timeout_s: float, attempt: int = 1
                     ) -> Tuple[str, Dict[str, object]]:
        """Fork one attempt; returns (outcome, payload).

        Outcomes: ``done``/``error`` (terminal messages off the pipe),
        ``timeout`` (deadline expired, process terminated), ``died``
        (pipe closed with no terminal message). The attempt number
        rides into the child so ``serve_worker_death`` faults can doom
        exactly the first N attempts.
        """
        context = _fork_context()
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=execute_job, args=(job.spec, child_conn),
            kwargs={"report_dir": report_dir, "cache_dir": self.cache_dir,
                    "attempt": attempt},
            name=f"serve-{job.id}")
        process.start()
        child_conn.close()  # parent must drop its copy for EOF to work
        with self._lock:
            self._procs[job.id] = process
        deadline = time.monotonic() + timeout_s
        result: Optional[Tuple[str, Dict[str, object]]] = None
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._terminate(process)
                    return "timeout", {}
                if not parent_conn.poll(min(remaining, 0.1)):
                    continue
                try:
                    kind, payload = parent_conn.recv()
                except (EOFError, OSError):
                    break  # worker went away
                if kind == "progress":
                    self.store.append_event(job, "progress", payload)
                elif kind in ("done", "error"):
                    result = (kind, payload)
                    break
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck exiting
                self._terminate(process)
            if result is not None:
                return result
            return "died", {"exitcode": process.exitcode}
        finally:
            parent_conn.close()
            with self._lock:
                self._procs.pop(job.id, None)

    @staticmethod
    def _terminate(process) -> None:
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - terminate ignored
            process.kill()
            process.join(timeout=5.0)
