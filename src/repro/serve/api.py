"""Asyncio HTTP API for ``repro.serve`` — stdlib only, HTTP/1.1.

Routes::

    POST /jobs                submit a job spec (JSON body)
    GET  /jobs                list jobs (submission order)
    GET  /jobs/{id}           one job's state/result/artifact index
    GET  /jobs/{id}/events    live progress as Server-Sent Events
    GET  /jobs/{id}/trace     collected causal traces (report jobs)
    GET  /artifacts/{id}/{f}  a run artifact written by a report job
    GET  /healthz             liveness + drain state + job counts
    GET  /metrics             Prometheus text (repro.obs exporter)

Status mapping: invalid spec → 400; unknown job/artifact → 404; queue
full → **429 with Retry-After**; draining → **503 with Retry-After**.
Submissions answer 201 for newly queued work and 200 when coalesced
with an in-flight duplicate or satisfied from the result cache (the
body carries ``deduped``/``cache_hit`` flags either way).

The server is deliberately minimal: one request per connection
(``Connection: close``), no TLS, no auth — it fronts a local research
harness, not the internet. Handlers run on the event loop's default
thread-pool executor because scheduler admission and store reads take
*threading* locks; the SSE path alternates executor waits on the store
condition with async writes so one slow consumer never blocks the
loop or other streams.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from .jobs import JobSpecError, JobStore
from .metrics import ServeMetrics
from .scheduler import DrainingError, QueueFullError, Scheduler

__all__ = ["ServeAPI", "background_server"]

_MAX_BODY_BYTES = 1 << 20
_JSON = "application/json"

_ARTIFACT_TYPES = {
    ".json": _JSON,
    ".prom": "text/plain; version=0.0.4",
}


class _HTTPError(Exception):
    """Routing-level failure carrying its response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _response_bytes(status: int, body: bytes, content_type: str,
                    extra: Optional[Dict[str, str]] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in sorted((extra or {}).items()):
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: object,
                   extra: Optional[Dict[str, str]] = None) -> bytes:
    body = json.dumps(payload, default=str).encode("utf-8")
    return _response_bytes(status, body, _JSON, extra)


class ServeAPI:
    """Route table + handlers bound to one scheduler/store/metrics set."""

    def __init__(self, scheduler: Scheduler, store: JobStore,
                 metrics: Optional[ServeMetrics] = None):
        self.scheduler = scheduler
        self.store = store
        self.metrics = metrics if metrics is not None else scheduler.metrics

    # -- connection handler --------------------------------------------------
    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        route = "unparsed"
        method = "?"
        status = 500
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=30.0)
            if request is None:
                return
            method, path, headers, body = request
            route, response = await self._route(
                method, path, headers, body, writer)
            if response is not None:  # SSE writes its own stream
                status = int(response.split(b" ", 2)[1].decode("ascii"))
                writer.write(response)
                await writer.drain()
            else:
                status = 200
        except _HTTPError as error:
            status = error.status
            writer.write(_json_response(
                error.status, {"error": error.message}, error.headers))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.TimeoutError):
            status = 499  # client went away mid-request/stream
        except Exception as exc:  # pragma: no cover - handler bug guard
            try:
                writer.write(_json_response(500, {"error": repr(exc)}))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            self.metrics.http_request(method, route, status)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _version = \
                request_line.decode("ascii").split(None, 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HTTPError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    # -- routing -------------------------------------------------------------
    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes, writer: asyncio.StreamWriter
                     ) -> Tuple[str, Optional[bytes]]:
        """Dispatch; returns (route label, response bytes or None for SSE)."""
        loop = asyncio.get_running_loop()
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            self._expect(method, "GET", path)
            return "/healthz", await loop.run_in_executor(
                None, self._health)
        if path == "/metrics":
            self._expect(method, "GET", path)
            return "/metrics", await loop.run_in_executor(
                None, lambda: _response_bytes(
                    200, self.metrics.render().encode("utf-8"),
                    "text/plain; version=0.0.4"))
        if path == "/jobs":
            if method == "POST":
                return "/jobs", await loop.run_in_executor(
                    None, self._submit, body)
            self._expect(method, "GET", path)
            return "/jobs", await loop.run_in_executor(None, self._jobs)
        if len(parts) == 2 and parts[0] == "jobs":
            self._expect(method, "GET", path)
            return "/jobs/{id}", await loop.run_in_executor(
                None, self._job, parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            self._expect(method, "GET", path)
            await self._stream_events(parts[1], headers, writer)
            return "/jobs/{id}/events", None
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            self._expect(method, "GET", path)
            return "/jobs/{id}/trace", await loop.run_in_executor(
                None, self._job_trace, parts[1])
        if parts and parts[0] == "artifacts":
            self._expect(method, "GET", path)
            return "/artifacts", await loop.run_in_executor(
                None, self._artifact, parts[1:])
        raise _HTTPError(404, f"no route for {path!r}")

    @staticmethod
    def _expect(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"{method} not allowed on {path}")

    # -- sync handlers (run on the executor) ---------------------------------
    def _health(self) -> bytes:
        counts = self.store.counts()
        state = "draining" if self.scheduler.draining else "serving"
        return _json_response(200, {
            "status": "ok", "state": state,
            "queued": self.scheduler.queued(),
            "running": self.scheduler.running(),
            "jobs": counts,
        })

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}")
        from .jobs import JobSpec
        try:
            spec = JobSpec.from_payload(payload)
            job, info = self.scheduler.submit(spec)
        except JobSpecError as exc:
            raise _HTTPError(400, str(exc))
        except QueueFullError as exc:
            raise _HTTPError(429, str(exc), {
                "Retry-After": f"{max(1, math.ceil(exc.retry_after_s))}"})
        except DrainingError as exc:
            raise _HTTPError(503, str(exc), {
                "Retry-After": f"{max(1, math.ceil(exc.retry_after_s))}"})
        response = job.to_json()
        response.update(info)
        status = 200 if (info["deduped"] or info["cache_hit"]) else 201
        return _json_response(status, response)

    def _jobs(self) -> bytes:
        return _json_response(200, {
            "jobs": [job.to_json() for job in self.store.jobs()]})

    def _job(self, job_id: str) -> bytes:
        job = self.store.get(job_id)
        if job is None:
            raise _HTTPError(404, f"unknown job {job_id!r}")
        return _json_response(200, job.to_json())

    def _job_trace(self, job_id: str) -> bytes:
        """Collected causal traces for one job, keyed by exhibit.

        Reads the ``*.traces.json`` artifacts the job's report runs
        wrote (404 when the job never traced anything — non-report jobs
        or exhibits that don't enable the tracer).
        """
        job = self.store.get(job_id)
        if job is None:
            raise _HTTPError(404, f"unknown job {job_id!r}")
        root = os.path.realpath(self.scheduler.artifacts_root())
        traces: Dict[str, object] = {}
        for name, url in sorted(job.artifacts.items()):
            if not name.endswith(".traces"):
                continue
            exp_id = name[:-len(".traces")]
            candidate = os.path.realpath(
                os.path.join(root, *url.split("/")[2:]))
            if not candidate.startswith(root + os.sep) \
                    or not os.path.isfile(candidate):
                continue
            with open(candidate) as handle:
                traces[exp_id] = json.load(handle)
        if not traces:
            raise _HTTPError(404, f"job {job_id!r} recorded no traces")
        return _json_response(200, {
            "job_id": job_id, "state": job.state, "traces": traces})

    def _artifact(self, parts) -> bytes:
        root = os.path.realpath(self.scheduler.artifacts_root())
        candidate = os.path.realpath(os.path.join(root, *parts))
        if candidate != root and not candidate.startswith(root + os.sep):
            raise _HTTPError(404, "artifact path escapes the artifact root")
        if not os.path.isfile(candidate):
            raise _HTTPError(404, f"no artifact at {'/'.join(parts)!r}")
        with open(candidate, "rb") as handle:
            blob = handle.read()
        content_type = _ARTIFACT_TYPES.get(
            os.path.splitext(candidate)[1], "application/octet-stream")
        return _response_bytes(200, blob, content_type)

    # -- SSE -----------------------------------------------------------------
    async def _stream_events(self, job_id: str, headers: Dict[str, str],
                             writer: asyncio.StreamWriter) -> None:
        if self.store.get(job_id) is None:
            raise _HTTPError(404, f"unknown job {job_id!r}")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n")
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = 0
        last_seen = headers.get("last-event-id")
        if last_seen is not None and last_seen.isdigit():
            cursor = int(last_seen) + 1
        while True:
            events, terminal = await loop.run_in_executor(
                None, self.store.wait_events, job_id, cursor, 0.5)
            for event in events:
                frame = (f"id: {event.seq}\n"
                         f"event: {event.name}\n"
                         f"data: {json.dumps(event.to_json(), default=str)}"
                         f"\n\n")
                writer.write(frame.encode("utf-8"))
                cursor = event.seq + 1
            if events:
                await writer.drain()
                self.metrics.sse_events(len(events))
            if terminal and not events:
                return  # log fully replayed and the job is finished


# -- embedding helpers -------------------------------------------------------

async def start_server(api: ServeAPI, host: str = "127.0.0.1",
                       port: int = 0) -> Tuple[asyncio.AbstractServer, int]:
    """Bind + start serving; returns ``(server, bound_port)``."""
    server = await asyncio.start_server(api.handle, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port


@contextmanager
def background_server(api: ServeAPI, host: str = "127.0.0.1",
                      port: int = 0) -> Iterator[Tuple[str, int]]:
    """Run the API on an event loop in a daemon thread (tests/examples).

    Yields ``(host, bound_port)``; tears the loop down on exit. The
    scheduler's threads are the caller's to start/stop — this only owns
    the HTTP side.
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()
    state: Dict[str, object] = {}

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _boot() -> None:
            server, bound_port = await start_server(api, host, port)
            state["server"] = server
            state["port"] = bound_port
            started.set()

        loop.run_until_complete(_boot())
        loop.run_forever()
        # Drain-close inside the loop thread after run_forever stops.
        server = state.get("server")
        if server is not None:
            server.close()
            loop.run_until_complete(server.wait_closed())
        loop.close()

    thread = threading.Thread(target=_run, daemon=True,
                              name="serve-http-loop")
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("HTTP server failed to start within 10s")
    try:
        yield host, int(state["port"])
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
