"""Worker-process side of ``repro.serve``: the forked job body.

The scheduler forks one process per job attempt with
:func:`execute_job` as the entry point and a one-way pipe back to the
parent. Everything the parent learns about the attempt arrives as
``(kind, payload)`` messages on that pipe:

* ``("progress", {...})`` — after every finished exhibit/sweep point:
  completed/total counts, the point's elapsed wall time and cache
  status, and a compact :meth:`~repro.obs.telemetry.Telemetry.\
scalar_totals` snapshot of the job-scoped telemetry registry;
* ``("done", {...})`` — the result summaries + artifact names;
* ``("error", {...})`` — a job-side exception, with traceback text.

A pipe that closes with none of the terminal messages means the worker
*died* (crash, ``os._exit``, OOM-kill) — the parent distinguishes that
from job failure and retries it.

Telemetry is scoped per job: the child installs its own enabled
registry before running anything, so counters from concurrent jobs
never mix (each job has its own process) and progress snapshots are
attributable to exactly one job.

Everything here must stay picklable/forkable: module-level functions
only, results reduced to JSON-safe dicts before they touch the pipe.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, List, Optional

from .jobs import JobSpec

__all__ = ["execute_job", "run_summary"]


def run_summary(run) -> Dict[str, object]:
    """Reduce an :class:`~repro.runtime.ExhibitRun` to a JSON-safe dict.

    The full :class:`ExperimentResult` (tables, series) stays in the
    run artifacts; the job record keeps the headline: title, scalar
    findings, notes, timing, and cache status.
    """
    result = run.result
    findings = {key: float(value) for key, value
                in getattr(result, "findings", {}).items()}
    return {
        "exp_id": run.exp_id,
        "title": getattr(result, "title", ""),
        "findings": findings,
        "notes": [str(note) for note in getattr(result, "notes", [])],
        "elapsed_s": run.elapsed_s,
        "cache_hit": run.cache_hit,
        "artifacts": {name: os.path.basename(path)
                      for name, path in sorted(run.artifact_paths.items())},
    }


def _run_probe(spec: JobSpec, conn) -> List[Dict[str, object]]:
    """Test-only job bodies exercising the scheduler's failure paths."""
    if spec.probe == "crash":
        os._exit(3)  # simulate worker death: no message, nonzero exit
    if spec.probe == "fail":
        raise RuntimeError(f"probe failure requested "
                           f"(probe_arg={spec.probe_arg})")
    if spec.probe == "sleep":
        deadline = time.monotonic() + spec.probe_arg
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, 0.05))
    conn.send(("progress", {"completed": 1, "total": 1,
                            "probe": spec.probe}))
    return [{"probe": spec.probe, "probe_arg": spec.probe_arg}]


def _run_exhibits(spec: JobSpec, conn, report_dir: Optional[str],
                  cache_dir: Optional[str],
                  telemetry) -> List[Dict[str, object]]:
    from ..runtime import RunSpec, run_exhibit, sweep_imap, use_executor

    # A chaos job never reads or writes the clean-result cache: a
    # faulted run answers a different question than the exhibit's
    # default, and must not poison (or be satisfied by) its entries.
    use_cache = spec.use_cache and not spec.faults
    specs = [RunSpec(exp_id, report_dir=report_dir,
                     use_cache=use_cache, cache_dir=cache_dir)
             for exp_id in spec.exhibits]
    total = len(specs)
    summaries: List[Dict[str, object]] = []

    def note_progress(run) -> None:
        summary = run_summary(run)
        summaries.append(summary)
        conn.send(("progress", {
            "completed": len(summaries),
            "total": total,
            "exp_id": summary["exp_id"],
            "elapsed_s": summary["elapsed_s"],
            "cache_hit": summary["cache_hit"],
            "telemetry": telemetry.scalar_totals(),
        }))

    if spec.kind == "sweep" and spec.jobs != 1 and total > 1:
        # Sweep jobs fan their points over a nested pool. The job
        # process was started non-daemonic precisely so this works.
        with use_executor(jobs=spec.jobs):
            for run in sweep_imap(run_exhibit, specs):
                note_progress(run)
    else:
        for run_spec in specs:
            note_progress(run_exhibit(run_spec))
    return summaries


def execute_job(spec: JobSpec, conn, report_dir: Optional[str] = None,
                cache_dir: Optional[str] = None, attempt: int = 1) -> None:
    """Child-process entry point: run one job attempt, report via pipe.

    ``attempt`` is the 1-based attempt number; a ``serve_worker_death``
    fault in the spec's plan kills that many leading attempts (the
    chaos analogue of the ``crash`` probe, but riding along a real
    exhibit run), exercising the scheduler's retry path end to end.
    """
    from ..obs import Telemetry, set_telemetry

    telemetry = Telemetry(enabled=True)
    set_telemetry(telemetry)  # job-scoped; process exits afterwards
    try:
        plan = spec.fault_plan()
        if plan is not None:
            for fault in plan.serve_faults():
                if attempt <= max(int(fault.param), 1):
                    os._exit(3)  # worker death: no message, nonzero exit
        if spec.kind == "probe":
            summaries = _run_probe(spec, conn)
        else:
            from ..faults import use_fault_plan
            with use_fault_plan(plan):
                summaries = _run_exhibits(spec, conn, report_dir,
                                          cache_dir, telemetry)
        conn.send(("done", {"runs": summaries,
                            "telemetry": telemetry.scalar_totals()}))
    except BaseException as exc:  # report, then exit cleanly
        try:
            conn.send(("error", {
                "error": repr(exc),
                "traceback": traceback.format_exc(),
            }))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
