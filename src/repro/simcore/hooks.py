"""Dependency-inversion hooks: upper layers register, simcore calls.

The simulation kernel sits at the bottom of the architecture layer DAG
(see ``repro.lint.graph.LAYERS``) and must not import upward. But the
observability layer wants a profiler attached to every freshly
constructed :class:`~repro.simcore.Simulator` while profiling is
enabled. The inversion: simcore calls the hooks defined here, and
``repro.obs.runtime`` registers its factory at import time.

With no factory registered (simcore imported stand-alone), every hook
is a cheap no-op — a simulator simply runs unprofiled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["new_profiler", "set_profiler_factory"]

#: Registered by ``repro.obs.runtime``; returns a profiler for a newly
#: constructed simulator, or None while profiling is disabled.
_profiler_factory: Optional[Callable[[], Any]] = None


def set_profiler_factory(
        factory: Optional[Callable[[], Any]]
) -> Optional[Callable[[], Any]]:
    """Install the profiler factory; returns the previous one."""
    global _profiler_factory
    previous, _profiler_factory = _profiler_factory, factory
    return previous


def new_profiler() -> Optional[Any]:
    """The profiler for a new simulator (None when none registered)."""
    if _profiler_factory is None:
        return None
    return _profiler_factory()
