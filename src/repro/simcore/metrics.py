"""Measurement primitives: time series, summaries, percentiles, CDFs.

Experiments record into these during simulation and read the aggregates
afterwards; none of them interact with the event loop.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "percentile",
    "cdf",
    "Summary",
    "TimeSeries",
    "Counter",
]


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) via linear interpolation.

    Matches numpy's default ("linear") method, but works on plain lists
    without the numpy import cost in hot loops.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # Interpolation rounding must never escape the data range (the list
    # is sorted, so ordered[low] <= ordered[high] always holds).
    return min(max(value, ordered[low]), ordered[high])


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as a list of ``(value, cumulative_fraction)`` points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


class Summary:
    """Streaming collection of scalar samples with percentile queries."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []

    def add(self, value: float) -> None:
        self.values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self.values.extend(values)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    def _require_samples(self) -> None:
        if not self.values:
            raise ValueError(f"summary {self.name!r} is empty")

    @property
    def mean(self) -> float:
        self._require_samples()
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        self._require_samples()
        return min(self.values)

    @property
    def maximum(self) -> float:
        self._require_samples()
        return max(self.values)

    def percentile(self, p: float) -> float:
        self._require_samples()
        return percentile(self.values, p)

    def cdf(self) -> List[Tuple[float, float]]:
        self._require_samples()
        return cdf(self.values)

    def histogram(self, edges: Sequence[float]) -> List[int]:
        """Counts per bucket for sorted bucket ``edges`` (right-open)."""
        counts = [0] * (len(edges) + 1)
        ordered = sorted(self.values)
        previous = 0
        for i, edge in enumerate(edges):
            position = bisect_right(ordered, edge)
            counts[i] = position - previous
            previous = position
        counts[len(edges)] = len(ordered) - previous
        return counts


class TimeSeries:
    """(time, value) samples with windowing and bucketing helpers."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be recorded in order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with ``start <= t < end``."""
        return [(t, v) for t, v in zip(self.times, self.values)
                if start <= t < end]

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.times[-1], self.values[-1]

    def bucketed(self, bucket: float, agg: str = "mean",
                 start: Optional[float] = None,
                 end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Aggregate samples into fixed-width buckets.

        ``agg`` is one of ``mean``, ``sum``, ``max``, ``min``, ``count``,
        ``rate`` (count per unit time).

        An explicit ``end`` is *exclusive* (``start <= t < end``, the
        same right-open convention as :meth:`window`), so adjacent
        ``bucketed`` calls never count a boundary sample twice. Without
        ``end`` the whole remaining series is included. ``rate`` divides
        by each bucket's *covered* width, clamping the final partial
        bucket to the window (or series) extent instead of the full
        bucket width.
        """
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        if not self.times:
            return []
        lo = self.times[0] if start is None else start
        buckets: Dict[int, List[float]] = {}
        for t, v in zip(self.times, self.values):
            if t < lo or (end is not None and t >= end):
                continue
            buckets.setdefault(int((t - lo) // bucket), []).append(v)
        # The window extent caps the last bucket's width for ``rate``;
        # with no explicit end the series' own last sample bounds it.
        extent = (end if end is not None else self.times[-1]) - lo
        result = []
        for index in sorted(buckets):
            samples = buckets[index]
            mid = lo + (index + 0.5) * bucket
            if agg == "mean":
                value = sum(samples) / len(samples)
            elif agg == "sum":
                value = sum(samples)
            elif agg == "max":
                value = max(samples)
            elif agg == "min":
                value = min(samples)
            elif agg == "count":
                value = float(len(samples))
            elif agg == "rate":
                width = min(bucket, extent - index * bucket)
                if width <= 0:
                    # A lone sample exactly on the series' final
                    # boundary: no covered span, use the full bucket.
                    width = bucket
                value = len(samples) / width
            else:
                raise ValueError(f"unknown aggregation {agg!r}")
            result.append((mid, value))
        return result


class Counter:
    """A monotonically increasing event counter with rate queries."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0
        #: (time, amount) pairs — O(1) memory per increment regardless
        #: of the amount.
        self._events: List[Tuple[float, int]] = []

    def increment(self, time: float, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.total += amount
        if amount:
            self._events.append((time, amount))

    def rate(self, start: float, end: float) -> float:
        """Events per unit time in [start, end)."""
        if end <= start:
            raise ValueError("rate window must have positive width")
        hits = sum(amount for t, amount in self._events if start <= t < end)
        return hits / (end - start)
