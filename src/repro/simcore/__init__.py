"""Discrete-event simulation core.

A minimal, dependency-free engine in the simpy tradition: a
:class:`Simulator` with an event agenda, generator-driven processes,
capacity resources with utilization accounting, and measurement
primitives. Every higher layer of the Canal Mesh reproduction runs on
top of this package.
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    PENDING,
    Process,
    SimulationError,
    Timeout,
)
from .metrics import Counter, Summary, TimeSeries, cdf, percentile
from .resources import CpuResource, Request, Resource, Store
from .rng import derived_stream
from .sim import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "CpuResource",
    "Event",
    "Interrupt",
    "PENDING",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Summary",
    "TimeSeries",
    "Timeout",
    "cdf",
    "derived_stream",
    "percentile",
]
