"""Discrete-event simulation core.

A minimal, dependency-free engine in the simpy tradition: a
:class:`Simulator` with an event agenda, generator-driven processes,
capacity resources with utilization accounting, and measurement
primitives. Every higher layer of the Canal Mesh reproduction runs on
top of this package.
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    PENDING,
    Process,
    SimulationError,
    Timeout,
)
from .metrics import Counter, Summary, TimeSeries, cdf, percentile
from .resources import CpuResource, Request, Resource, Store
from .agenda import CalendarAgenda, HeapAgenda
from .rng import derived_stream
from .sim import (
    EmptySchedule,
    Simulator,
    default_agenda_kind,
    set_default_agenda_kind,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarAgenda",
    "Counter",
    "CpuResource",
    "EmptySchedule",
    "Event",
    "HeapAgenda",
    "Interrupt",
    "PENDING",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Summary",
    "TimeSeries",
    "Timeout",
    "cdf",
    "default_agenda_kind",
    "derived_stream",
    "percentile",
    "set_default_agenda_kind",
]
