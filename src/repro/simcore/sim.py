"""The simulation kernel: a time-ordered agenda of events.

:class:`Simulator` owns the clock, the event heap, and a seeded random
number generator, so that every experiment in this repository is
deterministic given its seed.

The agenda holds ``(when, seq, call, event)`` tuples. ``seq`` is a
strictly increasing tie-breaker, so heap ordering never compares the
last two fields. ``call is None`` marks an ordinary event whose
``callbacks`` the loop drains; otherwise the entry is a *direct call*
(``call(event)``) — the allocation-free path used for process
bootstraps, late callbacks, and interrupts (see ``events.py``).

``run()`` inlines the event loop rather than calling :meth:`step` per
event: the loop is the hottest code in the repository and the per-event
method call, attribute reloads, and profiler check measurably cap
events/sec. :meth:`step` remains the single-event API (and the only
path when a profiler is attached).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Generator, Optional

from ..obs.runtime import new_profiler
from .events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Simulator", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised internally when the agenda runs dry before ``until``."""


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. Model code
        should draw all randomness from :attr:`rng` (or generators seeded
        from it) so runs are reproducible.
    """

    def __init__(self, seed: Optional[int] = 0):
        self.now: float = 0.0
        #: The construction seed, kept so subsystems can derive their
        #: own independent streams (rng.derived_stream) — e.g. trace
        #: sampling — without consuming draws from :attr:`rng`.
        self.seed = seed
        self.rng = random.Random(seed)
        self._heap: list = []
        #: Total agenda entries ever scheduled — also the heap
        #: tie-breaker. ``benchmarks/bench_runtime.py`` reads this as
        #: the processed-event count after a run drains the agenda.
        self._sequence = 0
        #: Opt-in step profiler (repro.obs): ``None`` unless profiling
        #: was enabled via ``repro.obs.enable_profiling()`` when this
        #: simulator was constructed, keeping the default loop hot.
        self.profiler = new_profiler()

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self.now + delay, self._sequence, None, event))

    def _schedule_call(self, call, event: Any, delay: float = 0.0) -> None:
        """Schedule ``call(event)`` — no Event allocated, nothing drained."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self.now + delay, self._sequence, call, event))

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now.

        Fast path: builds the (pre-triggered) Timeout and pushes it in
        one go, skipping the two-level ``__init__`` chain and the
        redundant delay validation in :meth:`_schedule` — timeouts are
        by far the most-scheduled event type.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        timeout = Timeout.__new__(Timeout)
        timeout.sim = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout.delay = delay
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self.now + delay, self._sequence, None, timeout))
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a process driving ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """An event that fires when every event in ``events`` succeeds."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next entry on the agenda."""
        if not self._heap:
            raise EmptySchedule()
        when, _seq, call, event = heapq.heappop(self._heap)
        if call is not None:
            if self.profiler is not None:
                self.profiler.record_call(self, when, call, event)
            else:
                self.now = when
                call(event)
            return
        if self.profiler is not None:
            self.profiler.record_step(self, when, event)
        else:
            self.now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the agenda is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so utilization
        windows line up with experiment horizons.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        if self.profiler is not None:
            # Profiled path: per-event step() so attribution stays in
            # one place; the loop overhead is noise next to the timers.
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                self.step()
        else:
            limit = float("inf") if until is None else until
            pop = heapq.heappop
            while heap and heap[0][0] <= limit:
                when, _seq, call, event = pop(heap)
                self.now = when
                if call is not None:
                    call(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        if until is not None:
            self.now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
