"""The simulation kernel: a time-ordered agenda of events.

:class:`Simulator` owns the clock, the event heap, and a seeded random
number generator, so that every experiment in this repository is
deterministic given its seed.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Generator, Optional

from ..obs.runtime import new_profiler
from .events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Simulator", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised internally when the agenda runs dry before ``until``."""


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. Model code
        should draw all randomness from :attr:`rng` (or generators seeded
        from it) so runs are reproducible.
    """

    def __init__(self, seed: Optional[int] = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: list = []
        self._sequence = 0
        #: Opt-in step profiler (repro.obs): ``None`` unless profiling
        #: was enabled via ``repro.obs.enable_profiling()`` when this
        #: simulator was constructed, keeping the default loop hot.
        self.profiler = new_profiler()

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a process driving ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """An event that fires when every event in ``events`` succeeds."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._heap:
            raise EmptySchedule()
        when, _seq, event = heapq.heappop(self._heap)
        if self.profiler is not None:
            self.profiler.record_step(self, when, event)
        else:
            self.now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the agenda is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so utilization
        windows line up with experiment horizons.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self.now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
