"""The simulation kernel: a time-ordered agenda of events.

:class:`Simulator` owns the clock, the event agenda, and a seeded
random number generator, so that every experiment in this repository is
deterministic given its seed.

The agenda holds ``(when, seq, call, event)`` tuples. ``seq`` is a
strictly increasing tie-breaker, so agenda ordering never compares the
last two fields. ``call is None`` marks an ordinary event whose
``callbacks`` the loop drains; otherwise the entry is a *direct call*
(``call(event)``) — the allocation-free path used for process
bootstraps, late callbacks, and interrupts (see ``events.py``).

Two interchangeable agenda engines (see ``agenda.py``) produce
byte-identical event order:

* ``"calendar"`` — a self-resizing calendar queue with a sorted
  far-future spill list: amortized O(1) push/pop, and the open bucket
  is a pre-sorted list, so ``run()`` drains same-timestamp batches
  (mesh config pushes, AVX-512 crypto batches) writing ``self.now``
  once per distinct timestamp. Fastest in the heavy-traffic regime
  (hundreds of thousands of pending events), where heapq's O(log n)
  sifts dominate.
* ``"heap"`` — the ``heapq`` reference implementation: C-implemented
  push/pop that pure-Python bucket bookkeeping cannot beat while the
  agenda is small. Kept as the oracle for the equivalence tests and
  the benchmark baseline.

The default is ``"auto"``: start on the heap engine and migrate —
once, irreversibly, O(n log n) — to the calendar engine the moment the
pending count crosses the fleet-scale threshold
(``_AUTO_MIGRATE``). Because both engines pop the exact same ``(when,
seq)`` order, the migration point is invisible in event order: light
exhibits keep heapq's small-agenda speed, fleet-scale runs
(ROADMAP item 1: O(10k) replicas, O(1M) sessions) get calendar
throughput, and all three kinds replay identically.

Pick per simulator (``Simulator(seed, agenda="heap")``), per process
(:func:`set_default_agenda_kind`), or via ``REPRO_SIM_AGENDA``.

``run()`` inlines the event loop rather than calling :meth:`step` per
event: the loop is the hottest code in the repository and the per-event
method call, attribute reloads, and profiler check measurably cap
events/sec. :meth:`step` remains the single-event API (and the only
path when a profiler is attached).

Fired :class:`Timeout` objects that nothing else references are
recycled onto a per-simulator slab (``_timeout_slab``) and reused by
the next ``timeout()`` call, so steady-state scheduling allocates
nothing; a ``sys.getrefcount`` guard keeps any timeout the model still
holds out of the slab. :meth:`fork` snapshots the whole simulator
(clock + rng + agenda, slab and profiler excluded) so sweeps can warm
up steady state once and fork per point (see ``repro.runtime``).
"""

from __future__ import annotations

import heapq
import os
import pickle
import random
import sys
from typing import Any, Generator, Optional

from .agenda import CalendarAgenda
from .hooks import new_profiler
from .events import AllOf, AnyOf, Event, Process, SimulationError, Timeout

__all__ = [
    "EmptySchedule",
    "Simulator",
    "default_agenda_kind",
    "set_default_agenda_kind",
]

_AGENDA_KINDS = ("auto", "calendar", "heap")

#: Process-wide default agenda engine; ``REPRO_SIM_AGENDA`` overrides
#: (CI uses it to diff heap-vs-calendar exhibit output byte-for-byte).
_default_kind = os.environ.get("REPRO_SIM_AGENDA", "auto")

#: Pending-entry count at which an ``"auto"`` simulator migrates from
#: the heap engine to the calendar engine. Below it the C heap wins on
#: constant factors; above it heapq's O(log n) sifts lose to the
#: calendar's amortized O(1) bucket ops (see BENCH_simcore.json).
_AUTO_MIGRATE = 65_536

#: Max recycled Timeout objects parked per simulator.
_SLAB_CAP = 4096

# ``sys.getrefcount(event)`` at the recycle checkpoints when *nothing
# outside the loop* references the event. Heap loop: the popped tuple
# was freed by unpacking, so refs = the loop local + getrefcount's
# argument. Calendar loop: the consumed entry tuple is still parked in
# the open bucket, adding one. (Asserted empirically by the slab tests.)
_RECYCLE_RC_HEAP = 2
_RECYCLE_RC_CALENDAR = 3


def default_agenda_kind() -> str:
    """The agenda engine new :class:`Simulator` instances use."""
    return _default_kind


def set_default_agenda_kind(kind: str) -> str:
    """Install ``kind`` as the process default; returns the previous."""
    global _default_kind
    if kind not in _AGENDA_KINDS:
        raise ValueError(f"unknown agenda kind {kind!r}; "
                         f"expected one of {_AGENDA_KINDS}")
    previous, _default_kind = _default_kind, kind
    return previous


class EmptySchedule(Exception):
    """Raised internally when the agenda runs dry before ``until``."""


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. Model code
        should draw all randomness from :attr:`rng` (or generators seeded
        from it) so runs are reproducible.
    agenda:
        Agenda engine: ``"auto"`` (default), ``"calendar"``, or
        ``"heap"``. All three pop the exact same ``(when, seq)`` order;
        ``"auto"`` starts on the heap engine and migrates to the
        calendar engine if the pending count ever crosses the
        fleet-scale threshold.
    """

    def __init__(self, seed: Optional[int] = 0,
                 agenda: Optional[str] = None):
        self.now: float = 0.0
        #: The construction seed, kept so subsystems can derive their
        #: own independent streams (rng.derived_stream) — e.g. trace
        #: sampling — without consuming draws from :attr:`rng`.
        self.seed = seed
        self.rng = random.Random(seed)
        kind = agenda if agenda is not None else _default_kind
        if kind == "calendar":
            self._agenda: Optional[CalendarAgenda] = CalendarAgenda()
            self._heap: Optional[list] = None
            self._push = self._agenda.push
            self._auto = False
        elif kind in ("heap", "auto"):
            self._agenda = None
            self._heap = []
            self._push = None
            self._auto = kind == "auto"
        else:
            raise ValueError(f"unknown agenda kind {kind!r}; "
                             f"expected one of {_AGENDA_KINDS}")
        #: Total agenda entries ever scheduled — also the agenda
        #: tie-breaker. ``benchmarks`` read this as the processed-event
        #: count after a run drains the agenda.
        self._sequence = 0
        #: Free list of fired, otherwise-unreferenced Timeout objects
        #: (each parked with an *empty* callbacks list), reused by
        #: ``timeout()`` so steady-state scheduling allocates nothing.
        self._timeout_slab: list = []
        #: Opt-in step profiler (repro.obs): ``None`` unless profiling
        #: was enabled via ``repro.obs.enable_profiling()`` when this
        #: simulator was constructed, keeping the default loop hot.
        self.profiler = new_profiler()

    @property
    def agenda_kind(self) -> str:
        """The agenda engine currently running this simulator.

        ``"auto"`` simulators report ``"heap"`` until (if ever) the
        fleet-scale migration trips, then ``"calendar"``.
        """
        return "heap" if self._heap is not None else "calendar"

    # -- scheduling --------------------------------------------------------
    def _migrate(self) -> None:
        """One-way heap → calendar migration (the ``"auto"`` trip point).

        The heap list, sorted, *is* a clean spill list: hand it to a
        fresh calendar agenda whose first ``_advance`` rebuilds and
        tunes the window from the full pending distribution. Event
        order is unchanged — both engines pop the same total order —
        so the migration point is invisible to models.
        """
        agenda = CalendarAgenda()
        heap = self._heap
        heap.sort()
        agenda._spill = heap[:]
        agenda._size = len(heap)
        agenda.spilled = len(heap)
        # Empty the old list in place: a running ``_run_heap`` loop
        # holds it as a local and uses emptiness as its exit signal.
        del heap[:]
        self._heap = None
        self._agenda = agenda
        self._push = agenda.push

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._sequence += 1
        heap = self._heap
        if heap is None:
            self._push((self.now + delay, self._sequence, None, event))
        else:
            heapq.heappush(heap,
                           (self.now + delay, self._sequence, None, event))
            if len(heap) > _AUTO_MIGRATE and self._auto:
                self._migrate()

    def _schedule_call(self, call, event: Any, delay: float = 0.0) -> None:
        """Schedule ``call(event)`` — no Event allocated, nothing drained."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        self._sequence += 1
        heap = self._heap
        if heap is None:
            self._push((self.now + delay, self._sequence, call, event))
        else:
            heapq.heappush(heap,
                           (self.now + delay, self._sequence, call, event))
            if len(heap) > _AUTO_MIGRATE and self._auto:
                self._migrate()

    def call_later(self, delay: float, call, arg: Any = None) -> None:
        """Schedule ``call(arg)`` at ``now + delay`` on the direct-call path.

        The public face of the allocation-free agenda entry: no
        :class:`Event` is created, nothing can be waited on, and the
        loop invokes ``call(arg)`` directly when the entry fires. This
        is the right primitive for fixed-step model updates (the fluid
        tier in ``repro.fleet`` schedules every flow step through it)
        and other fire-and-forget callbacks: entries are plain 4-tuples,
        so the calendar agenda batches and drains them at full speed.

        Callbacks fire in ``(when, seq)`` order like everything else;
        exceptions propagate out of :meth:`run`/:meth:`step`. Unlike
        event callbacks there is no cancellation handle — model code
        that needs to cancel should keep its own epoch/generation
        counter and no-op stale firings.
        """
        self._schedule_call(call, arg, delay)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now.

        Fast path: draws from the timeout slab via the shared
        slab-backed constructor (``Timeout._acquire`` — the same one
        ``Timeout(sim, d)`` routes through) and pushes the entry
        directly, skipping ``_schedule``'s redundant delay validation.
        """
        timeout = Timeout._acquire(self, delay, value)
        self._sequence += 1
        heap = self._heap
        if heap is None:
            self._push((self.now + delay, self._sequence, None, timeout))
        else:
            heapq.heappush(heap,
                           (self.now + delay, self._sequence, None, timeout))
            if len(heap) > _AUTO_MIGRATE and self._auto:
                self._migrate()
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a process driving ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """An event that fires when every event in ``events`` succeeds."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next entry on the agenda."""
        if self._heap is not None:
            if not self._heap:
                raise EmptySchedule()
            when, _seq, call, event = heapq.heappop(self._heap)
        else:
            try:
                when, _seq, call, event = self._agenda.pop()
            except IndexError:
                raise EmptySchedule() from None
        if call is not None:
            if self.profiler is not None:
                self.profiler.record_call(self, when, call, event)
            else:
                self.now = when
                call(event)
            return
        if self.profiler is not None:
            self.profiler.record_step(self, when, event)
        else:
            self.now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the agenda is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so utilization
        windows line up with experiment horizons.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        if self.profiler is not None:
            # Profiled path: per-event step() so attribution stays in
            # one place; the loop overhead is noise next to the timers.
            # Re-reads ``_heap`` every pass: an "auto" simulator may
            # migrate engines under us.
            while (self._heap if self._heap is not None
                   else len(self._agenda)):
                if until is not None and self.peek() > until:
                    break
                self.step()
        else:
            while True:
                if self._heap is not None:
                    self._run_heap(until)
                    if self._heap is None:
                        # An "auto" simulator migrated mid-run; resume
                        # on the calendar loop with the same limit.
                        continue
                else:
                    self._run_calendar(until)
                break
        if until is not None:
            self.now = until

    def _run_heap(self, until: Optional[float]) -> None:
        """The inlined heapq event loop (the PR 2 reference engine).

        Returns when the heap is drained or the limit is passed — or
        when an ``"auto"`` migration emptied the heap list mid-run (the
        caller re-dispatches onto the calendar loop).
        """
        heap = self._heap
        limit = float("inf") if until is None else until
        slab = self._timeout_slab
        getrefcount = sys.getrefcount
        pop = heapq.heappop
        while heap and heap[0][0] <= limit:
            when, _seq, call, event = pop(heap)
            self.now = when
            if call is not None:
                call(event)
                continue
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
            # Recycle a fired timeout nothing else references: the
            # refcount guard keeps model-held timeouts (and their
            # values) out of the slab, and the drained callbacks list
            # is cleared and reattached so a reused object can never
            # expose stale callbacks.
            if event.__class__ is Timeout and \
                    getrefcount(event) == _RECYCLE_RC_HEAP and \
                    len(slab) < _SLAB_CAP:
                del callbacks[:]
                event.callbacks = callbacks
                event._value = None
                slab.append(event)

    def _run_calendar(self, until: Optional[float]) -> None:
        """The calendar-queue event loop with batched same-time firing.

        The open bucket is a pre-sorted list consumed by index, so
        entries sharing a timestamp are adjacent: the loop writes
        ``self.now`` once and checks ``until`` once per *distinct*
        timestamp, then drains the whole batch. The agenda's cursor
        (``_pos``/``_size``) is committed once per batch (try/finally,
        so exceptions leave it consistent), not per event; pushes from
        model callbacks stay correct regardless (``CalendarAgenda.push``
        keys exceed every entry already consumed, so a stale ``lo``
        bound only widens ``insort``'s search), but model callbacks must
        not re-entrantly call ``step()``/``peek()`` mid-drain.
        """
        agenda = self._agenda
        limit = float("inf") if until is None else until
        slab = self._timeout_slab
        getrefcount = sys.getrefcount
        while True:
            open_ = agenda._open
            pos = agenda._pos
            if pos >= len(open_):
                if not agenda._advance():
                    break
                continue
            when = open_[pos][0]
            if when > limit:
                break
            self.now = when
            start = pos
            try:
                while True:
                    entry = open_[pos]
                    pos += 1
                    call = entry[2]
                    event = entry[3]
                    if call is not None:
                        call(event)
                    else:
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        # Same recycle guard as the heap loop, one count
                        # higher: the consumed entry tuple still parked
                        # in the open bucket holds one extra reference.
                        if event.__class__ is Timeout and \
                                getrefcount(event) == _RECYCLE_RC_CALENDAR \
                                and len(slab) < _SLAB_CAP:
                            del callbacks[:]
                            event.callbacks = callbacks
                            event._value = None
                            slab.append(event)
                    # Zero-delay pushes insort into the open bucket at
                    # >= pos (their keys exceed everything consumed),
                    # so the live length re-check picks them up.
                    if pos < len(open_) and open_[pos][0] == when:
                        continue
                    break
            finally:
                agenda._pos = pos
                agenda._size -= pos - start

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else float("inf")
        return self._agenda.peek()

    # -- snapshot / restore --------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the full simulator state: clock, rng, and agenda.

        Everything reachable from pending agenda entries (events,
        callbacks, the model objects behind them) is captured, so a
        warmed-up steady state can be snapshotted once and restored per
        sweep point (see ``repro.runtime.warmstart``). The timeout slab
        and any attached profiler are deliberately *not* part of the
        snapshot.

        Generator-driven processes cannot be pickled; snapshot-eligible
        worlds must schedule work through callbacks and direct calls.
        """
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except (TypeError, AttributeError, pickle.PicklingError) as exc:
            raise SimulationError(
                "Simulator.snapshot() requires a picklable world: "
                "generator-driven processes cannot be snapshotted — "
                "schedule via callbacks/direct calls instead "
                f"(pickle said: {exc})") from exc

    def fork(self) -> "Simulator":
        """An independent deep copy of this simulator (via snapshot)."""
        return pickle.loads(self.snapshot())

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["profiler"] = None       # profilers observe one process
        state["_timeout_slab"] = []    # an allocator cache, not state
        state.pop("_push", None)       # rebound on restore
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._push = self._agenda.push if self._agenda is not None else None
        self.profiler = new_profiler()
