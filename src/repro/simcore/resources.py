"""Shared, capacity-limited resources for simulation processes.

Three building blocks cover everything the mesh models need:

* :class:`Resource` — a counting semaphore with a FIFO wait queue, used
  for anything with bounded concurrency.
* :class:`CpuResource` — a multi-core CPU that additionally tracks its
  busy-time integral, so experiments can report utilization over any
  window. Proxy and gateway latency knees in the paper's figures emerge
  from queueing on these.
* :class:`Store` — an unbounded FIFO hand-off channel between processes
  (used e.g. for batch queues in the AVX-512 accelerator model).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .events import Event
from .sim import Simulator

__all__ = ["Request", "Resource", "CpuResource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Supports use as a context manager so model code can write::

        with cpu.request() as claim:
            yield claim
            yield sim.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)


class Resource:
    """A counting semaphore with FIFO granting.

    ``capacity`` slots may be held simultaneously; further requests queue
    in arrival order.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires once the slot is held."""
        claim = Request(self)
        if len(self.users) < self.capacity:
            self._grant(claim)
        else:
            self.queue.append(claim)
        return claim

    def release(self, claim: Request) -> None:
        """Return a slot (or cancel a queued claim). Idempotent."""
        if claim in self.users:
            self.users.remove(claim)
            self._on_change()
            while self.queue and len(self.users) < self.capacity:
                self._grant(self.queue.popleft())
        elif claim in self.queue:
            self.queue.remove(claim)

    def _grant(self, claim: Request) -> None:
        self.users.append(claim)
        self._on_change()
        claim.succeed(claim)

    def _on_change(self) -> None:
        """Hook for subclasses observing occupancy transitions."""

    def resize(self, capacity: int) -> None:
        """Change capacity; newly freed slots are granted immediately."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self.queue and len(self.users) < self.capacity:
            self._grant(self.queue.popleft())


class CpuResource(Resource):
    """A multi-core CPU with busy-time accounting.

    ``cores`` maps to :attr:`capacity`. Each held slot is one busy core.
    The busy-time integral lets callers compute average utilization over
    arbitrary windows, which the paper's resource figures report.
    """

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "cpu"):
        super().__init__(sim, capacity=cores)
        self.name = name
        self._busy_integral = 0.0
        self._last_change = sim.now
        self._level_since_last = 0
        self._window_marks: List[Tuple[float, float]] = []

    @property
    def cores(self) -> int:
        return self.capacity

    def _on_change(self) -> None:
        now = self.sim.now
        # in_use has already been updated by the caller; integrate the
        # occupancy that held from the previous transition until now.
        # We therefore integrate *before* recording the new level, using
        # the level stored at the last transition.
        self._busy_integral += self._level_since_last * (now - self._last_change)
        self._last_change = now
        self._level_since_last = self.in_use

    def busy_time(self) -> float:
        """Total core-seconds consumed since creation (up to now)."""
        return self._busy_integral + self._level_since_last * (
            self.sim.now - self._last_change)

    def mark(self) -> None:
        """Record a measurement mark (for windowed utilization)."""
        self._window_marks.append((self.sim.now, self.busy_time()))

    def utilization(self, since: float = 0.0) -> float:
        """Average utilization in [since, now] as a 0..1 fraction."""
        horizon = self.sim.now - since
        if horizon <= 0:
            return 0.0
        busy_at_since = self._busy_at(since)
        return (self.busy_time() - busy_at_since) / (horizon * self.cores)

    def utilization_between_marks(self) -> List[Tuple[float, float]]:
        """Per-interval utilization between consecutive ``mark()`` calls."""
        points = []
        marks = self._window_marks
        for (t0, b0), (t1, b1) in zip(marks, marks[1:]):
            if t1 > t0:
                points.append((t1, (b1 - b0) / ((t1 - t0) * self.cores)))
        return points

    def execute(self, service_time: float):
        """Process generator: occupy one core for ``service_time``."""
        with self.request() as claim:
            yield claim
            yield self.sim.timeout(service_time)

    def _busy_at(self, when: float) -> float:
        # Linear interpolation is exact when no transition happened in
        # (when, last_change); good enough for windowed reporting.
        if when <= 0:
            return 0.0
        if when >= self._last_change:
            return self._busy_integral + self._level_since_last * (
                when - self._last_change)
        # Fall back to proportional estimate before the last transition.
        if self._last_change == 0:
            return 0.0
        return self._busy_integral * (when / self._last_change)


class Store:
    """An unbounded FIFO channel between producer and consumer processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        claim = Event(self.sim)
        if self._items:
            claim.succeed(self._items.popleft())
        else:
            self._getters.append(claim)
        return claim
