"""Seeded distribution helpers used across the workload models.

Everything draws from a :class:`random.Random` owned by the simulator so
that experiments are reproducible end to end.
"""

from __future__ import annotations

import math
import random
from typing import Callable

__all__ = [
    "exponential",
    "lognormal_from_median",
    "pareto_bounded",
    "jittered",
    "make_sampler",
    "derived_stream",
]


def derived_stream(seed, label: str) -> random.Random:
    """An independent ``random.Random`` derived from ``(seed, label)``.

    Side channels (trace sampling, diagnostics) must not consume draws
    from the simulator's own :attr:`~repro.simcore.Simulator.rng` —
    that would change model behavior whenever the side channel toggles.
    Deriving a labeled stream from the same seed keeps them independent
    *and* reproducible: equal (seed, label) → an identical stream on
    every platform and at any ``--jobs`` level.
    """
    return random.Random(f"{label}:{seed!r}")


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential sample with the given mean (inter-arrival times)."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    return rng.expovariate(1.0 / mean)


def lognormal_from_median(rng: random.Random, median: float,
                          sigma: float) -> float:
    """Lognormal sample parameterized by its median.

    ``median = exp(mu)`` — handy for service-time models anchored at a
    known median (the paper's app latency clusters around 40–50 ms).
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    return rng.lognormvariate(math.log(median), sigma)


def pareto_bounded(rng: random.Random, alpha: float, minimum: float,
                   maximum: float) -> float:
    """Bounded Pareto sample (heavy-tailed sizes like response bodies)."""
    if not 0 < minimum < maximum:
        raise ValueError("need 0 < minimum < maximum")
    u = rng.random()
    ha = maximum ** alpha
    la = minimum ** alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def jittered(rng: random.Random, value: float, fraction: float) -> float:
    """``value`` perturbed uniformly by ±``fraction`` of itself."""
    if fraction < 0:
        raise ValueError("jitter fraction must be non-negative")
    return value * (1.0 + rng.uniform(-fraction, fraction))


def make_sampler(rng: random.Random, spec: dict) -> Callable[[], float]:
    """Build a no-argument sampler from a distribution spec dict.

    Supported kinds: ``constant`` (value), ``exponential`` (mean),
    ``lognormal`` (median, sigma), ``uniform`` (low, high).
    """
    kind = spec.get("kind", "constant")
    if kind == "constant":
        value = float(spec["value"])
        return lambda: value
    if kind == "exponential":
        mean = float(spec["mean"])
        return lambda: exponential(rng, mean)
    if kind == "lognormal":
        median = float(spec["median"])
        sigma = float(spec.get("sigma", 0.5))
        return lambda: lognormal_from_median(rng, median, sigma)
    if kind == "uniform":
        low, high = float(spec["low"]), float(spec["high"])
        return lambda: rng.uniform(low, high)
    raise ValueError(f"unknown distribution kind {kind!r}")
