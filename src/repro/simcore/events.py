"""Event primitives for the discrete-event simulation core.

The design follows the classic event/process pattern (as popularized by
simpy): an :class:`Event` is a one-shot value holder that fires at a
simulated time, and a :class:`Process` drives a Python generator that
yields events to wait on.

Events move through three states:

* *pending* — created, not yet triggered.
* *triggered* — a value (or failure) has been set and the event is
  scheduled on the simulator's agenda.
* *processed* — the simulator has popped the event and run its callbacks.

Callbacks added after processing are scheduled as a zero-delay *direct
call* on the agenda so that late subscribers still observe the result.
This makes ``yield some_event`` safe regardless of ordering, which keeps
model code simple.

Hot-path notes
--------------
The agenda holds ``(when, seq, call, event)`` entries.  ``call`` is
``None`` for ordinary events (the simulator drains ``event.callbacks``);
otherwise it is a plain callable invoked as ``call(event)`` with no
Event object behind it.  Direct calls carry the resume of a freshly
started :class:`Process` (eliminating the per-process bootstrap Event
allocation), late ``add_callback`` subscribers (eliminating the
trampoline Event), and interrupts.

Wait-target bookkeeping is *lazy*: a process never removes its
``_resume`` callback from an abandoned wait target (an O(n) list scan);
instead stale wake-ups are recognized in O(1) when the old target fires,
by comparing it against the process's current target.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class _Pending:
    """Sentinel marking an event that has not been triggered yet."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not model failures)."""


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    ``cause`` carries an arbitrary, model-defined payload describing why
    the interrupt happened (e.g. "migrated", "throttled").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Init:
    """Singleton payload delivered to a process's very first resume."""

    __slots__ = ()
    _ok = True
    _value = None


_INIT = _Init()


class _Interrupted:
    """Payload delivering an :class:`Interrupt` into a process.

    Unlike ordinary wake-ups, interrupts are always delivered (the
    stale-target check in :meth:`Process._resume` lets them through),
    mirroring the eager-removal semantics the lazy bookkeeping replaced.
    """

    __slots__ = ("_value", "_defused")
    _ok = False

    def __init__(self, exception: Interrupt):
        self._value = exception
        self._defused = True


class Event:
    """A one-shot occurrence at a point in simulated time."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether a value or failure has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception for failed events)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Set the event's value and schedule it after ``delay``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Fail the event with ``exception`` and schedule it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed, the callback is scheduled to
        run at the current simulated time instead of being dropped.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            self.sim._schedule_call(callback, self)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still pending."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator won't raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are by far the most-scheduled event type, so construction
    is slab-backed: a fired timeout that nothing else references is
    recycled onto its simulator's free list (``sim._timeout_slab``) by
    the event loop, and both construction paths — ``Timeout(sim, d)``
    here and ``Simulator.timeout()`` — go through :meth:`_acquire`,
    the single slab-backed constructor. Recycled instances are
    guaranteed to arrive with an *empty* ``callbacks`` list (reset at
    recycle time), so a reused object can never leak callbacks from
    its previous life.
    """

    __slots__ = ("delay",)

    def __new__(cls, sim: Optional["Simulator"] = None, delay: float = 0.0,
                value: Any = None):
        # Pickle calls this with no args and gets a bare instance;
        # every live construction routes through ``_acquire``.
        if sim is None:
            timeout = object.__new__(cls)
            timeout.callbacks = []
            return timeout
        return cls._acquire(sim, delay, value)

    @classmethod
    def _acquire(cls, sim: "Simulator", delay: float,
                 value: Any) -> "Timeout":
        """The slab-backed constructor: slab draw (or fresh allocation)
        plus field initialization, in one frame.

        The single source of truth for a scheduled timeout's field
        state, shared by ``Timeout(sim, d)`` and the
        ``Simulator.timeout()`` fast path. Does not schedule.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        slab = sim._timeout_slab
        if slab and cls is Timeout:
            timeout = slab.pop()  # callbacks: empty list, by invariant
        else:
            timeout = object.__new__(cls)
            timeout.callbacks = []
        timeout.sim = sim
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout.delay = delay
        return timeout

    def __init__(self, sim: Optional["Simulator"] = None,
                 delay: float = 0.0, value: Any = None):
        # ``__new__`` (via ``_acquire``) already set the field state;
        # all that is left is to enter the agenda.
        if sim is not None:
            sim._schedule(self, delay)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """Drives a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances. When a yielded event is
    processed, the generator resumes with the event's value (or the
    exception is thrown in for failed events).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        sim._schedule_call(self._resume, _INIT)

    @property
    def is_alive(self) -> bool:
        """Whether the generator is still running."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator at the current time.

        A wait target that already triggered (but was not yet processed)
        is suppressed: clearing ``_target`` makes its wake-up stale, so
        the interrupt is the next thing the generator observes.
        """
        if self.triggered:
            return
        self._target = None
        self.sim._schedule_call(self._resume, _Interrupted(Interrupt(cause)))

    def _resume(self, event) -> None:
        if self._value is not PENDING:
            # The process already ended (e.g. an interrupt raced with a
            # pending wait target); ignore stale wake-ups.
            return
        target = self._target
        if target is not event:
            cls = event.__class__
            if cls is _Interrupted:
                pass  # interrupts are always delivered
            elif cls is _Init and target is None:
                pass  # the bootstrap resume
            else:
                # A lazily-abandoned wait target fired; its callback was
                # never removed (O(1) bookkeeping) — drop it here.
                return
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        callbacks = target.callbacks
        if callbacks is not None:
            callbacks.append(self._resume)
        else:
            self.sim._schedule_call(self._resume, target)


class AllOf(Event):
    """Fires once all child events succeed; value is the list of values.

    Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child._ok:
            child._defused = True
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event._value for event in self._events])


class AnyOf(Event):
    """Fires when the first child event triggers.

    Value is a ``(event, value)`` tuple identifying the winner. A failing
    first child fails this condition.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for child in self._events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._ok:
            self.succeed((child, child._value))
        else:
            child._defused = True
            self.fail(child._value)
