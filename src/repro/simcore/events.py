"""Event primitives for the discrete-event simulation core.

The design follows the classic event/process pattern (as popularized by
simpy): an :class:`Event` is a one-shot value holder that fires at a
simulated time, and a :class:`Process` drives a Python generator that
yields events to wait on.

Events move through three states:

* *pending* — created, not yet triggered.
* *triggered* — a value (or failure) has been set and the event is
  scheduled on the simulator's agenda.
* *processed* — the simulator has popped the event and run its callbacks.

Callbacks added after processing are scheduled on a zero-delay trampoline
event so that late subscribers still observe the result. This makes
``yield some_event`` safe regardless of ordering, which keeps model code
simple.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class _Pending:
    """Sentinel marking an event that has not been triggered yet."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not model failures)."""


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    ``cause`` carries an arbitrary, model-defined payload describing why
    the interrupt happened (e.g. "migrated", "throttled").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether a value or failure has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception for failed events)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Set the event's value and schedule it after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Fail the event with ``exception`` and schedule it."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed, the callback is scheduled to
        run at the current simulated time instead of being dropped.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            trampoline = Event(self.sim)
            trampoline.callbacks.append(lambda _ev: callback(self))
            trampoline._ok = True
            trampoline._value = None
            self.sim._schedule(trampoline, 0.0)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still pending."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator won't raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """Drives a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances. When a yielded event is
    processed, the generator resumes with the event's value (or the
    exception is thrown in for failed events).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap, 0.0)

    @property
    def is_alive(self) -> bool:
        """Whether the generator is still running."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator at the current time."""
        if self.triggered:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        poke = Event(self.sim)
        poke.callbacks.append(self._resume)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke._defused = True
        self.sim._schedule(poke, 0.0)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # The process already ended (e.g. an interrupt raced with a
            # pending wait target); ignore stale wake-ups.
            return
        if self._target is not None and self._target is not event:
            self._target.remove_callback(self._resume)
        self._target = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires once all child events succeed; value is the list of values.

    Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child._ok:
            child._defused = True
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event._value for event in self._events])


class AnyOf(Event):
    """Fires when the first child event triggers.

    Value is a ``(event, value)`` tuple identifying the winner. A failing
    first child fails this condition.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for child in self._events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._ok:
            self.succeed((child, child._value))
        else:
            child._defused = True
            self.fail(child._value)
