"""Agenda structures for the simulation kernel.

The :class:`Simulator` agenda is a priority queue of
``(when, seq, call, event)`` tuples ordered by ``(when, seq)`` — ``seq``
is unique, so comparisons never reach the last two fields. Two
implementations share that contract:

* :class:`HeapAgenda` — the reference: a plain ``heapq`` binary heap,
  O(log n) push/pop. This is the structure the simulator used through
  PR 2 and the oracle the equivalence tests compare against.
* :class:`CalendarAgenda` — the production engine: a calendar queue
  (R. Brown, CACM 1988) with amortized O(1) push/pop in the
  heavy-traffic regime, plus a sorted *spill list* for far-future
  entries (cert-rotation timers, daily-ops schedules) that would
  otherwise force an absurdly wide bucket window.

Calendar design
---------------
Simulated time is divided into a *window* of ``nbuckets`` consecutive
buckets of ``width`` seconds starting at ``base``. A push lands in
bucket ``int((when - base) / width)``; entries past the window go to
the spill list. Buckets are plain appended-to lists, sorted lazily
(timsort, in C) the moment the clock enters them; the open bucket is
then consumed by index, so a pop is a list subscript, not a heap sift.
Same-``when`` entries end up *adjacent* in the open bucket, which is
what lets the simulator drain them as one batch (see ``sim.run``).

Three details keep the structure honest at any scale:

* **Non-empty bucket index heap.** Instead of scanning empty buckets,
  the agenda keeps a tiny heap of indices of non-empty future buckets.
  Advancing to the next bucket is one ``heappop`` regardless of how
  sparse the window is, so a badly tuned width degrades smoothly
  instead of catastrophically.
* **Self-resizing width.** When the window is exhausted the agenda
  rebuilds from the spill list: it sorts the spill (usually a no-op —
  steady-state appends arrive in time order), then picks a new width
  from the density of a *front sample* of the sorted spill — the head
  is where the clock goes next, and a far-future tail (cert rotations)
  must not stretch the width until near-term events collapse into a
  single bucket. The window's *length* targets the 90th-percentile
  span; outliers beyond it stay spilled rather than stretching the
  window.
* **Late pushes stay ordered.** A push into the *open* (partially
  consumed) bucket — or before it, which can only happen after
  ``peek()`` opened a bucket early — is ``bisect.insort``-ed at or
  after the consumption point. Every such entry carries a ``(when,
  seq)`` key greater than everything already popped, so insertion
  order is exact.

Both agendas are picklable; :meth:`CalendarAgenda.__getstate__` trims
the consumed prefix of the open bucket so ``Simulator.fork()``
snapshots carry only live entries.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarAgenda", "HeapAgenda"]

_INF = float("inf")

#: One agenda entry: (when, seq, call, event).
Entry = Tuple[float, int, Any, Any]


class HeapAgenda:
    """Reference agenda: a binary heap of ``(when, seq, call, event)``."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heappop(self._heap)

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else _INF

    def __len__(self) -> int:
        return len(self._heap)

    def stats(self) -> dict:
        return {"kind": "heap", "pending": len(self._heap)}


class CalendarAgenda:
    """Calendar-queue agenda with a far-future spill list.

    Parameters
    ----------
    nbuckets:
        Buckets per window. More buckets cover a longer horizon per
        rebuild; the index heap keeps sparse windows cheap either way.
    target_occupancy:
        Average entries per bucket the self-tuning width aims for.
        Larger values mean bigger (but fewer) lazy bucket sorts.
    """

    __slots__ = (
        "_nbuckets", "_min_buckets", "_target_occupancy", "_buckets",
        "_bheap", "_open", "_pos", "_cur", "_size", "_base", "_width",
        "_inv_width", "_window_cap", "_spill", "_spill_pos",
        "_spill_dirty", "rebuilds", "spilled",
    )

    #: Quantile of the pending-entry span used for window *length*
    #: tuning; entries beyond it stay spilled instead of stretching
    #: the window.
    _TUNE_QUANTILE = 0.9

    #: Entries sampled from the head of the sorted spill to estimate
    #: near-term density for bucket *width* tuning. A bimodal pending
    #: set (steady traffic plus far-future timers) would contaminate a
    #: quantile-based density estimate and collapse all near-term
    #: entries into one bucket.
    _DENSITY_SAMPLE = 8192

    #: Window length target, as a multiple of the pending-entry span.
    #: Steady-state models reschedule ~one span ahead of the clock, so
    #: covering two spans keeps those pushes in buckets (O(1) append)
    #: instead of routing them through the spill list's sort.
    _WINDOW_SPANS = 8.0

    #: Bucket-count ceiling per window (memory/alloc bound); windows
    #: that would need more simply spill the tail and rebuild sooner.
    _MAX_BUCKETS = 1 << 16

    def __init__(self, nbuckets: int = 512,
                 target_occupancy: float = 16.0) -> None:
        if nbuckets < 1:
            raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
        self._nbuckets = nbuckets
        self._min_buckets = nbuckets
        self._target_occupancy = float(target_occupancy)
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        #: Min-heap of indices of non-empty, not-yet-opened buckets.
        self._bheap: List[int] = []
        #: The open (currently draining) bucket, sorted; consumed by
        #: index ``_pos`` so pops never shift list contents.
        self._open: List[Entry] = []
        self._pos = 0
        self._cur = -1  # index of the open bucket; -1 before first open
        self._size = 0
        # Window geometry. ``_window_cap`` is -inf until the first
        # rebuild, sending every early push to the spill list so the
        # first real window is tuned from the observed distribution
        # instead of a guessed width.
        self._base = 0.0
        self._width = 1.0
        self._inv_width = 1.0
        self._window_cap = -_INF
        # Far-future entries, consumed from ``_spill_pos`` once sorted.
        self._spill: List[Entry] = []
        self._spill_pos = 0
        self._spill_dirty = False
        # Introspection counters (tests assert the spill path runs).
        self.rebuilds = 0
        self.spilled = 0

    # -- core operations ----------------------------------------------------
    def push(self, entry: Entry) -> None:
        self._size += 1
        offset = (entry[0] - self._base) * self._inv_width
        if offset < self._window_cap:
            idx = int(offset)
            if idx <= self._cur:
                # Into (or before) the open bucket: keep sorted order
                # past the consumption point. The entry's (when, seq)
                # key exceeds everything already popped, so lo=_pos is
                # a valid left bound even when stale by a callback.
                insort(self._open, entry, lo=self._pos)
            else:
                bucket = self._buckets[idx]
                bucket.append(entry)
                if len(bucket) == 1:
                    heappush(self._bheap, idx)
        else:
            # Past the window horizon (or before the first rebuild).
            self._spill.append(entry)
            self._spill_dirty = True
            self.spilled += 1

    def pop(self) -> Entry:
        pos = self._pos
        open_ = self._open
        if pos < len(open_):
            self._pos = pos + 1
            self._size -= 1
            return open_[pos]
        if self._advance():
            self._pos = 1
            self._size -= 1
            return self._open[0]
        raise IndexError("pop from an empty agenda")

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty.

        May open the next bucket (sorting it) to find out; that keeps
        ``peek`` O(1) amortized and leaves the agenda ready to pop.
        """
        if self._pos < len(self._open):
            return self._open[self._pos][0]
        if self._advance():
            return self._open[0][0]
        return _INF

    def __len__(self) -> int:
        return self._size

    def stats(self) -> dict:
        return {"kind": "calendar", "pending": self._size,
                "width": self._width, "base": self._base,
                "rebuilds": self.rebuilds, "spilled": self.spilled,
                "spill_pending": len(self._spill) - self._spill_pos}

    # -- window maintenance --------------------------------------------------
    def _advance(self) -> bool:
        """Open the next non-empty bucket; False if the agenda is empty.

        Clears the exhausted open bucket in place (recycling its list)
        and, when the whole window is spent, rebuilds it from the
        spill list with a freshly tuned width.
        """
        old = self._open
        if old:
            del old[:]
        self._pos = 0
        bheap = self._bheap
        buckets = self._buckets
        while True:
            if bheap:
                idx = heappop(bheap)
                bucket = buckets[idx]
                self._cur = idx
                bucket.sort()
                self._open = bucket
                return True
            if self._spill_pos < len(self._spill):
                self._rebuild()
                continue
            return False

    def _rebuild(self) -> None:
        """Retune the window over the pending spill and distribute it."""
        self.rebuilds += 1
        spill = self._spill
        pos = self._spill_pos
        if self._spill_dirty:
            if pos:
                del spill[:pos]
                pos = 0
            # Steady-state appends arrive in time order, so this is
            # usually a two-run merge or a no-op for timsort.
            spill.sort()
            self._spill_dirty = False
        pending = len(spill) - pos
        base = spill[pos][0]
        # Tune width from near-term density and window length from the
        # quantile-trimmed span; the tail past the quantile stays
        # spilled rather than stretching the window.
        if pending > 1:
            hi_index = pos + int(self._TUNE_QUANTILE * (pending - 1))
            span = spill[hi_index][0] - base
            if span > 0.0:
                # Width from a front sample: the head of the sorted
                # spill is where the clock goes next, and a far-future
                # tail must not widen buckets until near-term entries
                # collapse into a single open bucket.
                front = pos + min(pending - 1, self._DENSITY_SAMPLE)
                front_span = spill[front][0] - base
                if front_span > 0.0:
                    width = (front_span * self._target_occupancy
                             / (front - pos))
                    # Extrapolate the front density across the whole
                    # pending set. When the quantile span is inflated
                    # by a sparse far-future tail, the extrapolation
                    # is the honest window target: the tail belongs in
                    # the spill list, not stretched across the window.
                    est_span = front_span * (pending - 1) / (front - pos)
                    window_span = span if span < est_span else est_span
                else:
                    # The whole front sample is one same-instant
                    # burst; fall back to the quantile span.
                    covered = hi_index - pos + 1
                    width = span * self._target_occupancy / covered
                    window_span = span
                if not width > 0.0 or width == _INF:  # denormal/overflow
                    width = 1.0
                # Size the window to cover _WINDOW_SPANS × the target
                # span: steady-state models reschedule about one span
                # ahead of the clock, and those pushes must land in
                # buckets, not cycle through the spill sort.
                want = self._WINDOW_SPANS * window_span / width + 1.0
                if not want < self._MAX_BUCKETS:  # inf/nan-safe clamp
                    nbuckets = self._MAX_BUCKETS
                    # The bucket-count ceiling would have shrunk the
                    # window below _WINDOW_SPANS coverage; widen the
                    # buckets instead. Occupancy rises above target,
                    # but a bigger bucket timsort (C) is far cheaper
                    # than cycling steady-state pushes through the
                    # spill list.
                    wide = self._WINDOW_SPANS * window_span / nbuckets
                    if width < wide < _INF:
                        width = wide
                else:
                    nbuckets = int(want)
                    if nbuckets < self._min_buckets:
                        nbuckets = self._min_buckets
                self._width = width
                buckets = self._buckets
                if nbuckets > len(buckets):
                    buckets.extend(
                        [] for _ in range(nbuckets - len(buckets)))
                elif nbuckets < len(buckets):
                    # Every bucket is empty here (rebuild only runs once
                    # the window is exhausted), so shrinking drops only
                    # empty lists.
                    del buckets[nbuckets:]
                self._nbuckets = nbuckets
        self._base = base
        self._inv_width = inv = 1.0 / self._width
        self._window_cap = cap = float(self._nbuckets)
        self._cur = -1
        buckets = self._buckets
        bheap = self._bheap
        index = pos
        end = len(spill)
        while index < end:
            entry = spill[index]
            offset = (entry[0] - base) * inv
            if not offset < cap:
                break  # spill is sorted: everything after stays spilled
            bucket = buckets[int(offset)]
            bucket.append(entry)
            if len(bucket) == 1:
                heappush(bheap, int(offset))
            index += 1
        if index == end:
            del spill[:]
            self._spill_pos = 0
        else:
            self._spill_pos = index

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Snapshot without the consumed open-bucket prefix.

        ``Simulator.fork()`` pickles the agenda; dragging along popped
        entries would both bloat the payload and pin dead events.
        """
        state = {name: getattr(self, name) for name in self.__slots__}
        live = self._open[self._pos:]
        buckets = [list(bucket) for bucket in self._buckets]
        if 0 <= self._cur < len(buckets):
            buckets[self._cur] = live
        state["_open"] = live
        state["_pos"] = 0
        state["_buckets"] = buckets
        state["_bheap"] = list(self._bheap)
        state["_spill"] = self._spill[self._spill_pos:]
        state["_spill_pos"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
