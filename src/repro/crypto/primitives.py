"""Crypto cost model: asymmetric vs symmetric operations.

Anchors from the paper (§4.1.3, Appendix A/C):

* Asymmetric crypto is infrequent (handshake-time only) but expensive;
  symmetric crypto is per-byte and cheap.
* "No offloading" — software asymmetric crypto on *old* CPU models —
  completes in ~2 ms (Fig 23).
* Accelerated asymmetric crypto (QAT / AVX-512, only on newer, ~30 %
  pricier VM models) is several times cheaper per operation, but the
  AVX-512 path is batched 8-wide with a ≥1 ms flush timeout (Fig 25).
* Software crypto on the *new* CPUs is faster than on old ones — which
  is why under-filled AVX-512 batches can lose to plain software.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CryptoCosts", "DEFAULT_CRYPTO_COSTS"]


@dataclass(frozen=True)
class CryptoCosts:
    """Per-operation crypto costs in seconds (and per byte for symmetric)."""

    #: Software asymmetric op on old CPU models ("no offloading").
    asym_software_old_cpu_s: float = 2.0e-3
    #: Software asymmetric op on new (AVX-512-capable) CPU models.
    asym_software_new_cpu_s: float = 0.8e-3
    #: Accelerated asymmetric op (QAT or a full AVX-512 batch slot).
    asym_accelerated_s: float = 0.25e-3
    #: Symmetric (AES-GCM-style) cost per byte (~2 GB/s).
    sym_per_byte_s: float = 0.5e-9
    #: Fixed symmetric record-processing cost per message.
    sym_setup_s: float = 2e-6

    def symmetric_cost(self, nbytes: int) -> float:
        """CPU time to encrypt/decrypt ``nbytes`` with the session key."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        return self.sym_setup_s + nbytes * self.sym_per_byte_s

    def asym_software_s(self, new_cpu: bool) -> float:
        """Software asymmetric cost for the given CPU generation."""
        if new_cpu:
            return self.asym_software_new_cpu_s
        return self.asym_software_old_cpu_s


DEFAULT_CRYPTO_COSTS = CryptoCosts()
