"""Asymmetric-crypto engines: plain software and batched AVX-512/QAT.

All engines share one interface — :meth:`submit` returns an event that
fires when one asymmetric operation completes — so the mTLS handshake,
the on-node proxy, and the remote key server can swap them freely.

The batched engine reproduces the paper's Appendix C finding (Fig 25):
AVX-512 processes 8 operations per batch and waits up to a configurable
timeout (minimum 1 ms) for the batch to fill, so with fewer than 8
concurrent new connections, operations eat the flush timeout and
performance drops below plain software on the same CPU.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.runtime import get_telemetry
from ..simcore import CpuResource, Event, Interrupt, Simulator
from .primitives import CryptoCosts, DEFAULT_CRYPTO_COSTS

__all__ = ["SoftwareAsymEngine", "BatchedAccelerator"]


class SoftwareAsymEngine:
    """Plain-CPU asymmetric crypto (the no-offloading fallback)."""

    def __init__(self, sim: Simulator, costs: CryptoCosts = DEFAULT_CRYPTO_COSTS,
                 new_cpu: bool = False, cpu: Optional[CpuResource] = None):
        self.sim = sim
        self.costs = costs
        self.new_cpu = new_cpu
        self.cpu = cpu
        self.operations = 0

    @property
    def op_cost_s(self) -> float:
        return self.costs.asym_software_s(self.new_cpu)

    def submit(self) -> Event:
        """One asymmetric operation; fires when the computation ends."""
        done = self.sim.event()
        self.sim.process(self._run(done), name="sw-asym")
        return done

    def _run(self, done: Event):
        if self.cpu is not None:
            yield from self.cpu.execute(self.op_cost_s)
        else:
            yield self.sim.timeout(self.op_cost_s)
        self.operations += 1
        get_telemetry().inc("crypto_asym_ops_total", engine="software")
        done.succeed(self.sim.now)


class BatchedAccelerator:
    """AVX-512-style batch engine: N-wide batches, minimum flush timeout.

    Operations queue until either ``batch_size`` are pending (immediate
    flush) or ``flush_timeout_s`` elapses since the oldest queued op.
    A full batch completes in one accelerated-op time regardless of fill.
    """

    def __init__(self, sim: Simulator, costs: CryptoCosts = DEFAULT_CRYPTO_COSTS,
                 batch_size: int = 8, flush_timeout_s: float = 1e-3,
                 cpu: Optional[CpuResource] = None, name: str = "avx512"):
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if flush_timeout_s < 1e-3:
            # The paper: "the wait time is configurable with a minimum
            # threshold of 1 ms".
            raise ValueError("flush timeout below the 1 ms hardware minimum")
        self.sim = sim
        self.costs = costs
        self.batch_size = batch_size
        self.flush_timeout_s = flush_timeout_s
        self.cpu = cpu
        self.name = name
        self._pending: List[Event] = []
        self._timer = None
        self.operations = 0
        self.batches = 0
        self.full_batches = 0

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    def submit(self) -> Event:
        """Queue one asymmetric op; fires when its batch completes."""
        done = self.sim.event()
        self._pending.append(done)
        if len(self._pending) >= self.batch_size:
            self._flush()
        elif len(self._pending) == 1:
            self._timer = self.sim.process(self._flush_timer(), name="flush")
        return done

    def _flush_timer(self):
        try:
            yield self.sim.timeout(self.flush_timeout_s)
        except Interrupt:
            return
        self._timer = None
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None and self._timer.is_alive:
            self._timer.interrupt("flushing")
        self._timer = None
        batch = self._pending[:self.batch_size]
        del self._pending[:len(batch)]
        self.batches += 1
        if len(batch) == self.batch_size:
            self.full_batches += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("crypto_batches_total", engine=self.name,
                          full=str(len(batch) == self.batch_size).lower())
            telemetry.observe("crypto_batch_fill", len(batch),
                              buckets=tuple(range(1, self.batch_size + 1)),
                              engine=self.name)
        self.sim.process(self._process_batch(batch), name="asym-batch")
        if self._pending:
            # Left-over ops start a fresh wait window.
            if len(self._pending) >= self.batch_size:
                self._flush()
            else:
                self._timer = self.sim.process(self._flush_timer(),
                                               name="flush")

    def _process_batch(self, batch: List[Event]):
        if self.cpu is not None:
            yield from self.cpu.execute(self.costs.asym_accelerated_s)
        else:
            yield self.sim.timeout(self.costs.asym_accelerated_s)
        self.operations += len(batch)
        get_telemetry().inc("crypto_asym_ops_total", amount=len(batch),
                            engine=self.name)
        for done in batch:
            done.succeed(self.sim.now)

    @property
    def fill_ratio(self) -> float:
        """Average batch occupancy (1.0 = always full)."""
        if self.batches == 0:
            return 0.0
        return self.operations / (self.batches * self.batch_size)
