"""Workload identity: a toy-but-honest certificate authority.

The zero-trust layer (§4.1.1) needs real verification semantics — a
certificate must be checkable against its issuer, forgeries and expired
certificates must be rejected — but not real public-key math. We use
HMAC-SHA256 with a per-CA secret as the "signature": deterministic,
unforgeable without the CA secret, and fast.

The paper's key decision reproduced here: certificates (and the private
keys behind them) contain sensitive identity material, so *issuing and
using* them must stay on trusted nodes — authentication cannot be
deployed remotely, which is why Canal keeps mTLS origination in the
on-node proxy.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Certificate", "CertificateAuthority", "PrivateKey"]


@dataclass(frozen=True)
class PrivateKey:
    """An opaque tenant secret; never leaves its owner in plaintext."""

    owner: str
    secret_hex: str

    @classmethod
    def generate(cls, owner: str, seed: str) -> "PrivateKey":
        digest = hashlib.sha256(f"pk:{owner}:{seed}".encode()).hexdigest()
        return cls(owner=owner, secret_hex=digest)


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a workload identity to its tenant."""

    identity: str          # e.g. "spiffe://tenant1/ns/default/sa/cart"
    tenant: str
    issuer: str
    not_after: float       # simulated-time expiry
    signature: str

    def payload(self) -> bytes:
        return f"{self.identity}|{self.tenant}|{self.issuer}|{self.not_after}".encode()


class CertificateAuthority:
    """Issues and verifies workload certificates for one trust domain."""

    def __init__(self, name: str, seed: str = "ca-secret"):
        self.name = name
        self._seed = seed
        self._generation = 0
        self._secret = self._derive_secret()
        self._issued: Dict[str, Certificate] = {}

    def _derive_secret(self) -> bytes:
        material = f"ca:{self.name}:{self._seed}"
        if self._generation:
            material += f":gen{self._generation}"
        return hashlib.sha256(material.encode()).digest()

    def _sign(self, payload: bytes) -> str:
        return hmac.new(self._secret, payload, hashlib.sha256).hexdigest()

    @property
    def generation(self) -> int:
        """How many times the CA secret has been rotated."""
        return self._generation

    def rotate_secret(self) -> int:
        """Rotate to a fresh (deterministically derived) CA secret.

        This is the cert-rotation *failure* fault point: a correct
        rotation re-issues every outstanding certificate under the new
        secret, and skipping that step (as this method alone does)
        leaves every previously issued certificate unverifiable —
        exactly the production incident class where workloads keep
        presenting certs signed by a retired key. Returns the new
        generation number.
        """
        self._generation += 1
        self._secret = self._derive_secret()
        return self._generation

    def reissue_all(self, not_after: float) -> Dict[str, Certificate]:
        """Re-issue every outstanding certificate under the current
        secret (the recovery half of a rotation), valid until
        ``not_after``. Returns identity → fresh certificate."""
        reissued: Dict[str, Certificate] = {}
        for identity in sorted(self._issued):
            cert = self._issued[identity]
            reissued[identity] = self.issue(identity, cert.tenant, not_after)
        return reissued

    def issue(self, identity: str, tenant: str,
              not_after: float) -> Certificate:
        """Issue a certificate valid until simulated time ``not_after``."""
        unsigned = Certificate(identity=identity, tenant=tenant,
                               issuer=self.name, not_after=not_after,
                               signature="")
        cert = Certificate(identity=identity, tenant=tenant,
                           issuer=self.name, not_after=not_after,
                           signature=self._sign(unsigned.payload()))
        self._issued[identity] = cert
        return cert

    def verify(self, cert: Certificate, now: float) -> bool:
        """Check issuer, signature, and expiry."""
        if cert.issuer != self.name:
            return False
        if now > cert.not_after:
            return False
        expected = self._sign(cert.payload())
        return hmac.compare_digest(expected, cert.signature)

    def revoke(self, identity: str) -> None:
        self._issued.pop(identity, None)

    def issued_for(self, identity: str) -> Optional[Certificate]:
        return self._issued.get(identity)

    @property
    def issued_count(self) -> int:
        return len(self._issued)
