"""mTLS handshake orchestration and established-session costing.

A handshake in this model is:

1. hello exchange — one RTT between the two proxies;
2. certificate verification on both sides (against the shared CA);
3. one asymmetric operation per side (key exchange / signing), executed
   on each side's pluggable engine — plain software, a local batch
   accelerator, or a remote key server;
4. finished exchange — one more RTT.

After the handshake, an :class:`MtlsSession` prices traffic with the
symmetric per-byte cost only, matching the paper's observation that
asymmetric crypto dominates setup while symmetric dominates steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simcore import Simulator
from .certs import Certificate, CertificateAuthority
from .primitives import CryptoCosts, DEFAULT_CRYPTO_COSTS

__all__ = ["HandshakeResult", "MtlsSession", "mtls_handshake"]


@dataclass
class HandshakeResult:
    """Outcome of an mTLS negotiation."""

    ok: bool
    latency_s: float
    failure_reason: str = ""
    session: Optional["MtlsSession"] = None


@dataclass
class MtlsSession:
    """An established mTLS channel; prices symmetric crypto per message."""

    client_identity: str
    server_identity: str
    established_at: float
    costs: CryptoCosts = field(default=DEFAULT_CRYPTO_COSTS)
    bytes_protected: int = 0

    def protect_cost(self, nbytes: int) -> float:
        """CPU seconds to encrypt *or* decrypt ``nbytes`` on one side."""
        self.bytes_protected += nbytes
        return self.costs.symmetric_cost(nbytes)


def mtls_handshake(sim: Simulator, ca: CertificateAuthority,
                   client_cert: Certificate, server_cert: Certificate,
                   client_engine, server_engine, rtt_s: float,
                   costs: CryptoCosts = DEFAULT_CRYPTO_COSTS,
                   trace_sink: Optional[list] = None):
    """Process generator performing one mTLS handshake.

    Returns a :class:`HandshakeResult`. Both asymmetric operations run
    concurrently (each side computes while the other does), as in real
    TLS; the handshake completes when the slower side finishes.

    ``trace_sink``, when given, receives one nested span spec (see
    :meth:`repro.obs.trace.TraceHandle.add_tree`) decomposing the
    handshake into hello / asymmetric-crypto / finished sub-spans.
    Handshakes happen at connection setup, before any request trace
    exists, so specs are *deferred*: the first request's trace adopts
    them.
    """
    start = sim.now
    yield sim.timeout(rtt_s)  # ClientHello / ServerHello + certificates
    hello_end = sim.now

    if not ca.verify(server_cert, sim.now):
        if trace_sink is not None:
            trace_sink.append(_handshake_spec(
                client_cert.identity, server_cert.identity, start, sim.now,
                [("tls-hello", start, hello_end)],
                error="server certificate rejected"))
        return HandshakeResult(ok=False, latency_s=sim.now - start,
                               failure_reason="server certificate rejected")
    if not ca.verify(client_cert, sim.now):
        if trace_sink is not None:
            trace_sink.append(_handshake_spec(
                client_cert.identity, server_cert.identity, start, sim.now,
                [("tls-hello", start, hello_end)],
                error="client certificate rejected"))
        return HandshakeResult(ok=False, latency_s=sim.now - start,
                               failure_reason="client certificate rejected")

    both = sim.all_of([client_engine.submit(), server_engine.submit()])
    yield both
    asym_end = sim.now
    yield sim.timeout(rtt_s)  # Finished messages

    if trace_sink is not None:
        trace_sink.append(_handshake_spec(
            client_cert.identity, server_cert.identity, start, sim.now,
            [("tls-hello", start, hello_end),
             ("tls-asym", hello_end, asym_end),
             ("tls-finished", asym_end, sim.now)]))
    session = MtlsSession(client_identity=client_cert.identity,
                          server_identity=server_cert.identity,
                          established_at=sim.now, costs=costs)
    return HandshakeResult(ok=True, latency_s=sim.now - start,
                           session=session)


def _handshake_spec(client_identity: str, server_identity: str,
                    start_s: float, end_s: float, phases,
                    **annotations) -> dict:
    """A nested deferred-span spec for one handshake and its phases."""
    return {
        "name": "tls-handshake", "layer": "tls",
        "start_s": start_s, "end_s": end_s, "source": client_identity,
        "annotations": dict(annotations, server=server_identity),
        "children": [{"name": name, "layer": "tls",
                      "start_s": phase_start, "end_s": phase_end}
                     for name, phase_start, phase_end in phases],
    }
