"""mTLS machinery: cost model, identity, engines, handshake.

The zero-trust layer of the mesh: certificate issuance/verification,
asymmetric-crypto engines (software / batched AVX-512-style), and the
handshake orchestration that composes them. The remote key server that
Canal offloads to lives in ``repro.core.key_server`` (it is part of the
paper's contribution); it implements the same engine interface.
"""

from .accelerator import BatchedAccelerator, SoftwareAsymEngine
from .certs import Certificate, CertificateAuthority, PrivateKey
from .primitives import CryptoCosts, DEFAULT_CRYPTO_COSTS
from .tls import HandshakeResult, MtlsSession, mtls_handshake

__all__ = [
    "BatchedAccelerator",
    "Certificate",
    "CertificateAuthority",
    "CryptoCosts",
    "DEFAULT_CRYPTO_COSTS",
    "HandshakeResult",
    "MtlsSession",
    "PrivateKey",
    "SoftwareAsymEngine",
    "mtls_handshake",
]
