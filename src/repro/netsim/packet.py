"""Packets, flows, and VXLAN encapsulation.

Packets here are simulation records, not byte buffers: they carry the
fields the mesh dataplane dispatches on (five-tuple, L7 request
metadata, tenant VNI) plus a size used for bandwidth/aggregation
accounting. The header stack supports one level of VXLAN encapsulation,
which is all the paper's session-aggregation design needs (§4.4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

__all__ = [
    "FiveTuple",
    "VxlanHeader",
    "Packet",
    "VXLAN_OVERHEAD_BYTES",
    "TCP",
    "UDP",
]

TCP = "tcp"
UDP = "udp"

#: VXLAN adds outer Ethernet + IP + UDP + VXLAN headers.
VXLAN_OVERHEAD_BYTES = 50


@dataclass(frozen=True)
class FiveTuple:
    """The classic connection identifier."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = TCP

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise ValueError(f"port out of range: {port}")

    def reversed(self) -> "FiveTuple":
        """The return-direction five-tuple."""
        return FiveTuple(self.dst_ip, self.dst_port,
                         self.src_ip, self.src_port, self.protocol)

    def flow_hash(self, salt: int = 0) -> int:
        """Deterministic 32-bit hash, stable across runs and processes.

        ECMP routers and Beamer bucket tables hash on this; determinism
        matters so that tests of session consistency are exact.
        """
        key = (f"{self.src_ip}:{self.src_port}>"
               f"{self.dst_ip}:{self.dst_port}/{self.protocol}#{salt}")
        return zlib.crc32(key.encode("ascii"))


@dataclass(frozen=True)
class VxlanHeader:
    """Outer VXLAN encapsulation header."""

    vni: int
    outer_src_ip: str
    outer_dst_ip: str
    outer_src_port: int = 4789

    def __post_init__(self) -> None:
        if not 0 <= self.vni < (1 << 24):
            raise ValueError(f"VNI out of 24-bit range: {self.vni}")


@dataclass
class Packet:
    """A simulated packet/request unit.

    ``meta`` carries L7 attributes (url, headers, method) and dataplane
    annotations (e.g. the global service ID stamped by the vSwitch).
    """

    five_tuple: FiveTuple
    size_bytes: int
    meta: Dict[str, Any] = field(default_factory=dict)
    vxlan: Optional[VxlanHeader] = None
    is_syn: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative packet size: {self.size_bytes}")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including any VXLAN overhead."""
        if self.vxlan is not None:
            return self.size_bytes + VXLAN_OVERHEAD_BYTES
        return self.size_bytes

    def encapsulate(self, header: VxlanHeader) -> "Packet":
        """Return a copy wrapped in a VXLAN outer header."""
        if self.vxlan is not None:
            raise ValueError("packet is already encapsulated")
        return replace(self, vxlan=header)

    def decapsulate(self) -> "Packet":
        """Return a copy with the VXLAN outer header removed."""
        if self.vxlan is None:
            raise ValueError("packet is not encapsulated")
        return replace(self, vxlan=None)

    def outer_five_tuple(self) -> FiveTuple:
        """The five-tuple the underlay sees (tunnel endpoints)."""
        if self.vxlan is None:
            return self.five_tuple
        return FiveTuple(self.vxlan.outer_src_ip, self.vxlan.outer_src_port,
                         self.vxlan.outer_dst_ip, 4789, UDP)
