"""Bandwidth-limited links for control-plane (southbound) transfers.

The paper's southbound-overhead analysis (§2.1) hinges on serialized
configuration pushes saturating a shared link (their customer's 100 Mbps
VPN peaked at 120 Mbps of update traffic). A :class:`Link` serializes
transfers through a capacity-1 resource, so concurrent pushes queue and
completion time grows with total bytes — exactly the effect measured in
Figs 4, 14, and 15.
"""

from __future__ import annotations

from ..simcore import Resource, Simulator

__all__ = ["Link"]


class Link:
    """A point-to-point link with bandwidth and propagation latency."""

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 latency_s: float = 0.0, name: str = "link"):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name
        self.bytes_carried = 0
        self._channel = Resource(sim, capacity=1)

    def serialization_delay(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return (nbytes * 8.0) / self.bandwidth_bps

    def transfer(self, nbytes: int):
        """Process generator: complete when ``nbytes`` have been delivered.

        Transfers share the link in FIFO order (store-and-forward), which
        models a congested southbound channel without per-packet detail.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        with self._channel.request() as claim:
            yield claim
            yield self.sim.timeout(self.serialization_delay(nbytes))
        self.bytes_carried += nbytes
        yield self.sim.timeout(self.latency_s)

    @property
    def queue_length(self) -> int:
        """Transfers currently waiting behind the head of line."""
        return self._channel.queue_length
