"""Virtual-network addressing: VPCs with (deliberately) overlapping space.

A core premise of the paper's multi-tenant gateway (§4.2) is that tenant
VPCs may use overlapping private address ranges, so inner IP headers
alone cannot identify a tenant's service — a VXLAN network identifier
(VNI) is required. This module provides just enough IPv4 machinery to
exercise that: CIDR blocks, per-VPC sequential allocators, and VPCs that
happily hand out the same 10.x addresses to different tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = ["ip_to_int", "int_to_ip", "Cidr", "Vpc"]


def ip_to_int(address: str) -> int:
    """Dotted-quad string to 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer to dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Cidr:
    """An IPv4 CIDR block, e.g. ``10.0.0.0/16``."""

    network: str
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"invalid prefix length {self.prefix}")
        base = ip_to_int(self.network)
        if base & (self.hostmask()):
            raise ValueError(
                f"{self.network}/{self.prefix} has host bits set")

    @classmethod
    def parse(cls, text: str) -> "Cidr":
        network, _, prefix = text.partition("/")
        if not prefix:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(network, int(prefix))

    def hostmask(self) -> int:
        return (1 << (32 - self.prefix)) - 1

    def netmask(self) -> int:
        return 0xFFFFFFFF ^ self.hostmask()

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    def contains(self, address: str) -> bool:
        return (ip_to_int(address) & self.netmask()) == ip_to_int(self.network)

    def hosts(self) -> Iterator[str]:
        """Usable host addresses (network and broadcast excluded)."""
        base = ip_to_int(self.network)
        for offset in range(1, self.size - 1):
            yield int_to_ip(base + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix}"


@dataclass
class Vpc:
    """A tenant's virtual private cloud: an isolated address space.

    Two VPCs may be built on the same CIDR — that overlap is exactly what
    the gateway's VNI→service-ID mapping must disambiguate.
    """

    tenant: str
    name: str
    cidr: Cidr
    vni: int
    _next_offset: int = field(default=1, repr=False)
    _allocated: Dict[str, str] = field(default_factory=dict, repr=False)

    def allocate(self, owner: str) -> str:
        """Hand out the next free address, tagged with its owner."""
        if self._next_offset >= self.cidr.size - 1:
            raise RuntimeError(f"VPC {self.name} exhausted {self.cidr}")
        address = int_to_ip(ip_to_int(self.cidr.network) + self._next_offset)
        self._next_offset += 1
        self._allocated[address] = owner
        return address

    def owner_of(self, address: str) -> Optional[str]:
        """Who an address was allocated to, or None if unallocated."""
        return self._allocated.get(address)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)
