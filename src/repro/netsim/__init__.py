"""Network substrate: addressing, packets, topology, ECMP, vSwitch, DNS.

Provides the virtual-network world the meshes run in: multi-AZ
topologies with a calibrated latency model, VPCs with overlapping
address space, VXLAN encapsulation, stateless ECMP routing, the
VNI→service-ID stamping vSwitch, and AZ-aware DNS.
"""

from .addressing import Cidr, Vpc, int_to_ip, ip_to_int
from .dns import AzAwareResolver, DnsRecord, ResolutionError
from .ecmp import EcmpRouter
from .link import Link
from .packet import (
    FiveTuple,
    Packet,
    TCP,
    UDP,
    VXLAN_OVERHEAD_BYTES,
    VxlanHeader,
)
from .topology import (
    AvailabilityZone,
    HostNode,
    LatencyModel,
    NetLocation,
    Region,
    Topology,
)
from .vswitch import SERVICE_ID_META_KEY, ServiceIdMapper, VSwitch

__all__ = [
    "AvailabilityZone",
    "AzAwareResolver",
    "Cidr",
    "DnsRecord",
    "EcmpRouter",
    "FiveTuple",
    "HostNode",
    "LatencyModel",
    "Link",
    "NetLocation",
    "Packet",
    "Region",
    "ResolutionError",
    "SERVICE_ID_META_KEY",
    "ServiceIdMapper",
    "TCP",
    "Topology",
    "UDP",
    "VSwitch",
    "VXLAN_OVERHEAD_BYTES",
    "Vpc",
    "VxlanHeader",
    "int_to_ip",
    "ip_to_int",
]
