"""Regions, availability zones, nodes, and the latency model between them.

The paper's latency anchors (Appendix A): RTT within an AZ is well under
1 ms, cross-AZ around 1–2 ms, and cross-region communication expensive
enough that customers buy VPN bandwidth for it. All mesh paths are
priced with :class:`LatencyModel` so experiments share one set of
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["NetLocation", "LatencyModel", "Region", "AvailabilityZone",
           "HostNode", "Topology"]


@dataclass(frozen=True)
class NetLocation:
    """Where an endpoint lives, at the granularity latency cares about."""

    region: str
    az: str
    node: str

    def same_node(self, other: "NetLocation") -> bool:
        return self == other

    def same_az(self, other: "NetLocation") -> bool:
        return self.region == other.region and self.az == other.az

    def same_region(self, other: "NetLocation") -> bool:
        return self.region == other.region


@dataclass(frozen=True)
class LatencyModel:
    """One-way network latency by topological distance, in seconds."""

    intra_node: float = 50e-6
    intra_az: float = 250e-6
    cross_az: float = 1e-3
    cross_region: float = 30e-3

    def one_way(self, src: NetLocation, dst: NetLocation) -> float:
        if src.same_node(dst):
            return self.intra_node
        if src.same_az(dst):
            return self.intra_az
        if src.same_region(dst):
            return self.cross_az
        return self.cross_region

    def rtt(self, src: NetLocation, dst: NetLocation) -> float:
        return 2.0 * self.one_way(src, dst)


@dataclass
class HostNode:
    """A physical host (or hypervisor slot) inside an AZ."""

    name: str
    az: "AvailabilityZone"

    @property
    def location(self) -> NetLocation:
        return NetLocation(self.az.region.name, self.az.name, self.name)


@dataclass
class AvailabilityZone:
    """A failure domain inside a region."""

    name: str
    region: "Region"
    nodes: List[HostNode] = field(default_factory=list)
    #: Whether this AZ's host CPUs support crypto acceleration
    #: (QAT/AVX-512). The paper notes <5 % of AZs lack it (§4.1.3).
    has_crypto_acceleration: bool = True

    def add_node(self, name: str) -> HostNode:
        node = HostNode(name, self)
        self.nodes.append(node)
        return node

    @property
    def location(self) -> NetLocation:
        """A representative location for AZ-level services."""
        return NetLocation(self.region.name, self.name, f"{self.name}-infra")


@dataclass
class Region:
    """A cloud region: a set of AZs."""

    name: str
    azs: List[AvailabilityZone] = field(default_factory=list)

    def add_az(self, name: str,
               has_crypto_acceleration: bool = True) -> AvailabilityZone:
        az = AvailabilityZone(name, self,
                              has_crypto_acceleration=has_crypto_acceleration)
        self.azs.append(az)
        return az


class Topology:
    """The world: regions, AZs, nodes, and the latency model among them."""

    def __init__(self, latency: Optional[LatencyModel] = None):
        self.latency = latency or LatencyModel()
        self.regions: Dict[str, Region] = {}

    def add_region(self, name: str) -> Region:
        if name in self.regions:
            raise ValueError(f"duplicate region {name!r}")
        region = Region(name)
        self.regions[name] = region
        return region

    def all_azs(self) -> List[AvailabilityZone]:
        return [az for region in self.regions.values() for az in region.azs]

    def all_nodes(self) -> List[HostNode]:
        return [node for az in self.all_azs() for node in az.nodes]

    @classmethod
    def single_az_testbed(cls, worker_nodes: int = 2) -> "Topology":
        """The paper's §5.1 testbed: one master + N workers in one AZ."""
        topo = cls()
        region = topo.add_region("region1")
        az = region.add_az("az1")
        az.add_node("master")
        for index in range(worker_nodes):
            az.add_node(f"worker{index + 1}")
        return topo

    @classmethod
    def multi_az_region(cls, azs: int = 3, nodes_per_az: int = 4,
                        region_name: str = "region1") -> "Topology":
        """A production-style region for gateway/cloud-infra experiments."""
        topo = cls()
        region = topo.add_region(region_name)
        for az_index in range(azs):
            az = region.add_az(f"az{az_index + 1}")
            for node_index in range(nodes_per_az):
                az.add_node(f"az{az_index + 1}-node{node_index + 1}")
        return topo
