"""DNS with AZ-local preference — Canal's customized resolution (§4.2).

"We have customized the DNS resolution logic to ensure requests are
prioritized to be resolved to available backends within the local AZ for
optimal latency. Only if all backends in the local AZ are unavailable
will the requests be resolved to other AZs."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DnsRecord", "AzAwareResolver", "ResolutionError"]


class ResolutionError(LookupError):
    """No healthy endpoint exists for the requested name."""


@dataclass
class DnsRecord:
    """One resolvable endpoint of a name."""

    address: str
    az: str
    healthy: bool = True


@dataclass
class AzAwareResolver:
    """Resolver that prefers healthy endpoints in the caller's AZ."""

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    _records: Dict[str, List[DnsRecord]] = field(default_factory=dict)

    def register(self, name: str, address: str, az: str) -> DnsRecord:
        record = DnsRecord(address, az)
        self._records.setdefault(name, []).append(record)
        return record

    def deregister(self, name: str, address: str) -> None:
        records = self._records.get(name, [])
        self._records[name] = [r for r in records if r.address != address]

    def set_health(self, name: str, address: str, healthy: bool) -> None:
        for record in self._records.get(name, []):
            if record.address == address:
                record.healthy = healthy
                return
        raise KeyError(f"{address} not registered under {name!r}")

    def endpoints(self, name: str) -> List[DnsRecord]:
        return list(self._records.get(name, []))

    def resolve(self, name: str, client_az: str) -> DnsRecord:
        """Resolve ``name`` for a client in ``client_az``.

        Healthy local-AZ endpoints win; otherwise any healthy endpoint;
        otherwise :class:`ResolutionError`. Selection within a tier is
        uniform random (the load-spreading behaviour of round-robin DNS).
        """
        records = self._records.get(name, [])
        healthy = [r for r in records if r.healthy]
        if not healthy:
            raise ResolutionError(f"no healthy endpoints for {name!r}")
        local = [r for r in healthy if r.az == client_az]
        pool = local if local else healthy
        return self.rng.choice(pool)
