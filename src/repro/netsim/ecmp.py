"""ECMP: stateless equal-cost multi-path hashing at the router.

The paper's LB disaggregation (§4.4) reuses the ECMP ability of the
router in front of the replicas for load distribution. The crucial
behaviour reproduced here: hashing is *stateless* — when the next-hop
list changes, flows may rehash to different replicas, breaking session
consistency. The Beamer-style redirector (``repro.core.redirector``)
exists precisely to repair that.
"""

from __future__ import annotations

from typing import Generic, List, Sequence, TypeVar

from .packet import FiveTuple

__all__ = ["EcmpRouter"]

T = TypeVar("T")


class EcmpRouter(Generic[T]):
    """Hash-mod-N next-hop selection over a mutable replica list."""

    def __init__(self, next_hops: Sequence[T] = (), salt: int = 0):
        self._next_hops: List[T] = list(next_hops)
        self.salt = salt

    @property
    def next_hops(self) -> List[T]:
        return list(self._next_hops)

    def __len__(self) -> int:
        return len(self._next_hops)

    def add_next_hop(self, hop: T) -> None:
        if hop in self._next_hops:
            raise ValueError(f"duplicate next hop {hop!r}")
        self._next_hops.append(hop)

    def remove_next_hop(self, hop: T) -> None:
        self._next_hops.remove(hop)

    def select(self, flow: FiveTuple) -> T:
        """Pick the next hop for a flow. Pure function of flow and list."""
        if not self._next_hops:
            raise RuntimeError("ECMP router has no next hops")
        index = flow.flow_hash(self.salt) % len(self._next_hops)
        return self._next_hops[index]

    def would_move(self, flows: Sequence[FiveTuple],
                   hypothetical_hops: Sequence[T]) -> int:
        """How many of ``flows`` would land differently under a new list.

        Used in tests/benchmarks to quantify the consistency breakage the
        redirector must absorb.
        """
        other = EcmpRouter(hypothetical_hops, salt=self.salt)
        return sum(1 for flow in flows
                   if self.select(flow) != other.select(flow))
