"""The vSwitch under gateway VMs: VXLAN stripping + service-ID stamping.

From §4.2: the mesh gateway runs in VMs above the vSwitch, and the
vSwitch removes the outer VXLAN header before packets reach the VM — so
the VNI (the only tenant discriminator, given overlapping VPC address
spaces) would be lost. Canal's fix, reproduced here: before stripping,
map the VNI (plus inner destination) to a *globally unique service ID*
and attach it to the inner header metadata.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .packet import Packet

__all__ = ["ServiceIdMapper", "VSwitch", "SERVICE_ID_META_KEY"]

SERVICE_ID_META_KEY = "service_id"


class ServiceIdMapper:
    """Registry of (VNI, inner service address) → global service ID."""

    def __init__(self):
        self._table: Dict[Tuple[int, str], int] = {}
        self._next_id = 1
        self._names: Dict[int, str] = {}

    def register(self, vni: int, inner_ip: str,
                 service_name: str = "") -> int:
        """Assign (or return the existing) global ID for a tenant service."""
        key = (vni, inner_ip)
        if key not in self._table:
            self._table[key] = self._next_id
            self._names[self._table[key]] = service_name or f"svc-{self._next_id}"
            self._next_id += 1
        return self._table[key]

    def lookup(self, vni: int, inner_ip: str) -> Optional[int]:
        return self._table.get((vni, inner_ip))

    def name_of(self, service_id: int) -> str:
        return self._names.get(service_id, f"svc-{service_id}")

    def __len__(self) -> int:
        return len(self._table)


class VSwitch:
    """Per-host virtual switch in front of gateway VMs."""

    def __init__(self, mapper: ServiceIdMapper):
        self.mapper = mapper
        self.delivered = 0
        self.dropped_unknown_service = 0

    def deliver_to_vm(self, packet: Packet) -> Optional[Packet]:
        """Strip VXLAN, stamping the service ID into the inner metadata.

        Returns the inner packet, or ``None`` when the (VNI, dst) pair is
        unknown — an unregistered tenant service must not reach any VM.
        Packets that arrive unencapsulated (e.g. intra-gateway traffic)
        pass through untouched.
        """
        if packet.vxlan is None:
            self.delivered += 1
            return packet
        service_id = self.mapper.lookup(packet.vxlan.vni,
                                        packet.five_tuple.dst_ip)
        if service_id is None:
            self.dropped_unknown_service += 1
            return None
        inner = packet.decapsulate()
        inner.meta[SERVICE_ID_META_KEY] = service_id
        self.delivered += 1
        return inner
