"""Workload drivers and synthetic production traces."""

from .generators import (
    ClosedLoopDriver,
    LoadReport,
    OpenLoopDriver,
    ShortFlowDriver,
    default_request_factory,
)
from .traces import (
    attack_trace,
    diurnal_profile,
    flat_profile,
    growth_trend,
    production_latency_samples,
    surge_trace,
    update_frequency_for_cluster,
)

__all__ = [
    "ClosedLoopDriver",
    "LoadReport",
    "OpenLoopDriver",
    "ShortFlowDriver",
    "attack_trace",
    "default_request_factory",
    "diurnal_profile",
    "flat_profile",
    "growth_trend",
    "production_latency_samples",
    "surge_trace",
    "update_frequency_for_cluster",
]
