"""Load generators: wrk-style and Netperf-style drivers (§5.1).

Two driver shapes cover every testbed experiment:

* :class:`OpenLoopDriver` — requests arrive at a target rate regardless
  of completions (how wrk's fixed-RPS mode stresses a saturating
  system; used for the latency-vs-RPS sweeps, Fig 11);
* :class:`ClosedLoopDriver` — N connections each issue the next request
  after the previous response (Fig 10's 1-thread/1-connection probe).

Both record latency and status into summaries; ``ShortFlowDriver``
opens a fresh connection per request for the HTTPS handshake
experiments (Figs 25, 27, 28).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..k8s import Pod
from ..mesh.base import ServiceMesh
from ..mesh.http import HttpRequest
from ..simcore import Simulator, Summary

__all__ = ["LoadReport", "OpenLoopDriver", "ClosedLoopDriver",
           "ShortFlowDriver", "default_request_factory"]


def default_request_factory() -> HttpRequest:
    """The testbed's wrk-style request: small body, 1 KB response."""
    return HttpRequest(method="GET", path="/", body_bytes=128,
                       response_bytes=1024)


@dataclass
class LoadReport:
    """Aggregated outcome of one driver run."""

    latency: Summary = field(default_factory=lambda: Summary("latency"))
    statuses: List[int] = field(default_factory=list)
    offered: int = 0
    completed: int = 0
    duration_s: float = 0.0

    @property
    def ok_count(self) -> int:
        return sum(1 for status in self.statuses if 200 <= status < 400)

    @property
    def error_count(self) -> int:
        return len(self.statuses) - self.ok_count

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s


class _DriverBase:
    def __init__(self, sim: Simulator, mesh: ServiceMesh, client_pod: Pod,
                 service: str,
                 request_factory: Callable[[], HttpRequest] = None):
        self.sim = sim
        self.mesh = mesh
        self.client_pod = client_pod
        self.service = service
        self.request_factory = request_factory or default_request_factory
        self.report = LoadReport()

    def _one_request(self, connection):
        request = self.request_factory()
        response = yield self.sim.process(
            self.mesh.request(connection, request))
        self.report.completed += 1
        self.report.statuses.append(response.status)
        self.report.latency.add(response.latency_s)
        return response


class OpenLoopDriver(_DriverBase):
    """Fixed-rate arrivals over a pool of persistent connections."""

    def __init__(self, sim: Simulator, mesh: ServiceMesh, client_pod: Pod,
                 service: str, rps: float, duration_s: float,
                 connections: int = 100, poisson: bool = True,
                 request_factory: Callable[[], HttpRequest] = None):
        super().__init__(sim, mesh, client_pod, service, request_factory)
        if rps <= 0 or duration_s <= 0:
            raise ValueError("rps and duration must be positive")
        self.rps = rps
        self.duration_s = duration_s
        self.connections = connections
        self.poisson = poisson

    def run(self):
        """Process generator: open connections, offer load, finish."""
        pool = []
        for _ in range(self.connections):
            connection = yield self.sim.process(
                self.mesh.open_connection(self.client_pod, self.service))
            pool.append(connection)
        start = self.sim.now
        end = start + self.duration_s
        in_flight = []
        index = 0
        while self.sim.now < end:
            if self.poisson:
                gap = self.sim.rng.expovariate(self.rps)
            else:
                gap = 1.0 / self.rps
            yield self.sim.timeout(gap)
            if self.sim.now >= end:
                break
            connection = pool[index % len(pool)]
            index += 1
            self.report.offered += 1
            in_flight.append(self.sim.process(
                self._one_request(connection), name="req"))
        if in_flight:
            yield self.sim.all_of(in_flight)
        self.report.duration_s = self.sim.now - start
        return self.report


class ClosedLoopDriver(_DriverBase):
    """N connections, each sending the next request after the response.

    ``think_time_s`` throttles each connection (Fig 10 uses 1 request
    per second on one connection).
    """

    def __init__(self, sim: Simulator, mesh: ServiceMesh, client_pod: Pod,
                 service: str, connections: int = 1,
                 requests_per_connection: int = 100,
                 think_time_s: float = 0.0,
                 request_factory: Callable[[], HttpRequest] = None):
        super().__init__(sim, mesh, client_pod, service, request_factory)
        self.connections = connections
        self.requests_per_connection = requests_per_connection
        self.think_time_s = think_time_s

    def run(self):
        start = self.sim.now
        workers = [self.sim.process(self._worker(), name=f"conn-{i}")
                   for i in range(self.connections)]
        yield self.sim.all_of(workers)
        self.report.duration_s = self.sim.now - start
        return self.report

    def _worker(self):
        connection = yield self.sim.process(
            self.mesh.open_connection(self.client_pod, self.service))
        for _ in range(self.requests_per_connection):
            self.report.offered += 1
            yield self.sim.process(self._one_request(connection))
            if self.think_time_s > 0:
                yield self.sim.timeout(self.think_time_s)


class ShortFlowDriver(_DriverBase):
    """A new connection (and handshake) per request — HTTPS short flows."""

    def __init__(self, sim: Simulator, mesh: ServiceMesh, client_pod: Pod,
                 service: str, rps: float, duration_s: float,
                 request_factory: Callable[[], HttpRequest] = None):
        super().__init__(sim, mesh, client_pod, service, request_factory)
        if rps <= 0 or duration_s <= 0:
            raise ValueError("rps and duration must be positive")
        self.rps = rps
        self.duration_s = duration_s

    def run(self):
        start = self.sim.now
        end = start + self.duration_s
        in_flight = []
        while self.sim.now < end:
            yield self.sim.timeout(self.sim.rng.expovariate(self.rps))
            if self.sim.now >= end:
                break
            self.report.offered += 1
            in_flight.append(self.sim.process(self._flow(), name="flow"))
        if in_flight:
            yield self.sim.all_of(in_flight)
        self.report.duration_s = self.sim.now - start
        return self.report

    def _flow(self):
        opened_at = self.sim.now
        connection = yield self.sim.process(
            self.mesh.open_connection(self.client_pod, self.service))
        request = self.request_factory()
        response = yield self.sim.process(
            self.mesh.request(connection, request))
        self.report.completed += 1
        self.report.statuses.append(response.status)
        # Short-flow latency includes the handshake.
        self.report.latency.add(self.sim.now - opened_at)
