"""Synthetic production traces.

The production-scale experiments (Figs 3, 16–20, 24, Tables 2/6) run on
trace shapes rather than live traffic: diurnal sinusoids with noise,
sudden surges (noisy neighbors, hotspot events), attack signatures
(sessions without RPS), and multi-year growth trends. Generators here
are deterministic given their RNG.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from ..core.phase import DailyProfile

__all__ = [
    "diurnal_profile",
    "flat_profile",
    "surge_trace",
    "attack_trace",
    "growth_trend",
    "update_frequency_for_cluster",
    "production_latency_samples",
]


def diurnal_profile(rng: random.Random, base_rps: float,
                    peak_rps: float, samples: int = 96,
                    peak_position: float = 0.5,
                    noise: float = 0.05) -> DailyProfile:
    """A 24 h single-peak profile; ``peak_position`` ∈ [0, 1) shifts the
    phase (two profiles with equal positions are "in phase")."""
    if peak_rps < base_rps:
        raise ValueError("peak must be >= base")
    values = []
    for index in range(samples):
        phase = 2.0 * math.pi * (index / samples - peak_position)
        level = base_rps + (peak_rps - base_rps) * (1 + math.cos(phase)) / 2.0
        level *= 1.0 + rng.uniform(-noise, noise)
        values.append(max(0.0, level))
    return DailyProfile(tuple(values))


def flat_profile(rng: random.Random, rps: float, samples: int = 96,
                 noise: float = 0.05) -> DailyProfile:
    """A flat (phase-free) profile."""
    values = [max(0.0, rps * (1.0 + rng.uniform(-noise, noise)))
              for _ in range(samples)]
    return DailyProfile(tuple(values))


def surge_trace(rng: random.Random, base_rps: float, surge_rps: float,
                duration_s: int, surge_start_s: int,
                ramp_s: int = 10, noise: float = 0.03) -> List[float]:
    """Per-second RPS with a sudden surge (the Fig 16 noisy neighbor)."""
    trace = []
    for t in range(duration_s):
        if t < surge_start_s:
            level = base_rps
        elif t < surge_start_s + ramp_s:
            level = base_rps + (surge_rps - base_rps) * (
                (t - surge_start_s) / ramp_s)
        else:
            level = surge_rps
        trace.append(max(0.0, level * (1.0 + rng.uniform(-noise, noise))))
    return trace


def attack_trace(rng: random.Random, base_rps: float, base_sessions: float,
                 duration_s: int, attack_start_s: int,
                 session_multiplier: float = 6.0
                 ) -> Tuple[List[float], List[float]]:
    """(rps, sessions) per second: sessions surge, RPS barely moves —
    the §6.2 Case #1 signature."""
    rps, sessions = [], []
    for t in range(duration_s):
        r = base_rps * (1.0 + rng.uniform(-0.03, 0.03))
        s = base_sessions
        if t >= attack_start_s:
            s = base_sessions * session_multiplier
            r *= 1.05  # attacks open sessions, not real requests
        rps.append(r)
        sessions.append(s * (1.0 + rng.uniform(-0.02, 0.02)))
    return rps, sessions


def growth_trend(rng: random.Random, start_value: float,
                 end_value: float, points: int,
                 noise: float = 0.04) -> List[float]:
    """A multi-period growth series (Fig 3: sidecars ~2× over 2 years)."""
    if points < 2:
        raise ValueError("need at least 2 points")
    series = []
    for index in range(points):
        fraction = index / (points - 1)
        level = start_value * (end_value / start_value) ** fraction
        series.append(level * (1.0 + rng.uniform(-noise, noise)))
    return series


def update_frequency_for_cluster(rng: random.Random, pods: int,
                                 pods_per_service: float = 2.0,
                                 base_rate_per_min: float = 0.0035,
                                 exponent: float = 1.35) -> float:
    """Expected config updates/min for a cluster (Table 2's relation).

    Larger clusters host more services *and* more actively managed
    ones, so the aggregate update rate grows superlinearly in the
    service count (Table 2: ~3/min at 300 pods but ~55/min at 2250 —
    an exponent of ~1.35 over the service count fits the bands).
    """
    if pods < 1:
        raise ValueError("cluster needs pods")
    services = max(1.0, pods / pods_per_service)
    rate = base_rate_per_min * services ** exponent
    return rate * (1.0 + rng.uniform(-0.15, 0.15))


def production_latency_samples(rng: random.Random, count: int = 10_000
                               ) -> List[float]:
    """End-to-end latencies matching Fig 24's bimodal distribution.

    The majority of requests land in 40–50 ms and 100–200 ms; a mixture
    of two lognormals reproduces those two mass clusters.
    """
    samples = []
    for _ in range(count):
        if rng.random() < 0.55:
            samples.append(rng.lognormvariate(math.log(45e-3), 0.12))
        else:
            samples.append(rng.lognormvariate(math.log(140e-3), 0.25))
    return samples
