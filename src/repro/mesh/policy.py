"""Zero-trust policy objects: authorization rules and rate limits.

Authorization is the one zero-trust feature that *can* move to the
remote gateway (§4.1.1): its inputs travel in the packets and its logic
is a table lookup. Encryption/authentication cannot (they need local
secrets), which is why they stay in the on-node proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Set, Tuple

from .http import HttpRequest

__all__ = ["AuthorizationPolicy", "AuthorizationTable", "RateLimiter"]


@dataclass(frozen=True)
class AuthorizationPolicy:
    """ALLOW rule: which identities may call a service, with which methods."""

    service: str
    allowed_identities: Tuple[str, ...]
    allowed_methods: Tuple[str, ...] = ("GET", "POST", "PUT", "DELETE")
    name: str = ""

    def permits(self, request: HttpRequest) -> bool:
        if request.source_identity not in self.allowed_identities:
            return False
        return request.method in self.allowed_methods


class AuthorizationTable:
    """All L7 security rules for a mesh; default-deny once a service has rules."""

    def __init__(self):
        self._policies: dict = {}

    def add(self, policy: AuthorizationPolicy) -> None:
        self._policies.setdefault(policy.service, []).append(policy)

    def services_with_rules(self) -> Set[str]:
        return set(self._policies)

    def check(self, service: str, request: HttpRequest) -> bool:
        """True if allowed. Services without rules are open (K8s default)."""
        policies = self._policies.get(service)
        if not policies:
            return True
        return any(policy.permits(request) for policy in policies)

    def config_size_bytes(self) -> int:
        size = 0
        for policies in self._policies.values():
            for policy in policies:
                size += 200 + 40 * len(policy.allowed_identities)
        return size


class RateLimiter:
    """Token-bucket rate limiting (the gateway's early-drop throttle).

    The paper drops over-quota packets "when they reach the redirector,
    rather than waiting until they reach the application layer" (§6.2);
    callers place this object at the appropriate path stage.
    """

    def __init__(self, rate_per_s: float, burst: Optional[float] = None):
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self.burst = burst if burst is not None else rate_per_s
        self._tokens = self.burst
        self._last_refill = 0.0
        self.admitted = 0
        self.dropped = 0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Admit or drop one request arriving at simulated time ``now``."""
        if now < self._last_refill:
            raise ValueError("time went backwards in rate limiter")
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate_per_s)
        self._last_refill = now
        if self._tokens >= cost:
            self._tokens -= cost
            self.admitted += 1
            return True
        self.dropped += 1
        return False

    def set_rate(self, rate_per_s: float) -> None:
        """Adjust the limit (gradual throttle relaxation, §6.2 Case #3)."""
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self.burst = max(self.burst, rate_per_s)
