"""The common service-mesh interface all three architectures implement.

A mesh attaches to a (single-tenant) K8s cluster, and then serves the
two dataplane verbs the workload drivers use:

* ``open_connection(client_pod, service)`` — a process that establishes
  a (possibly mTLS) connection along the architecture's path;
* ``request(connection, http_request)`` — a process that carries one
  request/response exchange and returns an :class:`HttpResponse`.

It also exposes its CPU tiers split into *user-cluster* and *infra*
resources — the split that the paper's intrusion/cost analysis (Figs 5,
13) is all about.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from ..k8s import Cluster, Pod
from ..obs.runtime import get_telemetry
from ..simcore import Simulator, Summary
from .costs import DEFAULT_COSTS, MeshCostModel
from .http import HttpRequest, HttpResponse, RouteTable
from .policy import AuthorizationTable
from .proxy import Connection, ProxyTier

__all__ = ["ServiceMesh", "MeshError"]


class MeshError(RuntimeError):
    """Dataplane failure inside a mesh path."""


class ServiceMesh(abc.ABC):
    """Base class for Istio-style, Ambient-style, and Canal meshes."""

    name: str = "mesh"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS):
        self.sim = sim
        self.costs = costs
        self.cluster: Optional[Cluster] = None
        self.route_tables: Dict[str, RouteTable] = {}
        self.authorization = AuthorizationTable()
        self.latency = Summary(f"{self!r}-latency")
        self.errors = Summary(f"{self!r}-errors")

    # -- lifecycle ---------------------------------------------------------
    @abc.abstractmethod
    def attach(self, cluster: Cluster) -> None:
        """Bind to a cluster and set up the architecture's proxies."""

    # -- dataplane -----------------------------------------------------------
    @abc.abstractmethod
    def open_connection(self, client_pod: Pod, service: str):
        """Process generator → :class:`Connection` (handshake included)."""

    @abc.abstractmethod
    def request(self, connection: Connection, request: HttpRequest):
        """Process generator → :class:`HttpResponse`."""

    # -- observability -------------------------------------------------------
    def observe_request(self, status: int, latency_s: float,
                        service: str = "") -> None:
        """Record one completed exchange (any status) at the mesh level.

        Successful requests keep feeding the local latency summary the
        experiments read; every outcome additionally lands in the
        ambient telemetry registry with per-mesh/per-result labels.
        """
        if status == 200:
            self.latency.add(latency_s)
        telemetry = get_telemetry()
        if telemetry.enabled:
            result = "ok" if status == 200 else str(status)
            telemetry.inc("mesh_requests_total", mesh=self.name,
                          result=result, service=service)
            telemetry.observe("mesh_request_latency_seconds", latency_s,
                              mesh=self.name)

    # -- resource accounting ---------------------------------------------------
    @abc.abstractmethod
    def user_tiers(self) -> List[ProxyTier]:
        """Proxy tiers consuming the user's purchased cluster resources."""

    def infra_tiers(self) -> List[ProxyTier]:
        """Proxy tiers on provider infrastructure (Canal's gateway)."""
        return []

    def user_cpu_seconds(self) -> float:
        """Total user-cluster proxy CPU consumed so far."""
        return sum(tier.cpu.busy_time() for tier in self.user_tiers())

    def infra_cpu_seconds(self) -> float:
        return sum(tier.cpu.busy_time() for tier in self.infra_tiers())

    # -- configuration ------------------------------------------------------------
    def set_route_table(self, table: RouteTable) -> None:
        self.route_tables[table.service] = table

    def pick_endpoint(self, service: str,
                      request: Optional[HttpRequest] = None) -> Pod:
        """Resolve a service (through its route table, if any) to a pod."""
        if self.cluster is None:
            raise MeshError(f"{self.name} is not attached to a cluster")
        if service not in self.cluster.services:
            raise MeshError(f"unknown service {service!r}")
        endpoints = self.cluster.endpoints(service)
        table = self.route_tables.get(service)
        if table is not None and request is not None:
            subset = table.route(request, self.sim.rng)
            subset_pods = [p for p in endpoints
                           if p.labels.get("version", "") == subset]
            if subset_pods:
                endpoints = subset_pods
        if not endpoints:
            raise MeshError(f"service {service!r} has no running endpoints")
        return self.sim.rng.choice(endpoints)

    def authorize(self, service: str, request: HttpRequest) -> bool:
        return self.authorization.check(service, request)

    def _require_cluster(self) -> Cluster:
        if self.cluster is None:
            raise MeshError(f"{self.name} is not attached to a cluster")
        return self.cluster
