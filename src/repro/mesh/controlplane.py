"""Control planes: configuration building and southbound distribution.

The paper's control-plane analysis (§2.1) reduces to counting:

* Istio builds an O(N)-sized full configuration *per sidecar* and pushes
  it to all N sidecars on any update — O(N²) southbound bytes, with
  build CPU proportional to cluster size and push completion growing
  with cluster size (Fig 4).
* Ambient pushes to O(node + service) proxies.
* Canal pushes to the centralized gateway (plus rare, tiny identity
  configs to on-node proxies).

Scope factors calibrate how much of the full config each proxy type
receives: sidecars get namespace/service-scoped slices (~1/3 in the
3-service testbed), ztunnels get the workload-identity portion (~0.8),
waypoints and the gateway get full route configuration. With the §5.1
testbed (30 pods / 2 nodes / 3 services) these yield the paper's exact
Fig 15 ratios: Istio 9.8×, Ambient 4.6× Canal's southbound bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..k8s import Cluster
from ..netsim import Link
from ..obs.runtime import get_telemetry
from ..obs.trace import get_tracer
from ..simcore import CpuResource, Resource, Simulator

__all__ = [
    "ControlPlaneCosts",
    "ConfigTarget",
    "PushReport",
    "ControlPlane",
    "IstioControlPlane",
    "AmbientControlPlane",
]


@dataclass(frozen=True)
class ControlPlaneCosts:
    """Sizes and costs of configuration handling."""

    envelope_bytes: int = 2048
    endpoint_bytes: int = 150
    rule_bytes: int = 300
    #: Tiny identity/observability config for a Canal on-node proxy.
    onnode_identity_bytes: int = 600
    #: Controller CPU to serialize one config byte (xDS marshalling).
    build_cpu_per_byte_s: float = 2e-6
    #: Controller CPU per byte to push (I/O-bound, much cheaper).
    push_cpu_per_byte_s: float = 2e-8
    #: Proxy-side apply/reconcile time by proxy kind.
    sidecar_apply_s: float = 20e-3
    ztunnel_apply_s: float = 50e-3
    waypoint_apply_s: float = 2.0
    gateway_apply_s: float = 0.4
    onnode_apply_s: float = 10e-3
    #: Controller distribution loop: per-proxy send/ACK round trip,
    #: serialized (the xDS distribution worker handles one stream at a
    #: time) — this is what makes configuring N sidecars O(N) wall time.
    distribution_ack_s: float = 35e-3
    #: Pod cold-start (schedule, image, readiness) before mesh config:
    #: a base plus a per-pod term (mass creations stagger the scheduler
    #: and image pulls).
    pod_startup_s: float = 5.0
    per_pod_startup_s: float = 0.02

    # Scope factors: fraction of the full config each proxy type gets.
    sidecar_scope: float = 9.8 / 30.0
    ztunnel_scope: float = 0.8
    waypoint_scope: float = 1.0
    gateway_scope: float = 1.0


@dataclass(frozen=True)
class ConfigTarget:
    """One proxy to configure in an update round."""

    name: str
    kind: str            # sidecar | ztunnel | waypoint | gateway | onnode
    config_bytes: int
    apply_s: float


@dataclass
class PushReport:
    """Outcome of one configuration update round."""

    targets: int = 0
    total_bytes: int = 0
    build_cpu_s: float = 0.0
    push_cpu_s: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def completion_s(self) -> float:
        return self.finished_at - self.started_at


class ControlPlane:
    """Shared build/push machinery; subclasses enumerate targets."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 southbound: Optional[Link] = None,
                 controller_cores: int = 4,
                 costs: ControlPlaneCosts = ControlPlaneCosts()):
        self.sim = sim
        self.cluster = cluster
        self.costs = costs
        self.southbound = southbound or Link(
            sim, bandwidth_bps=1e9, latency_s=1e-3, name="southbound")
        self.controller_cpu = CpuResource(sim, cores=controller_cores,
                                          name="controller")
        self._distributor = Resource(sim, capacity=1)
        self.updates_pushed = 0
        self.bytes_pushed_total = 0
        #: Fault point: extra southbound latency per target (slow xDS
        #: distribution under load or packet loss).
        self.push_delay_s = 0.0
        #: Fault point: while set, southbound pushes block on this event
        #: (controller partitioned from its proxies).
        self._partition_heal = None

    # -- fault points (driven by repro.faults) -------------------------------
    def inject_push_delay(self, extra_s: float) -> None:
        """Add ``extra_s`` of southbound delay to every in-flight and
        future target configuration until :meth:`clear_push_delay`."""
        if extra_s < 0:
            raise ValueError(f"negative push delay {extra_s}")
        self.push_delay_s = extra_s

    def clear_push_delay(self) -> None:
        self.push_delay_s = 0.0

    @property
    def partitioned(self) -> bool:
        return self._partition_heal is not None

    def partition(self) -> None:
        """Cut the controller off from its proxies: target
        configurations stall before their southbound transfer until
        :meth:`heal_partition`. Idempotent."""
        if self._partition_heal is None:
            self._partition_heal = self.sim.event()

    def heal_partition(self) -> None:
        """End the partition; every stalled configuration resumes."""
        heal, self._partition_heal = self._partition_heal, None
        if heal is not None:
            heal.succeed()

    # -- config sizing ------------------------------------------------------
    def full_config_bytes(self) -> int:
        """Size of the complete mesh configuration set.

        Endpoint entries for every pod plus all route/security rules —
        the set that "ensures any pod can freely communicate with
        others if needed" (§2.1).
        """
        c = self.costs
        endpoints = self.cluster.pod_count * c.endpoint_bytes
        # Two rules per service is the paper's common case (a routing
        # policy plus a security admission).
        rules = 2 * len(self.cluster.services) * c.rule_bytes
        return c.envelope_bytes + endpoints + rules

    def targets_for_update(self, kind: str = "routing") -> List[ConfigTarget]:
        """Proxies to (re)configure on a mesh-wide update.

        ``kind`` is ``"routing"`` (policy change) or ``"pods"`` (endpoint
        churn); full-config architectures push the same set either way,
        Canal differentiates (identity configs only matter on pod churn).
        """
        raise NotImplementedError

    # -- push execution -------------------------------------------------------
    def push_update(self, kind: str = "routing"):
        """Process generator: run one update round → :class:`PushReport`.

        Builds contend on the controller CPU; transfers serialize on the
        southbound link; proxies apply in parallel.
        """
        report = PushReport(started_at=self.sim.now)
        targets = self.targets_for_update(kind)
        tracer = get_tracer()
        handle = None
        if tracer is not None:
            plane = getattr(self, "kind", "generic")
            handle = tracer.start(
                "config-push", layer="controlplane",
                source=f"controlplane/{plane}", start_s=self.sim.now,
                kind=kind, targets=len(targets))
        done_events = []
        for target in targets:
            done = self.sim.event()
            self.sim.process(
                self._configure_target(target, report, done, trace=handle),
                name=f"cfg-{target.name}")
            done_events.append(done)
        if done_events:
            yield self.sim.all_of(done_events)
        report.targets = len(targets)
        report.finished_at = self.sim.now
        if handle is not None:
            handle.finish(self.sim.now, status="ok",
                          total_bytes=report.total_bytes)
        self.updates_pushed += 1
        self.bytes_pushed_total += report.total_bytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            plane = getattr(self, "kind", "generic")
            telemetry.inc("config_pushes_total", plane=plane, kind=kind)
            telemetry.inc("config_push_bytes_total",
                          amount=report.total_bytes, plane=plane)
            telemetry.inc("config_push_targets_total",
                          amount=report.targets, plane=plane)
            telemetry.observe("config_push_completion_seconds",
                              report.completion_s, plane=plane)
        return report

    def _configure_target(self, target: ConfigTarget, report: PushReport,
                          done, trace=None):
        costs = self.costs
        start = self.sim.now
        build_s = target.config_bytes * costs.build_cpu_per_byte_s
        push_s = target.config_bytes * costs.push_cpu_per_byte_s
        yield from self.controller_cpu.execute(build_s)
        yield from self.controller_cpu.execute(push_s)
        if self._partition_heal is not None:
            yield self._partition_heal
        if self.push_delay_s > 0.0:
            yield self.sim.timeout(self.push_delay_s)
        yield from self.southbound.transfer(target.config_bytes)
        with self._distributor.request() as claim:
            yield claim
            yield self.sim.timeout(costs.distribution_ack_s)
        yield self.sim.timeout(target.apply_s)
        report.total_bytes += target.config_bytes
        report.build_cpu_s += build_s
        report.push_cpu_s += push_s
        if trace is not None:
            trace.add(f"configure-{target.kind}", "controlplane",
                      start, self.sim.now,
                      source=f"target/{target.name}",
                      config_bytes=target.config_bytes,
                      apply_s=target.apply_s)
        get_telemetry().inc("config_target_acks_total", proxy=target.kind)
        done.succeed()

    def create_pods_and_configure(self, count: int, deployment: str):
        """Process generator: Fig 14's experiment verb.

        Creates ``count`` pods then runs the architecture's update
        round; a pod answers pings only once it is started *and* its
        mesh path is configured, so completion is startup followed by
        the configuration round.
        """
        deploy = self.cluster.deployments[deployment]
        self.cluster.scale_deployment(deployment,
                                      deploy.running_replicas + count)
        start = self.sim.now
        yield self.sim.timeout(self.costs.pod_startup_s
                               + self.costs.per_pod_startup_s * count)
        report = yield self.sim.process(self.push_update(kind="pods"),
                                        name="push")
        report.started_at = start
        report.finished_at = self.sim.now
        return report


class IstioControlPlane(ControlPlane):
    """Full config to every per-pod sidecar."""

    kind = "istio"

    def targets_for_update(self, kind: str = "routing") -> List[ConfigTarget]:
        full = self.full_config_bytes()
        size = int(full * self.costs.sidecar_scope)
        return [ConfigTarget(name=f"sidecar-{pod_name}", kind="sidecar",
                             config_bytes=size,
                             apply_s=self.costs.sidecar_apply_s)
                for pod_name in self.cluster.pods]


class AmbientControlPlane(ControlPlane):
    """Per-node ztunnels + per-service waypoints."""

    kind = "ambient"

    def targets_for_update(self, kind: str = "routing") -> List[ConfigTarget]:
        full = self.full_config_bytes()
        targets = [ConfigTarget(name=f"ztunnel-{node.name}", kind="ztunnel",
                                config_bytes=int(full * self.costs.ztunnel_scope),
                                apply_s=self.costs.ztunnel_apply_s)
                   for node in self.cluster.worker_nodes]
        targets.extend(
            ConfigTarget(name=f"waypoint-{service}", kind="waypoint",
                         config_bytes=int(full * self.costs.waypoint_scope),
                         apply_s=self.costs.waypoint_apply_s)
            for service in self.cluster.services)
        return targets
