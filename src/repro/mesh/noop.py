"""The no-mesh baseline: client and server directly connected.

Fig 10's "No service mesh" bar: no proxies, no redirection, no crypto —
just the network hops and the application itself. Implements the common
interface so the load drivers can run it unchanged.
"""

from __future__ import annotations

from typing import List

from ..k8s import Cluster, Pod
from ..simcore import Simulator
from .base import ServiceMesh
from .costs import DEFAULT_COSTS, MeshCostModel
from .http import HttpRequest, HttpResponse
from .proxy import Connection, ProxyTier

__all__ = ["NoMesh"]


class NoMesh(ServiceMesh):
    """Direct pod-to-pod communication without any mesh dataplane."""

    name = "no-mesh"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS,
                 latency_model=None):
        super().__init__(sim, costs)
        from ..netsim import LatencyModel
        self.latency_model = latency_model or LatencyModel()

    def attach(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def open_connection(self, client_pod: Pod, service: str):
        server_pod = self.pick_endpoint(service)
        connection = Connection(client=client_pod.name, service=service,
                                server_pod=server_pod.name,
                                established_at=self.sim.now)
        return connection
        yield  # pragma: no cover - makes this a generator

    def request(self, connection: Connection, request: HttpRequest):
        cluster = self._require_cluster()
        start = self.sim.now
        client_pod = cluster.pods[connection.client]
        server_pod = cluster.pods.get(connection.server_pod)
        if server_pod is None:
            return HttpResponse(status=503, latency_s=self.sim.now - start)
        src = cluster.node_by_name(client_pod.node_name).host.location
        dst = cluster.node_by_name(server_pod.node_name).host.location
        yield self.sim.timeout(self.latency_model.one_way(src, dst))
        yield self.sim.timeout(self.costs.app_service_time_s)
        yield self.sim.timeout(self.latency_model.one_way(dst, src))
        connection.requests_sent += 1
        latency = self.sim.now - start
        self.observe_request(200, latency, connection.service)
        return HttpResponse(status=200, latency_s=latency,
                            served_by=server_pod.name)

    def user_tiers(self) -> List[ProxyTier]:
        return []
