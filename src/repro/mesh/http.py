"""HTTP request/response model and L7 routing primitives.

Requests are metadata records: the fields L7 policy dispatches on (§2.2
— "URLs, HTTP headers, and message content") plus sizes for crypto and
bandwidth pricing. Routing follows the Istio VirtualService shape:
ordered rules with path/header/method matches and weighted destination
subsets (the mechanism behind canary release and A/B testing, §4.1.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpMatch",
    "WeightedDestination",
    "RouteRule",
    "RouteTable",
    "RouteError",
]


@dataclass
class HttpRequest:
    """One L7 request as seen by a mesh proxy."""

    method: str = "GET"
    path: str = "/"
    headers: Dict[str, str] = field(default_factory=dict)
    body_bytes: int = 128
    response_bytes: int = 1024
    https: bool = True
    source_identity: str = ""

    def __post_init__(self) -> None:
        if self.body_bytes < 0 or self.response_bytes < 0:
            raise ValueError("negative message size")

    @property
    def total_bytes(self) -> int:
        return self.body_bytes + self.response_bytes


@dataclass
class HttpResponse:
    """Outcome of one request through a mesh path."""

    status: int = 200
    latency_s: float = 0.0
    served_by: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400


class RouteError(LookupError):
    """No rule matched the request."""


@dataclass(frozen=True)
class HttpMatch:
    """Match condition of a route rule (AND of all present clauses)."""

    path_prefix: str = "/"
    headers: Tuple[Tuple[str, str], ...] = ()
    method: Optional[str] = None

    def matches(self, request: HttpRequest) -> bool:
        if not request.path.startswith(self.path_prefix):
            return False
        if self.method is not None and request.method != self.method:
            return False
        for key, value in self.headers:
            if request.headers.get(key) != value:
                return False
        return True


@dataclass(frozen=True)
class WeightedDestination:
    """A destination subset with a traffic-splitting weight."""

    subset: str
    weight: int = 100

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"negative weight {self.weight}")


@dataclass(frozen=True)
class RouteRule:
    """match → weighted destinations (canary/AB splitting)."""

    match: HttpMatch
    destinations: Tuple[WeightedDestination, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("route rule needs at least one destination")
        if sum(d.weight for d in self.destinations) <= 0:
            raise ValueError("route rule weights sum to zero")

    def pick_destination(self, rng: random.Random) -> str:
        total = sum(d.weight for d in self.destinations)
        roll = rng.uniform(0, total)
        cumulative = 0.0
        for destination in self.destinations:
            cumulative += destination.weight
            if roll <= cumulative:
                return destination.subset
        return self.destinations[-1].subset


class RouteTable:
    """Ordered L7 route rules for one service (first match wins)."""

    def __init__(self, service: str, rules: Sequence[RouteRule] = ()):
        self.service = service
        self.rules: List[RouteRule] = list(rules)

    def add_rule(self, rule: RouteRule) -> None:
        self.rules.append(rule)

    def route(self, request: HttpRequest, rng: random.Random) -> str:
        """Resolve a request to a destination subset name."""
        for rule in self.rules:
            if rule.match.matches(request):
                return rule.pick_destination(rng)
        raise RouteError(
            f"no route in {self.service!r} matches {request.method} "
            f"{request.path}")

    def __len__(self) -> int:
        return len(self.rules)

    def config_size_bytes(self) -> int:
        """Wire size of this table when pushed southbound.

        ~300 bytes per rule plus ~60 per header clause, the ballpark of
        serialized xDS RouteConfiguration entries.
        """
        size = 120  # envelope
        for rule in self.rules:
            size += 300 + 60 * len(rule.match.headers)
            size += 80 * len(rule.destinations)
        return size
