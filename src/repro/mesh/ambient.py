"""Sidecar-less split-proxy mesh — the Ambient-style baseline (§2.2).

Two proxy layers, both still inside the user cluster:

* a per-node *ztunnel* handling L4 + mTLS (HBONE) for every pod on the
  node;
* a per-service *waypoint* doing the single L7 pass, shared by all pods
  of that service (and therefore subject to the synchronized peak/valley
  effect the paper criticizes in Fig 5).

Traffic that needs L7 (80–95 % of customers, Table 3) takes
client-ztunnel → waypoint → server-ztunnel; L4-only services skip the
waypoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..crypto import CertificateAuthority, SoftwareAsymEngine, mtls_handshake
from ..k8s import Cluster, Pod
from ..netsim import LatencyModel
from ..simcore import Simulator
from .base import MeshError, ServiceMesh
from .costs import DEFAULT_COSTS, MeshCostModel, sample_service_time
from .http import HttpRequest, HttpResponse
from .proxy import Connection, ProxyTier

__all__ = ["AmbientMesh"]


class AmbientMesh(ServiceMesh):
    """Per-node L4 + per-service L7 architecture."""

    name = "ambient"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS,
                 latency_model: Optional[LatencyModel] = None,
                 ztunnel_cores_per_node: int = 1,
                 waypoint_pool_cores: int = 2,
                 mtls_enabled: bool = True):
        super().__init__(sim, costs)
        self.latency_model = latency_model or LatencyModel()
        self.ztunnel_cores_per_node = ztunnel_cores_per_node
        self.waypoint_pool_cores = waypoint_pool_cores
        self.mtls_enabled = mtls_enabled
        self.ca = CertificateAuthority("ambient-ca")
        self._ztunnels: Dict[str, ProxyTier] = {}
        self._engines: Dict[str, SoftwareAsymEngine] = {}
        self._waypoint_pool: Optional[ProxyTier] = None
        self._l7_services: Set[str] = set()
        self.waypoint_requests: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------
    def attach(self, cluster: Cluster) -> None:
        self.cluster = cluster
        for node in cluster.worker_nodes:
            tier = ProxyTier(self.sim, cores=self.ztunnel_cores_per_node,
                             name=f"ztunnel@{node.name}")
            self._ztunnels[node.name] = tier
            self._engines[node.name] = SoftwareAsymEngine(
                self.sim, self.costs.crypto, new_cpu=True, cpu=tier.cpu)
        self._waypoint_pool = ProxyTier(
            self.sim, cores=self.waypoint_pool_cores, name="waypoints")
        # Every pre-existing and future service gets L7 by default; call
        # set_l7_enabled(service, False) for L4-only services.
        for service in cluster.services:
            self._l7_services.add(service)
        cluster.watch(self._on_event)

    def _on_event(self, event) -> None:
        if event.kind == "service" and event.action == "added":
            self._l7_services.add(event.name)

    def set_l7_enabled(self, service: str, enabled: bool) -> None:
        """Opt a service out of (or back into) waypoint L7 processing."""
        if enabled:
            self._l7_services.add(service)
        else:
            self._l7_services.discard(service)

    def l7_enabled(self, service: str) -> bool:
        return service in self._l7_services

    # -- dataplane ------------------------------------------------------------
    def _ztunnel_for(self, pod: Pod) -> ProxyTier:
        tier = self._ztunnels.get(pod.node_name or "")
        if tier is None:
            raise MeshError(f"pod {pod.name} is on an unmanaged node")
        return tier

    def open_connection(self, client_pod: Pod, service: str):
        """HBONE tunnel establishment between the two ztunnels."""
        server_pod = self.pick_endpoint(service)
        session = None
        if self.mtls_enabled:
            rtt = self.latency_model.rtt(
                self._location_of(client_pod), self._location_of(server_pod))
            client_cert = self.ca.issue(
                f"spiffe://{client_pod.tenant}/{client_pod.name}",
                client_pod.tenant, self.sim.now + 86400.0)
            server_cert = self.ca.issue(
                f"spiffe://{server_pod.tenant}/{server_pod.name}",
                server_pod.tenant, self.sim.now + 86400.0)
            setup = (self.costs.handshake_base_s
                     + self.costs.connection_setup_s)
            yield from self._ztunnel_for(client_pod).work(setup)
            yield from self._ztunnel_for(server_pod).work(setup)
            result = yield self.sim.process(mtls_handshake(
                self.sim, self.ca, client_cert, server_cert,
                self._engines[client_pod.node_name],
                self._engines[server_pod.node_name],
                rtt_s=rtt, costs=self.costs.crypto))
            if not result.ok:
                raise MeshError(f"handshake failed: {result.failure_reason}")
            session = result.session
        connection = Connection(client=client_pod.name, service=service,
                                server_pod=server_pod.name,
                                established_at=self.sim.now, session=session)
        return connection

    def request(self, connection: Connection, request: HttpRequest):
        """ztunnel → (waypoint) → ztunnel → app exchange."""
        cluster = self._require_cluster()
        start = self.sim.now
        client_pod = cluster.pods[connection.client]
        server_pod = cluster.pods.get(connection.server_pod)
        if server_pod is None:
            self.observe_request(503, self.sim.now - start,
                                 connection.service)
            return HttpResponse(status=503, latency_s=self.sim.now - start)

        crypto_bytes = request.total_bytes if self.mtls_enabled else 0
        ztunnel_cost = (self.costs.ambient_ztunnel_l4_s
                        + self.costs.symmetric_cost(crypto_bytes))
        client_loc = self._location_of(client_pod)
        server_loc = self._location_of(server_pod)

        yield from self._ztunnel_for(client_pod).work(ztunnel_cost)
        if self.l7_enabled(connection.service):
            # One intermediate hop to the waypoint (placed on a cluster
            # node, so an intra-AZ hop) and one onwards to the server.
            yield self.sim.timeout(self.latency_model.intra_az)
            if not self.authorize(connection.service, request):
                self.observe_request(403, self.sim.now - start,
                                     connection.service)
                return HttpResponse(status=403, latency_s=self.sim.now - start)
            assert self._waypoint_pool is not None
            yield from self._waypoint_pool.work(sample_service_time(
                self.sim.rng, self.costs.ambient_waypoint_l7_s,
                self.costs.ambient_l7_sigma))
            self.waypoint_requests[connection.service] = (
                self.waypoint_requests.get(connection.service, 0) + 1)
            yield self.sim.timeout(self.latency_model.one_way(
                client_loc, server_loc))
        else:
            yield self.sim.timeout(self.latency_model.one_way(
                client_loc, server_loc))
        yield from self._ztunnel_for(server_pod).work(ztunnel_cost)
        yield self.sim.timeout(self.costs.app_service_time_s)
        yield self.sim.timeout(self.latency_model.one_way(
            server_loc, client_loc))
        connection.requests_sent += 1
        latency = self.sim.now - start
        self.observe_request(200, latency, connection.service)
        return HttpResponse(status=200, latency_s=latency,
                            served_by=server_pod.name)

    # -- accounting ---------------------------------------------------------
    def user_tiers(self) -> List[ProxyTier]:
        tiers = list(self._ztunnels.values())
        if self._waypoint_pool is not None:
            tiers.append(self._waypoint_pool)
        return tiers

    def proxy_count(self) -> int:
        """O(node + service): one ztunnel per node + one waypoint per
        L7-enabled service."""
        cluster = self._require_cluster()
        return len(cluster.worker_nodes) + len(self._l7_services)

    def _location_of(self, pod: Pod):
        node = self._require_cluster().node_by_name(pod.node_name)
        return node.host.location
