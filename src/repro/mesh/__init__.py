"""Service-mesh common layer and the two baseline architectures.

* the calibrated cost model shared by every comparison experiment;
* the HTTP/L7 routing and zero-trust policy objects;
* the generic proxy engine (CPU tiers, connections);
* the Istio-style per-pod sidecar mesh and the Ambient-style
  ztunnel/waypoint mesh;
* the control-plane build/push models.

Canal itself lives in ``repro.core`` and builds on these.
"""

from .ambient import AmbientMesh
from .base import MeshError, ServiceMesh
from .controlplane import (
    AmbientControlPlane,
    ConfigTarget,
    ControlPlane,
    ControlPlaneCosts,
    IstioControlPlane,
    PushReport,
)
from .costs import DEFAULT_COSTS, MeshCostModel
from .http import (
    HttpMatch,
    HttpRequest,
    HttpResponse,
    RouteError,
    RouteRule,
    RouteTable,
    WeightedDestination,
)
from .istio import IstioMesh
from .noop import NoMesh
from .policy import AuthorizationPolicy, AuthorizationTable, RateLimiter
from .proxy import Connection, ConnectionPool, ProxyTier

__all__ = [
    "AmbientControlPlane",
    "AmbientMesh",
    "AuthorizationPolicy",
    "AuthorizationTable",
    "ConfigTarget",
    "Connection",
    "ConnectionPool",
    "ControlPlane",
    "ControlPlaneCosts",
    "DEFAULT_COSTS",
    "HttpMatch",
    "HttpRequest",
    "HttpResponse",
    "IstioControlPlane",
    "IstioMesh",
    "MeshCostModel",
    "MeshError",
    "NoMesh",
    "ProxyTier",
    "PushReport",
    "RateLimiter",
    "RouteError",
    "RouteRule",
    "RouteTable",
    "ServiceMesh",
    "WeightedDestination",
]
