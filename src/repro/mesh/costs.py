"""The calibrated cost model shared by all three mesh architectures.

Every comparison figure (10–15, 22–30) prices its request paths from
this one table, so the architecture ratios are *derived* from the same
constants rather than hard-coded per figure.

Calibration rationale (see DESIGN.md §4 and EXPERIMENTS.md):

* Istio's sidecar pays an iptables redirect plus a full-featured Envoy
  L7 pass on each side of a request. The paper repeatedly observes that
  production sidecars carry "complex network and security
  configurations"; its own Figs 2/11 imply a per-pass cost an order of
  magnitude above an optimized single-purpose L7 engine.
* Ambient's ztunnel does L4 + mTLS (HBONE) per node; its waypoint is a
  lighter-config Envoy doing one L7 pass per request.
* Canal's on-node proxy does eBPF redirection, L4 accounting, and
  symmetric crypto only (asymmetric crypto is offloaded); its gateway
  replica runs Alibaba's optimized L7 engine, reflecting the years of
  gateway optimization the paper cites (Sailfish/LuoShen lineage).

With the defaults below and the §5.1 testbed layout, the model yields
light-load latency ratios of ≈ 1.7× / 1.2× (paper: 1.7× / 1.3×),
user-cluster CPU ratios of ≈ 15× / 4.6× (paper: 12–19× / 4.6–7.2×), and
saturation-throughput ratios of ≈ 7–9× / 1.8–2.2× (paper: 12.3× / 2.3×
— the model reproduces the ordering and a large gap; the full 12.3×
depends on Envoy implementation artifacts beyond a queueing model, see
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..crypto.primitives import CryptoCosts, DEFAULT_CRYPTO_COSTS
from ..kernel.costs import KernelCosts

__all__ = ["MeshCostModel", "DEFAULT_COSTS", "sample_service_time"]


def sample_service_time(rng: random.Random, mean_s: float,
                        sigma: float) -> float:
    """Lognormal service time with the given *mean* and shape ``sigma``.

    ``sigma`` models processing-time variability: a full-featured Envoy
    with complex filter chains has heavy-tailed per-request costs (which
    is what makes its latency spike far below full utilization — Fig 2),
    while an optimized single-purpose engine is near-deterministic.
    ``sigma=0`` returns the mean exactly.
    """
    if mean_s < 0:
        raise ValueError(f"negative service time {mean_s}")
    if sigma <= 0:
        return mean_s
    # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); solve for mu.
    mu = math.log(mean_s) - sigma * sigma / 2.0
    return rng.lognormvariate(mu, sigma)


@dataclass(frozen=True)
class MeshCostModel:
    """Per-request CPU costs (seconds) of each processing element."""

    kernel: KernelCosts = field(default_factory=KernelCosts)
    crypto: CryptoCosts = field(default_factory=lambda: DEFAULT_CRYPTO_COSTS)

    # -- L7 proxy passes ---------------------------------------------------
    #: Full-featured Envoy pass in an Istio sidecar (HTTP parse, route,
    #: telemetry, policy with production-sized config).
    istio_sidecar_l7_s: float = 850e-6
    #: Waypoint (Envoy with service-scoped config), one pass per request.
    ambient_waypoint_l7_s: float = 300e-6
    #: Canal gateway replica L7 pass (optimized multi-tenant engine).
    canal_gateway_l7_s: float = 80e-6

    # -- L4 elements ----------------------------------------------------------
    #: ztunnel per-node L4 + HBONE encapsulation work, per direction.
    ambient_ztunnel_l4_s: float = 100e-6
    #: Canal on-node proxy per direction: eBPF hand-off, L4 accounting,
    #: pod-level observability labeling (Appendix A's "additional work").
    canal_onnode_l4_s: float = 40e-6
    #: One-way hop between a user node and the in-AZ mesh gateway.
    #: Below the generic intra-AZ hop because the gateway sits on the
    #: provider's optimized overlay fast path (hairpin analysis,
    #: Appendix A: intra-AZ RTT "less than 1 ms").
    canal_gateway_hop_s: float = 150e-6

    # -- L7 service-time variability (lognormal sigma; see
    # ``sample_service_time``) -------------------------------------------------
    #: Production-config Envoy in a sidecar: heavy tail (Fig 2's early
    #: latency blow-up: 2× at 45 % utilization, spikes past 75 %).
    istio_l7_sigma: float = 1.3
    #: Waypoint Envoy with a service-scoped config: moderate tail.
    ambient_l7_sigma: float = 0.9
    #: Canal's optimized gateway engine: near-deterministic.
    canal_l7_sigma: float = 0.35

    # -- connection setup ------------------------------------------------------
    #: Non-asymmetric handshake work at a proxy terminating TLS (cert
    #: parse, session install); the asymmetric op is priced separately
    #: by the crypto engine in use.
    handshake_base_s: float = 300e-6
    #: Per-connection setup outside TLS (TCP accept, socket and proxy
    #: state) — dominates short-flow costs alongside the handshake.
    connection_setup_s: float = 700e-6
    #: Marshalling cost of one RPC to the remote key server.
    key_server_rpc_cpu_s: float = 10e-6

    # -- applications -------------------------------------------------------------
    #: Echo-style benchmark app service time (wrk-like testbed server).
    app_service_time_s: float = 1e-3

    def symmetric_cost(self, nbytes: int) -> float:
        """Symmetric-crypto CPU for one message of ``nbytes``."""
        return self.crypto.symmetric_cost(nbytes)

    def iptables_redirect_cpu_s(self) -> float:
        """Extra CPU of one iptables-redirected message hand-off."""
        kc = self.kernel
        return 2 * kc.stack_pass_s + 2 * kc.context_switch_s + kc.socket_op_s

    def ebpf_redirect_cpu_s(self) -> float:
        """Extra CPU of one eBPF sockmap hand-off."""
        return self.kernel.context_switch_s + self.kernel.socket_op_s


DEFAULT_COSTS = MeshCostModel()
