"""Per-pod sidecar mesh — the Istio-style baseline (§2.1, Fig 1).

Every admitted pod gets a sidecar container injected (resource
intrusion, Table 1); its traffic is redirected through iptables into a
full-featured L7 proxy on both the client and server side, so each
request pays two iptables hand-offs and two heavy L7 passes on
user-cluster CPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..crypto import (
    CertificateAuthority,
    SoftwareAsymEngine,
    mtls_handshake,
)
from ..k8s import Cluster, Container, Pod, ResourceRequest
from ..netsim import LatencyModel
from ..obs.trace import get_tracer
from ..simcore import Simulator
from .base import MeshError, ServiceMesh
from .costs import DEFAULT_COSTS, MeshCostModel, sample_service_time
from .http import HttpRequest, HttpResponse
from .proxy import Connection, ProxyTier

__all__ = ["IstioMesh"]

#: Default sidecar resource request, matching Table 1's production
#: averages (~100 millicores and ~340 MB per pod).
SIDECAR_RESOURCES = ResourceRequest(cpu_millicores=100, memory_mb=340)


class IstioMesh(ServiceMesh):
    """Sidecar-per-pod architecture."""

    name = "istio"

    def __init__(self, sim: Simulator, costs: MeshCostModel = DEFAULT_COSTS,
                 latency_model: Optional[LatencyModel] = None,
                 sidecar_cores_per_node: int = 2,
                 sidecar_resources: ResourceRequest = SIDECAR_RESOURCES,
                 mtls_enabled: bool = True):
        super().__init__(sim, costs)
        self.latency_model = latency_model or LatencyModel()
        self.sidecar_cores_per_node = sidecar_cores_per_node
        self.sidecar_resources = sidecar_resources
        self.mtls_enabled = mtls_enabled
        self.ca = CertificateAuthority("istio-ca")
        self._tiers: Dict[str, ProxyTier] = {}
        self._engines: Dict[str, SoftwareAsymEngine] = {}
        self.sidecars_injected = 0

    # -- lifecycle -----------------------------------------------------------
    def attach(self, cluster: Cluster) -> None:
        self.cluster = cluster
        cluster.add_admission_hook(self._inject_sidecar)
        for node in cluster.worker_nodes:
            tier = ProxyTier(self.sim, cores=self.sidecar_cores_per_node,
                             name=f"istio-sidecars@{node.name}")
            self._tiers[node.name] = tier
            # Sidecars do their asymmetric crypto in software on the
            # sidecar CPU pool (Istio does not use QAT/AVX by default).
            self._engines[node.name] = SoftwareAsymEngine(
                self.sim, self.costs.crypto, new_cpu=True, cpu=tier.cpu)

    def _inject_sidecar(self, pod: Pod) -> None:
        pod.containers.append(Container(
            name="istio-proxy", resources=self.sidecar_resources,
            is_sidecar=True))
        self.sidecars_injected += 1

    def _tier_for(self, pod: Pod) -> ProxyTier:
        tier = self._tiers.get(pod.node_name or "")
        if tier is None:
            raise MeshError(f"pod {pod.name} is on an unmanaged node")
        return tier

    # -- dataplane ------------------------------------------------------------
    def open_connection(self, client_pod: Pod, service: str):
        """Pick an endpoint and run the sidecar-to-sidecar mTLS handshake."""
        server_pod = self.pick_endpoint(service)
        client_tier = self._tier_for(client_pod)
        server_tier = self._tier_for(server_pod)
        session = None
        tracer = get_tracer()
        trace_sink = ([] if tracer is not None and tracer.enabled
                      else None)
        if self.mtls_enabled:
            rtt = self.latency_model.rtt(
                self._location_of(client_pod), self._location_of(server_pod))
            client_cert = self.ca.issue(
                f"spiffe://{client_pod.tenant}/{client_pod.name}",
                client_pod.tenant, self.sim.now + 86400.0)
            server_cert = self.ca.issue(
                f"spiffe://{server_pod.tenant}/{server_pod.name}",
                server_pod.tenant, self.sim.now + 86400.0)
            setup = (self.costs.handshake_base_s
                     + self.costs.connection_setup_s)
            yield from client_tier.work(setup)
            yield from server_tier.work(setup)
            result = yield self.sim.process(mtls_handshake(
                self.sim, self.ca, client_cert, server_cert,
                self._engines[client_pod.node_name],
                self._engines[server_pod.node_name],
                rtt_s=rtt, costs=self.costs.crypto,
                trace_sink=trace_sink))
            if not result.ok:
                raise MeshError(f"handshake failed: {result.failure_reason}")
            session = result.session
        connection = Connection(client=client_pod.name, service=service,
                                server_pod=server_pod.name,
                                established_at=self.sim.now, session=session)
        if trace_sink:
            connection.meta["pending_spans"] = trace_sink
        return connection

    def request(self, connection: Connection, request: HttpRequest):
        """One request/response exchange through both sidecars."""
        cluster = self._require_cluster()
        start = self.sim.now
        tracer = get_tracer()
        handle = None
        if tracer is not None:
            handle = tracer.start("request", layer="request",
                                  source=f"client/{connection.client}",
                                  service=connection.service,
                                  start_s=start, mesh=self.name)
        if handle is not None:
            pending = connection.meta.pop("pending_spans", None)
            if pending:
                handle.start_s = min(
                    handle.start_s,
                    min(spec["start_s"] for spec in pending))
                for spec in pending:
                    handle.add_tree(spec)
        client_pod = cluster.pods[connection.client]
        server_pod = cluster.pods.get(connection.server_pod)
        if server_pod is None:
            self.observe_request(503, self.sim.now - start,
                                 connection.service)
            if handle is not None:
                handle.finish(self.sim.now, status=503)
            return HttpResponse(status=503, latency_s=self.sim.now - start)

        crypto_bytes = request.total_bytes if self.mtls_enabled else 0
        fixed_cost = (2 * self.costs.iptables_redirect_cpu_s()
                      + self.costs.symmetric_cost(crypto_bytes))

        def side_cost() -> float:
            return fixed_cost + sample_service_time(
                self.sim.rng, self.costs.istio_sidecar_l7_s,
                self.costs.istio_l7_sigma)

        # Client sidecar: redirect out + L7 + encrypt. Both sidecar
        # passes are full L7 proxies, so their spans land in the l7
        # layer (the sidecar has no split l4/l7 like Canal).
        yield from self._tier_for(client_pod).work(
            side_cost(), trace=handle, name="sidecar-l7", layer="l7",
            pod=client_pod.name, bytes_out=request.body_bytes,
            bytes_in=request.response_bytes)
        yield self.sim.timeout(self.latency_model.one_way(
            self._location_of(client_pod), self._location_of(server_pod)))
        # Server sidecar: decrypt + L7 + authorization + redirect in.
        if not self.authorize(connection.service, request):
            self.observe_request(403, self.sim.now - start,
                                 connection.service)
            if handle is not None:
                handle.finish(self.sim.now, status=403)
            return HttpResponse(status=403, latency_s=self.sim.now - start)
        yield from self._tier_for(server_pod).work(
            side_cost(), trace=handle, name="sidecar-l7", layer="l7",
            pod=server_pod.name, bytes_out=request.response_bytes,
            bytes_in=request.body_bytes)
        # The application itself.
        app_start = self.sim.now
        yield self.sim.timeout(self.costs.app_service_time_s)
        if handle is not None:
            handle.add("app-exec", "app", app_start, self.sim.now,
                       source=f"app/{server_pod.name}",
                       pod=server_pod.name)
        # Response network hop (response-side proxy work is folded into
        # the per-side cost above).
        yield self.sim.timeout(self.latency_model.one_way(
            self._location_of(server_pod), self._location_of(client_pod)))
        connection.requests_sent += 1
        latency = self.sim.now - start
        self.observe_request(200, latency, connection.service)
        if handle is not None:
            handle.finish(self.sim.now, status=200)
        return HttpResponse(status=200, latency_s=latency,
                            served_by=server_pod.name)

    # -- accounting ---------------------------------------------------------
    def user_tiers(self) -> List[ProxyTier]:
        return list(self._tiers.values())

    def proxy_count(self) -> int:
        """Number of managed proxies = number of sidecars = pods."""
        return self._require_cluster().pod_count

    def _location_of(self, pod: Pod):
        node = self._require_cluster().node_by_name(pod.node_name)
        return node.host.location
