"""The generic proxy engine: CPU tiers, connections, and path assembly.

A :class:`ProxyTier` is a pool of cores doing proxy work; request paths
acquire a core for each processing element's CPU cost, so queueing —
and therefore the latency knee at saturation that Figs 2 and 11 show —
emerges from contention rather than being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..crypto.tls import MtlsSession
from ..obs.runtime import get_telemetry
from ..simcore import CpuResource, Simulator

__all__ = ["ProxyTier", "Connection", "ConnectionPool"]


class ProxyTier:
    """A named pool of proxy cores with request accounting."""

    def __init__(self, sim: Simulator, cores: int, name: str,
                 on_user_cluster: bool = True):
        self.sim = sim
        self.cpu = CpuResource(sim, cores=cores, name=name)
        self.name = name
        #: Whether this tier consumes resources the user purchased
        #: (true for sidecars/ztunnels/waypoints/on-node proxies; false
        #: for Canal's cloud-side gateway replicas).
        self.on_user_cluster = on_user_cluster
        self.requests_processed = 0

    def work(self, cpu_seconds: float, trace=None, parent_id: int = 1,
             name: str = "proxy-work", layer: str = "l4", pod: str = "",
             bytes_out: int = 0, bytes_in: int = 0):
        """Process generator: hold one core for ``cpu_seconds``.

        With a ``trace`` (an :class:`repro.obs.trace.TraceHandle`), the
        whole occupancy — queueing for a core *plus* execution — is
        recorded as one span under ``parent_id``, so tier contention is
        visible in the per-layer latency waterfall.
        """
        if cpu_seconds < 0:
            raise ValueError(f"negative work: {cpu_seconds}")
        self.requests_processed += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.inc("proxy_requests_total", tier=self.name)
            telemetry.observe("proxy_work_seconds", cpu_seconds,
                              tier=self.name)
        if trace is None:
            yield from self.cpu.execute(cpu_seconds)
            return None
        start = self.sim.now
        yield from self.cpu.execute(cpu_seconds)
        return trace.add(name, layer, start, self.sim.now,
                         parent_id=parent_id, source=self.name, pod=pod,
                         bytes_out=bytes_out, bytes_in=bytes_in,
                         cpu_s=cpu_seconds)

    def utilization(self, since: float = 0.0) -> float:
        return self.cpu.utilization(since)

    @property
    def cores(self) -> int:
        return self.cpu.cores


@dataclass
class Connection:
    """An established client→service connection through the mesh."""

    client: str
    service: str
    server_pod: str
    established_at: float
    session: Optional[MtlsSession] = None
    requests_sent: int = 0
    meta: Dict[str, object] = field(default_factory=dict)


class ConnectionPool:
    """Per-(client, service) connection reuse.

    Persistent-connection workloads (Fig 11's wrk with 100 connections)
    open once and reuse; short-flow workloads (the HTTPS handshake
    experiments, Figs 27/28) skip the pool entirely.
    """

    def __init__(self):
        self._connections: Dict[Tuple[str, str], Connection] = {}
        self.hits = 0
        self.misses = 0

    def get(self, client: str, service: str) -> Optional[Connection]:
        connection = self._connections.get((client, service))
        if connection is None:
            self.misses += 1
            get_telemetry().inc("connection_pool_lookups_total",
                                result="miss")
        else:
            self.hits += 1
            get_telemetry().inc("connection_pool_lookups_total", result="hit")
        return connection

    def put(self, connection: Connection) -> None:
        self._connections[(connection.client, connection.service)] = connection

    def invalidate(self, client: str, service: str) -> None:
        self._connections.pop((client, service), None)

    def invalidate_server(self, server_pod: str) -> int:
        """Drop every connection pinned to a failed server pod."""
        doomed = [key for key, conn in self._connections.items()
                  if conn.server_pod == server_pod]
        for key in doomed:
            del self._connections[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._connections)
