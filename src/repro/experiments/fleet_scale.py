"""Fleet-scale exhibits: the paper's production ops at cloud scale.

The §5.5 exhibits (``cloud_ops.py``) replay Figs 16–20 on a testbed-
sized gateway — a few hundred replicas at most, because the per-session
tier walks one object per replica. This family re-renders the same
claims through ``repro.fleet``'s fluid tier at the paper's *actual*
operating point: tens of thousands of replicas, millions of concurrent
sessions, multiple regions — in minutes of wall clock.

* ``fleet_fig13`` — mesh CPU at cloud scale: aggregate cores consumed
  by Canal vs sidecar-per-pod vs ambient at identical offered load,
  priced from the same :class:`~repro.mesh.costs.MeshCostModel` the
  testbed comparison figures use.
* ``fleet_fig17_18`` — Reuse-vs-New scaling over two days of staggered
  tenant surges: completion CDFs and per-day occurrence mix.
* ``fleet_fig19`` — shuffle-shard isolation guarantees as the tenant
  count grows to 2000 services, plus a live blast-radius probe.
* ``fleet_fig20`` — one full day of multi-region daily operations:
  10,240 replicas, ~1M concurrent sessions, 2 regions, diurnal load,
  scaling, and a chaos plan (AZ loss, backend crash, query-of-death).

Every exhibit fans out over *picklable region/point specs* through
``sweep_map``, and each worker seeds its own :class:`Simulator` from
the spec — results are byte-identical at any ``--jobs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..faults.plan import Fault, FaultPlan
from ..fleet import (FleetConfig, FleetDemand, FleetFaultEngine, FleetModel,
                     FleetScaler)
from ..mesh.costs import DEFAULT_COSTS
from ..runtime.sweep import sweep_map
from ..simcore import Simulator, cdf
from .base import ExperimentResult, Series, Table

__all__ = [
    "fleet_fig13_cpu_at_scale",
    "fleet_fig17_18_scaling_at_scale",
    "fleet_fig19_sharding_at_scale",
    "fleet_fig20_daily_operations_at_scale",
]


# --------------------------------------------------------------------------
# Shared region worker (picklable spec in, plain dict out)
# --------------------------------------------------------------------------

class _SurgeSchedule:
    """Staggered tenant surges: every ``every``-th service multiplies
    its demand by ``factor`` during a ``window_s`` slot assigned
    round-robin through the day. A pure function of (service, t), and
    picklable — lambdas would break the ``--jobs`` fan-out."""

    def __init__(self, every: int = 8, factor: float = 2.5,
                 window_s: float = 7200.0, period_s: float = 86400.0):
        self.every = every
        self.factor = factor
        self.window_s = window_s
        self.period_s = period_s

    def __call__(self, service: int, t: float) -> float:
        if service % self.every:
            return 1.0
        slot = service // self.every
        slots = max(1, int(self.period_s / self.window_s))
        start = (slot % slots) * self.window_s
        phase = t % self.period_s
        if start <= phase < start + self.window_s:
            return self.factor
        return 1.0


def _build_plan(entries: List[Dict[str, object]]) -> FaultPlan:
    return FaultPlan.of(*[Fault(**entry) for entry in entries])


def _fleet_region_run(spec: Dict[str, object]) -> Dict[str, object]:
    """Run one region of the fluid tier; return plain-data summaries."""
    sim = Simulator(seed=spec["seed"])
    config = FleetConfig(azs=spec["azs"],
                         backends_per_az=spec["backends_per_az"],
                         services=spec["services"],
                         dt_s=spec.get("dt_s", 60.0),
                         sample_every=spec.get("sample_every", 5))
    demand = FleetDemand(mean_sessions=spec["mean_sessions"],
                         amplitude=spec.get("amplitude", 0.0),
                         phase=spec.get("phase", 0.58),
                         session_rps=spec.get("session_rps", 2.0))
    model = FleetModel(sim, config, demand)
    if spec.get("surge"):
        model.demand_scale = _SurgeSchedule(**spec["surge"])
    scaler = FleetScaler(sim, model) if spec.get("scaler") else None
    engine = None
    if spec.get("plan"):
        engine = FleetFaultEngine(sim, model)
        engine.arm(_build_plan(spec["plan"]))
    horizon = spec["horizon_s"]
    model.start(horizon)
    sim.run(until=horizon)
    model.check_invariants("end-of-run")
    model.publish_telemetry()
    metrics = model.metrics
    counters = model.counters
    stats = model.topology.shard_stats()
    out: Dict[str, object] = {
        "region": spec.get("region", "region-1"),
        "replicas": model.topology.replicas_provisioned(),
        "backends": model.topology.n_backends,
        "availability": model.overall_availability(),
        "peak_sessions": max(metrics.active_sessions.values),
        "final_sessions": model.active_sessions(),
        "attempted": counters.attempted,
        "admitted": counters.admitted,
        "rejected": counters.rejected,
        "disrupted": counters.disrupted,
        "config_pushes": counters.config_pushes,
        "series": {
            name: list(zip(series.times, series.values))
            for name, series in (
                ("active_sessions", metrics.active_sessions),
                ("mean_water", metrics.mean_water),
                ("max_water", metrics.max_water),
                ("offered_rps", metrics.offered_rps),
                ("latency_p99_ms", metrics.latency_p99_ms),
                ("provisioned_replicas", metrics.provisioned_replicas),
            )},
        "shard_stats": {
            "fully_overlapping_pairs": stats.fully_overlapping_pairs,
            "max_pairwise_overlap": stats.max_pairwise_overlap,
            "min_survivor_backends": stats.min_survivor_backends,
            "multi_az_services": stats.multi_az_services,
        },
    }
    if scaler is not None:
        out["scaling"] = scaler.summary()
        out["scaling_events"] = [
            (event.kind, event.execution_s,
             event.settle_s if event.below_threshold_at else -1.0)
            for event in scaler.events if event.finished_at > 0.0]
    if engine is not None:
        out["timeline"] = list(engine.timeline)
    return out


# --------------------------------------------------------------------------
# fleet_fig13 — aggregate mesh CPU at cloud scale
# --------------------------------------------------------------------------

def fleet_fig13_cpu_at_scale(seed: int = 7) -> ExperimentResult:
    """Cores consumed by each mesh architecture at fleet-wide load.

    The fluid tier yields the region's offered RPS trajectory; each
    architecture's aggregate CPU is priced per request from the shared
    :data:`~repro.mesh.costs.DEFAULT_COSTS` table (two sidecar L7
    passes for Istio, ztunnel x2 + waypoint for Ambient, on-node L4 x2
    + gateway L7 for Canal), so the cloud-scale ratios are *derived*
    from the same constants as the testbed fig13.
    """
    result = ExperimentResult(
        "fleet_fig13", "Mesh CPU at cloud scale (fluid tier)")
    intensities = [0.5, 1.0, 1.5]
    specs = [{
        "seed": seed, "region": f"load-x{intensity:g}",
        "azs": 3, "backends_per_az": 100, "services": 150,
        "mean_sessions": 800.0 * intensity, "session_rps": 90.0,
        "amplitude": 0.3, "dt_s": 60.0, "sample_every": 10,
        "horizon_s": 86400.0,
    } for intensity in intensities]
    regions = sweep_map(_fleet_region_run, specs)

    costs = DEFAULT_COSTS
    per_request = {
        "istio": 2.0 * costs.istio_sidecar_l7_s,
        "ambient": 2.0 * costs.ambient_ztunnel_l4_s
        + costs.ambient_waypoint_l7_s,
        "canal": 2.0 * costs.canal_onnode_l4_s + costs.canal_gateway_l7_s,
    }
    table = Table("Aggregate mesh CPU at equal fleet load",
                  ["load", "offered_rps_peak", "istio_cores",
                   "ambient_cores", "canal_cores", "istio_over_canal",
                   "ambient_over_canal"])
    ratios: Dict[str, List[float]] = {"istio": [], "ambient": []}
    for intensity, region in zip(intensities, regions):
        rps_series = region["series"]["offered_rps"]
        peak_rps = max(v for _t, v in rps_series)
        cores = {name: peak_rps * cost
                 for name, cost in per_request.items()}
        table.add_row(f"x{intensity:g}", peak_rps, cores["istio"],
                      cores["ambient"], cores["canal"],
                      cores["istio"] / cores["canal"],
                      cores["ambient"] / cores["canal"])
        ratios["istio"].append(cores["istio"] / cores["canal"])
        ratios["ambient"].append(cores["ambient"] / cores["canal"])
    result.tables.append(table)
    nominal = regions[1]
    for arch, cost in sorted(per_request.items()):
        series = Series(f"{arch}_cores", x_label="seconds",
                        y_label="cores")
        for t, rps in nominal["series"]["offered_rps"][::6]:
            series.add(t, rps * cost)
        result.series.append(series)
    result.findings["istio_over_canal_cpu"] = (
        sum(ratios["istio"]) / len(ratios["istio"]))
    result.findings["ambient_over_canal_cpu"] = (
        sum(ratios["ambient"]) / len(ratios["ambient"]))
    result.findings["fleet_replicas"] = float(nominal["replicas"])
    result.notes.append(
        "fleet tier: testbed fig13's CPU ratios re-derived at "
        f"{nominal['replicas']} replicas and "
        f"{nominal['peak_sessions']:.0f} concurrent sessions from the "
        "same MeshCostModel constants")
    return result


# --------------------------------------------------------------------------
# fleet_fig17_18 — scaling behaviour over two days of tenant surges
# --------------------------------------------------------------------------

def fleet_fig17_18_scaling_at_scale(seed: int = 7) -> ExperimentResult:
    """Reuse/New completion CDFs + daily occurrence mix, at scale."""
    result = ExperimentResult(
        "fleet_fig17_18", "Scaling operations at cloud scale (fluid tier)")
    days = 2
    specs = [{
        "seed": seed + day, "region": f"day-{day + 1}",
        "azs": 3, "backends_per_az": 40, "services": 100,
        "mean_sessions": 500.0, "session_rps": 90.0,
        "amplitude": 0.25, "dt_s": 10.0, "sample_every": 30,
        "horizon_s": 86400.0, "scaler": True,
        "surge": {"every": 8, "factor": 2.5, "window_s": 7200.0},
    } for day in range(days)]
    regions = sweep_map(_fleet_region_run, specs)

    by_kind: Dict[str, List[float]] = {"reuse": [], "new": []}
    settles: Dict[str, List[float]] = {"reuse": [], "new": []}
    daily = Table("Scaling occurrences per day (fleet tier)",
                  ["day", "reuse", "new", "reuse_fraction",
                   "config_pushes"])
    for day, region in enumerate(regions):
        for kind, execution_s, settle_s in region["scaling_events"]:
            by_kind[kind].append(execution_s)
            if settle_s >= 0.0:
                settles[kind].append(settle_s)
        summary = region["scaling"]
        daily.add_row(day + 1, summary["reuse"], summary["new"],
                      summary["reuse_fraction"], region["config_pushes"])
    result.tables.append(daily)
    for kind in ("reuse", "new"):
        if not by_kind[kind]:
            continue
        series = Series(f"{kind}_completion_cdf", x_label="seconds",
                        y_label="fraction")
        for value, fraction in cdf(by_kind[kind]):
            series.add(value, fraction)
        result.series.append(series)
        result.findings[f"{kind}_median_s"] = _median(by_kind[kind])
        if settles[kind]:
            result.findings[f"{kind}_settle_median_s"] = _median(
                settles[kind])
    total = sum(len(events) for events in by_kind.values())
    result.findings["operations_per_day"] = total / days
    result.findings["reuse_fraction"] = (
        len(by_kind["reuse"]) / total if total else 0.0)
    result.notes.append(
        "paper Figs 17/18: Reuse completes in tens of seconds, New in "
        "tens of minutes, and Reuse dominates daily operations; here "
        "re-rendered from staggered tenant surges over "
        f"{specs[0]['services']} services x {days} days")
    return result


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# --------------------------------------------------------------------------
# fleet_fig19 — shuffle-shard isolation as tenant count grows
# --------------------------------------------------------------------------

def _fleet_shard_point(spec: Dict[str, object]) -> Dict[str, object]:
    """Isolation stats + a live blast-radius probe for one fleet size."""
    run = _fleet_region_run({
        "seed": spec["seed"], "region": f"services-{spec['services']}",
        "azs": 4, "backends_per_az": 160, "services": spec["services"],
        "mean_sessions": 400.0, "session_rps": 120.0,
        "dt_s": 5.0, "sample_every": 12, "horizon_s": 600.0,
        # Crash one backend mid-run: only tenants sharing its
        # combination can lose sessions — the blast-radius guarantee.
        "plan": [{"kind": "backend_crash", "at": 60.0,
                  "target": "backend:0", "duration_s": 300.0}],
    })
    total = spec["services"] * 400.0
    run["blast_fraction"] = run["disrupted"] / total
    return run


def fleet_fig19_sharding_at_scale(seed: int = 7) -> ExperimentResult:
    """Isolation guarantees from 250 to 2000 tenant services."""
    result = ExperimentResult(
        "fleet_fig19", "Shuffle-shard isolation at cloud scale")
    sizes = [250, 500, 1000, 2000]
    points = sweep_map(_fleet_shard_point,
                       [{"seed": seed, "services": size} for size in sizes])
    table = Table("Shuffle-shard isolation vs tenant count "
                  "(4 AZ x 640 backends)",
                  ["services", "identical_pairs", "max_overlap",
                   "min_survivors", "multi_az", "blast_fraction",
                   "availability"])
    blast = Series("blast_fraction", x_label="services",
                   y_label="sessions_disrupted_fraction")
    for size, point in zip(sizes, points):
        stats = point["shard_stats"]
        table.add_row(size, stats["fully_overlapping_pairs"],
                      stats["max_pairwise_overlap"],
                      stats["min_survivor_backends"],
                      stats["multi_az_services"],
                      point["blast_fraction"], point["availability"])
        blast.add(size, point["blast_fraction"])
    result.tables.append(table)
    result.series.append(blast)
    worst = max(point["shard_stats"]["max_pairwise_overlap"]
                for point in points)
    result.findings["identical_pairs"] = float(sum(
        point["shard_stats"]["fully_overlapping_pairs"]
        for point in points))
    result.findings["worst_pairwise_overlap"] = float(worst)
    result.findings["max_blast_fraction"] = max(
        point["blast_fraction"] for point in points)
    result.notes.append(
        "paper Fig 19: shuffle sharding keeps tenant combinations "
        "unique so one backend failure touches a vanishing fraction of "
        "tenants even at 2000 services on 640 backends")
    return result


# --------------------------------------------------------------------------
# fleet_fig20 — a full day of multi-region operations at cloud scale
# --------------------------------------------------------------------------

#: The fig20 chaos schedule: an AZ outage through morning peak, a
#: backend crash in the second region, and an afternoon query-of-death.
_FIG20_PLAN: List[Dict[str, object]] = [
    {"kind": "az_crash", "at": 30600.0, "target": "az:2",
     "duration_s": 2700.0},
    {"kind": "backend_crash", "at": 46800.0, "target": "backend:17",
     "duration_s": 1200.0},
    {"kind": "query_of_death", "at": 56700.0, "target": "service:6",
     "duration_s": 1800.0, "param": 3.0},
]


def fleet_fig20_daily_operations_at_scale(seed: int = 7) -> ExperimentResult:
    """One day of daily ops: 2 regions, 10,240 replicas, ~1M sessions."""
    result = ExperimentResult(
        "fleet_fig20", "Daily operations at cloud scale (2 regions)")
    specs = [{
        "seed": seed + index, "region": region,
        "azs": 4, "backends_per_az": 640, "services": 800,
        "mean_sessions": 640.0, "session_rps": 120.0,
        "amplitude": 0.3, "phase": phase,
        "dt_s": 60.0, "sample_every": 5, "horizon_s": 86400.0,
        "scaler": True, "plan": _FIG20_PLAN,
    } for index, (region, phase) in enumerate(
        [("us-east", 0.58), ("eu-central", 0.33)])]
    regions = sweep_map(_fleet_region_run, specs)

    table = Table("Daily operations per region (fluid tier)",
                  ["region", "replicas", "availability", "peak_sessions",
                   "disrupted", "reuse", "new", "config_pushes"])
    total_replicas = 0
    peak_global = 0.0
    for region in regions:
        scaling = region.get("scaling", {"reuse": 0, "new": 0})
        table.add_row(region["region"], region["replicas"],
                      region["availability"], region["peak_sessions"],
                      region["disrupted"], scaling["reuse"],
                      scaling["new"], region["config_pushes"])
        total_replicas += region["replicas"]
    result.tables.append(table)

    # Global concurrent sessions: regions sample on the same dt grid,
    # so align by index and sum.
    merged: Dict[float, float] = {}
    for region in regions:
        for t, value in region["series"]["active_sessions"]:
            merged[t] = merged.get(t, 0.0) + value
    sessions = Series("global_active_sessions", x_label="seconds",
                      y_label="sessions")
    for t in sorted(merged):
        sessions.add(t, merged[t])
        peak_global = max(peak_global, merged[t])
    result.series.append(sessions)
    for region in regions:
        water = Series(f"{region['region']}_max_water",
                       x_label="seconds", y_label="water")
        for t, value in region["series"]["max_water"][::4]:
            water.add(t, value)
        result.series.append(water)
        p99 = Series(f"{region['region']}_latency_p99_ms",
                     x_label="seconds", y_label="ms")
        for t, value in region["series"]["latency_p99_ms"][::4]:
            p99.add(t, value)
        result.series.append(p99)

    faults = Table("Fault timeline (both regions)",
                   ["region", "t", "action", "kind", "target"])
    for region in regions:
        for entry in region.get("timeline", []):
            faults.add_row(region["region"], entry["t"], entry["action"],
                           entry["kind"], entry["target"])
    result.tables.append(faults)

    result.findings["total_replicas"] = float(total_replicas)
    result.findings["peak_concurrent_sessions"] = peak_global
    result.findings["regions"] = float(len(regions))
    result.findings["worst_availability"] = min(
        region["availability"] for region in regions)
    result.findings["total_disrupted"] = sum(
        region["disrupted"] for region in regions)
    result.notes.append(
        "paper Fig 20 at the paper's true operating point: "
        f"{total_replicas} replicas across {len(regions)} regions, "
        f"{peak_global:.0f} peak concurrent sessions, with an AZ "
        "outage, a backend crash, and a query-of-death absorbed by "
        "shuffle sharding + Reuse-first scaling")
    return result
